//! In-tree property-testing harness exposing the subset of the
//! `proptest` macro/strategy surface the workspace uses.
//!
//! Differences from the real crate: generation is deterministic (seeded
//! per test from the test's name) and failing inputs are reported but
//! not shrunk. The macro surface — `proptest!`, `prop_assert*!`,
//! `prop_assume!`, `prop_oneof!`, `any`, `Just`, ranges-as-strategies,
//! `prop::collection::vec`, `prop::array::uniform16` — matches proptest
//! 1.x so the test source stays unchanged.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

/// The RNG handed to strategies during generation.
pub type TestRng = rand::rngs::StdRng;

/// How a single generated case ended, when not successful.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Attaches the generated inputs to a failure message.
    #[must_use]
    pub fn with_inputs(self, inputs: &str) -> Self {
        match self {
            TestCaseError::Fail(msg) => TestCaseError::Fail(format!("{msg}\n    inputs: {inputs}")),
            reject => reject,
        }
    }
}

/// Runner configuration (`ProptestConfig::with_cases` in test sources).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
///
/// Object-safe: the combinator methods are `Self: Sized` so
/// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { strategy: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

// ----- primitive strategies ------------------------------------------

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Values produced by [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// An unconstrained value of `T` (`any::<u64>()` in test sources).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ----- combinators ---------------------------------------------------

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+),)+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// `prop::collection` equivalents.
pub mod collection {
    use super::{Range, Rng, Strategy, TestRng};
    use std::fmt;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::array` equivalents.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for fixed 16-element arrays.
    pub struct Uniform16<S>(S);

    /// A `[T; 16]` with independently generated elements.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

// ----- runner --------------------------------------------------------

/// Drives one property test: repeatedly generates + checks cases until
/// `config.cases` successes, panicking on the first failure.
///
/// The RNG is seeded from the test name, so runs are reproducible and
/// independent of execution order.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, case: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(seed);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(10),
                    "proptest `{name}`: too many cases rejected by prop_assume! \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {passed} passing cases:\n    {msg}")
            }
        }
    }
}

// ----- macros --------------------------------------------------------

/// Declares property tests (see the real proptest crate for syntax).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let mut __inputs = String::new();
                $(
                    __inputs.push_str(concat!(stringify!($arg), " = "));
                    __inputs.push_str(&format!("{:?}; ", &$arg));
                )+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                __result.map_err(|e| e.with_inputs(&__inputs))
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n    left: {:?}\n    right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n    both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects the current case (does not count toward the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among the listed strategies (all must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Everything a proptest file imports with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in 1u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0usize..4, 0.0f64..1.0).prop_map(|(a, b)| (a, b * 2.0))) {
            prop_assert!(pair.0 < 4);
            prop_assert!((0.0..2.0).contains(&pair.1));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_and_oneof_generate(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn uniform16_fills_array(a in prop::array::uniform16(any::<u8>())) {
            prop_assert_eq!(a.len(), 16);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic_with_inputs() {
        crate::run_cases(&crate::ProptestConfig::with_cases(8), "always_fails", |rng| {
            let x = crate::Strategy::generate(&(0u32..100), rng);
            let _ = x;
            Err(crate::TestCaseError::fail("assertion failed: forced"))
        });
    }
}
