//! In-tree subset of the `rand_chacha` crate: re-exports the ChaCha12
//! generator implemented in the workspace's `rand` shim.

pub use rand::chacha::ChaCha12Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chacha12_usable_through_rand_traits() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        assert!(rng.gen_range(0u32..10) < 10);
    }
}
