//! Minimal `crossbeam` shim: `scope` over `std::thread::scope` and
//! `channel` over `std::sync::mpsc`.

use std::any::Any;

pub mod channel;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (unused by
    /// most callers, matching crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before
/// this returns. A child panic propagates as a panic (crossbeam returns
/// `Err` instead; callers `.expect()` it, so behaviour matches).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
