//! `crossbeam::channel` subset over `std::sync::mpsc`: multi-producer,
//! single-consumer `unbounded` channels with the crossbeam method names.

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

/// Sending half of an unbounded channel. Clone freely across threads.
pub struct Sender<T>(std::sync::mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends a message; errors only after the receiver was dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] when the receiving half is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError`] when empty or disconnected.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Iterates over messages until all senders are dropped.
    pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = std::sync::mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = std::sync::mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_round_trips() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got: Vec<i32> = rx.iter().take(2).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn iter_ends_when_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        drop(tx);
        let all: Vec<i32> = rx.into_iter().collect();
        assert_eq!(all, vec![5]);
    }
}
