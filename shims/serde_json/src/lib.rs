//! JSON text encoding for the in-tree `serde` shim's value tree.
//!
//! Provides the subset of the real `serde_json` API the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//! Numbers are rendered losslessly (floats via Rust's shortest-roundtrip
//! `{:?}` formatting); non-finite floats serialize as `null`, matching
//! serde_json's behavior.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for serde_json
/// API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for serde_json
/// API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

// ----- writer --------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form and
                // always includes a `.0` or exponent for integral values.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- parser --------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_seq(),
            b'{' => self.parse_map(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => {
                Err(Error(format!("unexpected character `{}` at byte {}", other as char, self.pos)))
            }
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                None => return Err(Error("unterminated string".to_string())),
                _ => unreachable!("loop stops only at quote, backslash, or end"),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number text is valid UTF-8");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = vec![1i32, -2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,-2,3]");
        let back: Vec<i32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1, 1.0, -2.5e300, 1e-12, f64::MAX] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f, "json {json}");
        }
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(1)),
            ("b".to_string(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
    }
}
