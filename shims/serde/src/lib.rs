//! In-tree replacement for the `serde` facade.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! its own small serialization framework under the `serde` name: a
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that convert to
//! and from it, and derive macros (from the sibling `serde_derive` shim)
//! that generate field-by-field impls. The `serde_json` shim renders
//! [`Value`] as JSON text.
//!
//! The data model follows serde's JSON conventions: structs are maps,
//! newtype structs are transparent, unit enum variants are strings, and
//! data-carrying variants are externally tagged (`{"Variant": ...}`).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A serialized value tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent from the
    /// map. Overridden by `Option` to default to `None`.
    fn from_missing_field(name: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{name}`")))
    }
}

// ----- primitive impls ----------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(Error(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}

macro_rules! impl_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f)
                        if f.fract() == 0.0
                            && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
                    {
                        f as i64
                    }
                    ref other => {
                        return Err(Error(format!("expected integer, found {}", other.kind())))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            ref other => Err(Error(format!("expected float, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error(format!("expected single-char string, found {}", other.kind()))),
        }
    }
}

// ----- containers ----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = <Vec<T>>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| {
                    let key =
                        k.parse::<K>().map_err(|_| Error(format!("invalid map key `{k}`")))?;
                    Ok((key, V::from_value(val)?))
                })
                .collect(),
            other => Err(Error(format!("expected map, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected {expected}-tuple, found sequence of {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error(format!("expected sequence, found {}", other.kind()))),
                }
            }
        }
    )+};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(<Vec<u32>>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(<Option<u32>>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }

    #[test]
    fn missing_field_defaults_only_for_option() {
        assert_eq!(<Option<u32>>::from_missing_field("x").unwrap(), None);
        assert!(u32::from_missing_field("x").is_err());
    }
}
