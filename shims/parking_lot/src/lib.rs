//! Minimal `parking_lot::Mutex` shim over `std::sync::Mutex` (no poison).

/// Mutex with parking_lot's unpoisoned API.
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Locks, ignoring poison (parking_lot has none).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
