//! In-tree replacement for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros — with simple wall-clock
//! measurement: per sample, the closure runs in a timed batch and the
//! median per-iteration time across samples is reported to stdout.
//!
//! No statistical analysis, plots, or baseline storage; the goal is a
//! stable relative signal without external dependencies.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Runs `samples` timed samples of the routine and prints the median
/// per-iteration time. Iteration count per sample is chosen so one
/// sample takes roughly 50 ms (minimum one iteration).
fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up + calibration sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!("{id:<40} time: [{} {} {}]", format_time(lo), format_time(median), format_time(hi));
}

fn format_time(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(1.5e-9), "1.50 ns");
        assert_eq!(format_time(2.5e-6), "2.50 µs");
        assert_eq!(format_time(3.5e-3), "3.50 ms");
        assert_eq!(format_time(1.25), "1.250 s");
    }
}
