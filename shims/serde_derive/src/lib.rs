//! Derive macros for the in-tree `serde` shim.
//!
//! Parses the item's token stream directly (the build environment has no
//! `syn`/`quote`) and generates `to_value`/`from_value` impls against the
//! shim's `serde::Value` tree. Generated code leans on type inference —
//! field values are produced in constructor position — so field *types*
//! only need to be skipped, never understood.
//!
//! Supported shapes (everything the workspace derives on): non-generic
//! structs with named fields, tuple structs, unit structs, and enums
//! whose variants are unit, tuple, or struct-like. `#[serde(...)]`
//! attributes are not supported and the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ----- item model ----------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ----- parsing -------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found `{other}`"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive: generic type `{name}` is not supported by the serde shim");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("derive: unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive: unexpected enum body for `{name}`: {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Skips `#[...]` attributes (doc comments included) and `pub` /
/// `pub(...)` visibility at position `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` & friends
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists. Only names are kept; types are
/// skipped up to the next comma outside any `<...>` nesting (grouped
/// delimiters are atomic token trees, so only angle brackets need a
/// depth counter).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive: expected field name, found `{other}`"),
        };
        fields.push(field);
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("derive: expected `:` after field name, found `{other}`"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` or end of input.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ----- code generation -----------------------------------------------

/// `Value::Map(vec![("f", to_value(<accessor>f)), ...])` for named fields.
fn ser_named_map(fields: &[String], accessor: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&{accessor}{f}))"))
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

/// Struct-literal expression deserializing named fields out of map `src`.
fn de_named_ctor(path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {src}.get(\"{f}\") {{ \
                    Some(__v) => serde::Deserialize::from_value(__v)?, \
                    None => serde::Deserialize::from_missing_field(\"{f}\")?, \
                }}"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => ser_named_map(fs, "self."),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vname} => serde::Value::Str(\"{vname}\".to_string())")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => serde::Value::Map(vec![\
                             (\"{vname}\".to_string(), serde::Serialize::to_value(__f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Map(vec![\
                                 (\"{vname}\".to_string(), serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inner = ser_named_map(fs, "");
                            format!(
                                "{name}::{vname} {{ {} }} => serde::Value::Map(vec![\
                                 (\"{vname}\".to_string(), {inner})])",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(", ")))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{ \
            fn to_value(&self) -> serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let ctor = de_named_ctor(name, fs, "__value");
                    format!(
                        "match __value {{ \
                            serde::Value::Map(_) => Ok({ctor}), \
                            __other => Err(serde::Error(format!(\
                                \"expected map for `{name}`, found {{}}\", __other.kind()))), \
                         }}"
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__value)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __value {{ \
                            serde::Value::Seq(__items) if __items.len() == {n} => \
                                Ok({name}({})), \
                            __other => Err(serde::Error(format!(\
                                \"expected {n}-element sequence for `{name}`, found {{}}\", \
                                __other.kind()))), \
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!(
                    "match __value {{ \
                        serde::Value::Null => Ok({name}), \
                        __other => Err(serde::Error(format!(\
                            \"expected null for `{name}`, found {{}}\", __other.kind()))), \
                     }}"
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             serde::Deserialize::from_value(__inner)?))"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match __inner {{ \
                                    serde::Value::Seq(__items) if __items.len() == {n} => \
                                        Ok({name}::{vname}({})), \
                                    __other => Err(serde::Error(format!(\
                                        \"expected {n}-element sequence for \
                                        `{name}::{vname}`, found {{}}\", __other.kind()))), \
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let ctor = de_named_ctor(&format!("{name}::{vname}"), fs, "__inner");
                            Some(format!(
                                "\"{vname}\" => match __inner {{ \
                                    serde::Value::Map(_) => Ok({ctor}), \
                                    __other => Err(serde::Error(format!(\
                                        \"expected map for `{name}::{vname}`, \
                                        found {{}}\", __other.kind()))), \
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "match __value {{ \
                    serde::Value::Str(__s) => match __s.as_str() {{ \
                        {unit} \
                        __other => Err(serde::Error(format!(\
                            \"unknown unit variant `{{__other}}` for `{name}`\"))), \
                    }}, \
                    serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                        let (__tag, __inner) = &__entries[0]; \
                        match __tag.as_str() {{ \
                            {data} \
                            __other => Err(serde::Error(format!(\
                                \"unknown variant `{{__other}}` for `{name}`\"))), \
                        }} \
                    }} \
                    __other => Err(serde::Error(format!(\
                        \"expected variant string or single-entry map for `{name}`, \
                        found {{}}\", __other.kind()))), \
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(", "))
                },
            );
            (name, body)
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{ \
            fn from_value(__value: &serde::Value) -> std::result::Result<Self, serde::Error> {{ \
                {body} \
            }} \
         }}"
    )
}
