//! ChaCha12 block cipher in counter mode, used as a PRNG.
//!
//! This is the generator family behind `rand` 0.8's `StdRng` and
//! `rand_chacha`'s `ChaCha12Rng`. The implementation follows RFC 7539's
//! state layout (constants, 256-bit key, 64-bit counter + 64-bit
//! nonce) with 12 rounds.

use crate::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic ChaCha12 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..6 {
            // Two rounds per iteration: one column round, one diagonal.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // index = 16 forces a refill on first use.
        ChaCha12Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_is_deterministic_and_full_period_blocks() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let second: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        assert_eq!(first, second);
        // Crosses block boundaries (16 words per block) without repeats.
        assert_ne!(&first[..16], &first[16..32]);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn bit_balance_is_plausible() {
        let mut rng = ChaCha12Rng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits, expect ~32,000 ones.
        assert!((31_000..33_000).contains(&ones), "ones {ones}");
    }
}
