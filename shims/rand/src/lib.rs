//! In-tree subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and a ChaCha12-based [`rngs::StdRng`]
//! (the same generator family real `rand` 0.8 uses for `StdRng`). Seeded
//! streams are deterministic but are not guaranteed to match upstream
//! `rand` byte-for-byte — the repository has no golden values that
//! predate this shim, so determinism *within* the workspace is the only
//! requirement.

pub mod chacha;

/// A low-level uniform random source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (like upstream
    /// `rand`) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 seed expander.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from the full bit range / unit interval
/// (the shim's equivalent of `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widened_u128(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widened_u128(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn widened_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    u128::from(rng.next_u64())
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a standard-samplable type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_random(self);
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_random<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_random<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_random<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    /// The standard deterministic generator (ChaCha12, as in `rand` 0.8).
    pub type StdRng = crate::chacha::ChaCha12Rng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=255);
            assert!(w >= 1);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
