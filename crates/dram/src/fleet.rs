//! The fleet of simulated modules matching the paper's Table 1.
//!
//! A [`Fleet`] instantiates one device per tested module/chip, each with
//! the VRD parameters calibrated from Table 7. Devices are created lazily
//! (constructing a device is cheap; rows materialize on first touch).

use serde::{Deserialize, Serialize};

use crate::device::{DeviceConfig, DramDevice};
use crate::error::DramError;
use crate::spec::{DramStandard, ModuleSpec};

/// One simulated module: its spec plus a live device model.
#[derive(Debug)]
pub struct Module {
    spec: ModuleSpec,
    device: DramDevice,
}

/// Derives a per-module device seed: campaigns pass one campaign seed,
/// but each module must get its own RNG streams (chip-to-chip variation
/// is the point of testing 25 of them).
fn module_seed(spec: &ModuleSpec, seed: u64) -> u64 {
    let mut h = seed ^ 0x005E_ED0F_3E0D_u64;
    for b in spec.name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

impl Module {
    /// Instantiates the device model for `spec`, deterministic in `seed`
    /// (internally combined with the module name, so the same campaign
    /// seed yields distinct per-module devices).
    pub fn new(spec: ModuleSpec, seed: u64) -> Self {
        // 64 Kibit rows, as in the paper's Fig. 16.
        Self::new_with_row_bytes(spec, seed, 8192)
    }

    /// Like [`new`](Self::new) but with a reduced row size, for fast tests.
    pub fn new_with_row_bytes(spec: ModuleSpec, seed: u64, row_bytes: u32) -> Self {
        let family = spec.family();
        let config = DeviceConfig {
            topology: family.topology,
            row_bytes,
            mapping: family.mapping,
            cell_layout: family.cell_layout,
            vrd: spec.vrd_params(),
            spatial: crate::spatial::SpatialProfile::ddr4_default(),
            bank_variation: family.bank_variation,
            rows_per_refresh: 64,
        };
        let seed = module_seed(&spec, seed);
        Module { device: DramDevice::new(config, seed), spec }
    }

    /// The module's specification.
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// The device model.
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Mutable access to the device model.
    pub fn device_mut(&mut self) -> &mut DramDevice {
        &mut self.device
    }

    /// Consumes the module, returning the device model.
    pub fn into_device(self) -> DramDevice {
        self.device
    }
}

/// Splits a module roster into round-robin shards for spreading one
/// campaign across several processes or hosts: shard `index` of `count`
/// takes every `count`-th spec starting at `index`, preserving roster
/// order. Because campaign unit seeds derive from module names and row
/// addresses — never from roster position — a module's results are
/// bit-identical whether it runs inside a shard or the full fleet.
///
/// # Panics
///
/// Panics if `count` is zero or `index >= count`.
pub fn shard_specs(specs: &[ModuleSpec], index: usize, count: usize) -> Vec<ModuleSpec> {
    assert!(count > 0, "shard count must be positive");
    assert!(index < count, "shard index {index} out of range for {count} shards");
    specs.iter().skip(index).step_by(count).cloned().collect()
}

/// Generates a synthetic fleet of `count` module specs by cycling the
/// Table-1 roster and renaming each clone `{base}-f{index:04}`. Because
/// per-module device seeds derive from the module *name* (see
/// [`Module::new`]), every synthetic module gets its own weak-cell
/// layout even when it shares a base spec; and because
/// [`ModuleSpec::family`]/[`ModuleSpec::vrd_params`] derive from the
/// spec's fields rather than its name, renamed clones behave in
/// campaigns exactly like their Table-1 ancestors. The Table-7 anchors
/// are given a mild deterministic jitter (±6% on the RDT minima, seeded
/// by `seed` and the synthetic name) so fleet-scale sweeps see
/// chip-to-chip spread in expected RDT, not 40 copies of one anchor.
pub fn synthetic_specs(count: usize, seed: u64) -> Vec<ModuleSpec> {
    let base = ModuleSpec::table1();
    (0..count)
        .map(|i| {
            let mut spec = base[i % base.len()].clone();
            spec.name = format!("{}-f{i:04}", spec.name);
            // FNV-1a over (seed, name) → two independent jitter draws.
            let mut h = seed ^ 0x5F1E_E7F1_EE75_u64;
            for b in spec.name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            let jitter = |h: u64| -> f64 {
                // Map 16 hash bits onto [-0.06, +0.06].
                ((h & 0xFFFF) as f64 / 65535.0 - 0.5) * 0.12
            };
            let (ja, jb) = (jitter(h), jitter(h >> 16));
            let scale = |v: u32, j: f64| -> u32 { ((v as f64 * (1.0 + j)).round() as u32).max(1) };
            spec.anchor.min_rdt_tras = scale(spec.anchor.min_rdt_tras, ja);
            spec.anchor.min_rdt_trefi = scale(spec.anchor.min_rdt_trefi, jb);
            spec
        })
        .collect()
}

/// Stable fingerprint of a module roster: FNV-1a over the ordered
/// module names with a separator fold between names. Campaign
/// checkpoints store this (alongside the shard index/count) in their
/// manifest, so a journal written for one roster — or one shard of it —
/// is rejected when opened against another instead of silently merging
/// results across fleets.
pub fn roster_fingerprint(specs: &[ModuleSpec]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for spec in specs {
        for b in spec.name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        // Separator fold so ["AB"] and ["A", "B"] differ.
        h = (h ^ 0xFF).wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Identifier scoping which part of the fleet an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetScope {
    /// All 21 DDR4 modules and 4 HBM2 chips.
    All,
    /// Only the DDR4 modules.
    Ddr4,
    /// Only the HBM2 chips.
    Hbm2,
}

/// The full roster of simulated modules.
#[derive(Debug)]
pub struct Fleet {
    modules: Vec<Module>,
}

impl Fleet {
    /// Instantiates the paper's full Table-1 roster, deterministic in
    /// `seed` (each module derives its own sub-seed).
    pub fn standard(seed: u64) -> Self {
        Self::with_scope(seed, FleetScope::All)
    }

    /// Instantiates a subset of the roster.
    pub fn with_scope(seed: u64, scope: FleetScope) -> Self {
        let modules = ModuleSpec::table1()
            .into_iter()
            .filter(|s| match scope {
                FleetScope::All => true,
                FleetScope::Ddr4 => s.standard == DramStandard::Ddr4,
                FleetScope::Hbm2 => s.standard == DramStandard::Hbm2,
            })
            .enumerate()
            .map(|(i, spec)| Module::new(spec, seed.wrapping_add(0x9E37 * (i as u64 + 1))))
            .collect();
        Fleet { modules }
    }

    /// The modules in Table-1 order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Mutable access to the modules.
    pub fn modules_mut(&mut self) -> &mut [Module] {
        &mut self.modules
    }

    /// Number of modules in the fleet.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the fleet is empty (only for non-standard scopes).
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Finds a module by its paper name.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::UnknownModule`] when no module matches.
    pub fn module_mut(&mut self, name: &str) -> Result<&mut Module, DramError> {
        self.modules
            .iter_mut()
            .find(|m| m.spec.name == name)
            .ok_or_else(|| DramError::UnknownModule(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_fleet_has_25_modules() {
        let fleet = Fleet::standard(1);
        assert_eq!(fleet.len(), 25);
        assert!(!fleet.is_empty());
    }

    #[test]
    fn scopes_partition_roster() {
        let ddr4 = Fleet::with_scope(1, FleetScope::Ddr4);
        let hbm2 = Fleet::with_scope(1, FleetScope::Hbm2);
        assert_eq!(ddr4.len(), 21);
        assert_eq!(hbm2.len(), 4);
    }

    #[test]
    fn module_lookup() {
        let mut fleet = Fleet::standard(1);
        assert!(fleet.module_mut("S0").is_ok());
        assert!(matches!(fleet.module_mut("nope"), Err(DramError::UnknownModule(_))));
    }

    #[test]
    fn modules_have_distinct_seeds() {
        let mut fleet = Fleet::standard(1);
        // Two same-spec modules (H3/H4) must still get different weak-cell
        // layouts because their seeds differ.
        let h3_counts: Vec<usize> = {
            let m = fleet.module_mut("H3").unwrap();
            (0..200).map(|r| m.device_mut().oracle_weak_cell_count(0, r)).collect()
        };
        let h4_counts: Vec<usize> = {
            let m = fleet.module_mut("H4").unwrap();
            (0..200).map(|r| m.device_mut().oracle_weak_cell_count(0, r)).collect()
        };
        assert_ne!(h3_counts, h4_counts);
    }

    #[test]
    fn shards_partition_the_roster_in_order() {
        let all = ModuleSpec::table1();
        let shards: Vec<Vec<ModuleSpec>> = (0..4).map(|i| shard_specs(&all, i, 4)).collect();
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, all.len(), "shards cover every module exactly once");
        let mut names: Vec<&str> =
            shards.iter().flat_map(|s| s.iter().map(|m| m.name.as_str())).collect();
        names.sort_unstable();
        let mut expected: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        expected.sort_unstable();
        assert_eq!(names, expected, "shards are disjoint");
        for shard in &shards {
            let positions: Vec<usize> =
                shard.iter().map(|m| all.iter().position(|a| a.name == m.name).unwrap()).collect();
            assert!(positions.windows(2).all(|w| w[0] < w[1]), "order preserved");
        }
    }

    #[test]
    fn single_shard_is_identity() {
        let all = ModuleSpec::table1();
        assert_eq!(shard_specs(&all, 0, 1).len(), all.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        let _ = shard_specs(&ModuleSpec::table1(), 3, 3);
    }

    #[test]
    fn roster_fingerprint_distinguishes_rosters_and_shards() {
        let all = ModuleSpec::table1();
        let full = roster_fingerprint(&all);
        assert_eq!(full, roster_fingerprint(&all), "fingerprint is stable");
        for i in 0..3 {
            assert_ne!(
                full,
                roster_fingerprint(&shard_specs(&all, i, 3)),
                "shard {i} must not fingerprint like the full roster"
            );
        }
        assert_ne!(
            roster_fingerprint(&shard_specs(&all, 0, 3)),
            roster_fingerprint(&shard_specs(&all, 1, 3)),
            "distinct shards get distinct fingerprints"
        );
        let mut reordered = all.clone();
        reordered.reverse();
        assert_ne!(full, roster_fingerprint(&reordered), "fingerprint is order-sensitive");
    }

    #[test]
    fn synthetic_specs_scale_the_roster_deterministically() {
        let fleet = synthetic_specs(1000, 7);
        assert_eq!(fleet.len(), 1000);
        // Names are unique (distinct names ⇒ distinct device seeds).
        let mut names: Vec<&str> = fleet.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 1000);
        // Both standards are represented at scale.
        assert!(fleet.iter().any(|s| s.standard == DramStandard::Ddr4));
        assert!(fleet.iter().any(|s| s.standard == DramStandard::Hbm2));
        // Deterministic in (count, seed); seed moves the anchors.
        assert_eq!(roster_fingerprint(&fleet), roster_fingerprint(&synthetic_specs(1000, 7)));
        let a: Vec<u32> = fleet.iter().map(|s| s.anchor.min_rdt_tras).collect();
        let b: Vec<u32> = synthetic_specs(1000, 8).iter().map(|s| s.anchor.min_rdt_tras).collect();
        assert_ne!(a, b, "seed must jitter the anchors");
        // Clones of one base spec still get spread-out anchors.
        let clones: Vec<u32> = fleet
            .iter()
            .filter(|s| s.name.starts_with("M1-"))
            .map(|s| s.anchor.min_rdt_tras)
            .collect();
        assert!(clones.len() > 10);
        let mut uniq = clones.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > clones.len() / 2, "jitter should spread clone anchors");
    }

    #[test]
    fn synthetic_specs_build_working_devices() {
        let specs = synthetic_specs(30, 7);
        let spec = specs[25].clone();
        let mut module = Module::new_with_row_bytes(spec, 7, 512);
        // The device is live: weak cells materialize on first touch.
        let counts: Vec<usize> =
            (0..50).map(|r| module.device_mut().oracle_weak_cell_count(0, r)).collect();
        assert!(counts.iter().any(|&c| c > 0) || counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn device_config_matches_spec() {
        let mut fleet = Fleet::standard(1);
        let m = fleet.module_mut("M0").unwrap();
        assert_eq!(m.device().config().banks(), 16);
        assert_eq!(m.device().config().rows_per_bank(), 128 * 1024);
        let c = fleet.module_mut("Chip0").unwrap();
        assert_eq!(c.device().config().banks(), 32);
        assert_eq!(c.device().config().topology.pseudo_channels, 2);
    }
}
