//! A minimal multiplicative hasher for the simulator's hot maps.
//!
//! The per-bank row table and the platform's program cache are probed
//! several times per hammer session, and the default SipHash keyed setup
//! dominates those lookups once the batch engine strips the rest of the
//! per-session work. Neither map is ever iterated for output, so the
//! hasher only affects membership probing — hit/build counters, campaign
//! results, and goldens are hash-order independent by construction.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant rustc's FxHash uses (a 64-bit golden-ratio
/// derivative); any odd constant with good bit dispersion works here.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// One-word-at-a-time multiplicative hasher (FxHash-style).
///
/// Not keyed and not DoS-resistant — only for maps whose keys the
/// simulator itself generates (row indices, program keys).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                tail |= u64::from(b) << (8 * i);
            }
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` probed by the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl Fn(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn equal_inputs_hash_equal_and_nearby_inputs_differ() {
        assert_eq!(hash_of(|h| h.write_u32(42)), hash_of(|h| h.write_u32(42)));
        assert_ne!(hash_of(|h| h.write_u32(42)), hash_of(|h| h.write_u32(43)));
        assert_ne!(hash_of(|h| h.write_u64(1)), hash_of(|h| h.write_u64(1 << 32)));
    }

    #[test]
    fn byte_slices_cover_the_tail_path() {
        assert_eq!(hash_of(|h| h.write(b"abcdefghij")), hash_of(|h| h.write(b"abcdefghij")));
        assert_ne!(hash_of(|h| h.write(b"abcdefghij")), hash_of(|h| h.write(b"abcdefghik")));
        assert_ne!(hash_of(|h| h.write(b"abc")), hash_of(|h| h.write(b"abd")));
    }

    #[test]
    fn map_round_trips() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1_000 {
            map.insert(i, "row");
        }
        assert_eq!(map.len(), 1_000);
        assert!(map.contains_key(&999));
        assert!(!map.contains_key(&1_000));
    }
}
