//! True-/anti-cell data encoding layout (paper §5.6).
//!
//! A *true cell* encodes logic-1 as a charged capacitor; an *anti cell*
//! encodes logic-1 as a discharged capacitor. Manufacturers lay out true-
//! and anti-cell regions in row blocks; the paper measures 50 rows of
//! module M0 and finds 20 anti-cell rows and 30 true-cell rows, with no
//! significant RDT-distribution difference (Finding 17).

use serde::{Deserialize, Serialize};

/// The data encoding convention of a DRAM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellPolarity {
    /// Logic-1 stored as a charged capacitor.
    True,
    /// Logic-1 stored as a discharged capacitor.
    Anti,
}

impl CellPolarity {
    /// Whether a cell of this polarity holding `bit` is *charged*.
    ///
    /// Read disturbance predominantly discharges charged cells, so only
    /// charged cells flip at full coupling strength.
    #[inline]
    pub fn is_charged(self, bit: bool) -> bool {
        match self {
            CellPolarity::True => bit,
            CellPolarity::Anti => !bit,
        }
    }
}

/// Block-based row polarity layout: rows alternate polarity every
/// `block_rows` physical rows, optionally starting with anti cells.
///
/// # Examples
///
/// ```
/// use vrd_dram::cells::{CellLayout, CellPolarity};
///
/// let layout = CellLayout::new(512, false);
/// assert_eq!(layout.polarity_of_physical_row(0), CellPolarity::True);
/// assert_eq!(layout.polarity_of_physical_row(512), CellPolarity::Anti);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellLayout {
    block_rows: u32,
    starts_anti: bool,
}

impl CellLayout {
    /// Creates a layout alternating every `block_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows` is zero.
    pub fn new(block_rows: u32, starts_anti: bool) -> Self {
        assert!(block_rows > 0, "block_rows must be nonzero");
        CellLayout { block_rows, starts_anti }
    }

    /// Layout with all-true cells (no anti-cell region).
    pub fn all_true() -> Self {
        CellLayout { block_rows: u32::MAX, starts_anti: false }
    }

    /// The polarity of every cell in the given *physical* row.
    pub fn polarity_of_physical_row(&self, physical_row: u32) -> CellPolarity {
        let block = physical_row / self.block_rows;
        let anti = (block % 2 == 1) ^ self.starts_anti;
        if anti {
            CellPolarity::Anti
        } else {
            CellPolarity::True
        }
    }

    /// Rows per polarity block.
    pub fn block_rows(&self) -> u32 {
        self.block_rows
    }
}

impl Default for CellLayout {
    /// Alternating 512-row blocks starting with true cells — a common
    /// open-bitline arrangement.
    fn default() -> Self {
        CellLayout::new(512, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_cell_charged_on_one() {
        assert!(CellPolarity::True.is_charged(true));
        assert!(!CellPolarity::True.is_charged(false));
    }

    #[test]
    fn anti_cell_charged_on_zero() {
        assert!(CellPolarity::Anti.is_charged(false));
        assert!(!CellPolarity::Anti.is_charged(true));
    }

    #[test]
    fn blocks_alternate() {
        let l = CellLayout::new(4, false);
        assert_eq!(l.polarity_of_physical_row(3), CellPolarity::True);
        assert_eq!(l.polarity_of_physical_row(4), CellPolarity::Anti);
        assert_eq!(l.polarity_of_physical_row(7), CellPolarity::Anti);
        assert_eq!(l.polarity_of_physical_row(8), CellPolarity::True);
    }

    #[test]
    fn starts_anti_inverts() {
        let l = CellLayout::new(4, true);
        assert_eq!(l.polarity_of_physical_row(0), CellPolarity::Anti);
        assert_eq!(l.polarity_of_physical_row(4), CellPolarity::True);
    }

    #[test]
    fn all_true_never_anti() {
        let l = CellLayout::all_true();
        for r in [0u32, 1000, 1_000_000] {
            assert_eq!(l.polarity_of_physical_row(r), CellPolarity::True);
        }
    }

    #[test]
    #[should_panic(expected = "block_rows")]
    fn zero_block_panics() {
        CellLayout::new(0, false);
    }
}
