//! Read-disturbance access patterns beyond the paper's default.
//!
//! The paper characterizes with the double-sided pattern (§3.1), the
//! most effective known. This module generalizes to the full family the
//! RowHammer literature uses — single-sided, double-sided, many-sided
//! "TRRespass-style", and half-double — as reusable aggressor layouts so
//! campaigns and attacks can be expressed uniformly.

use serde::{Deserialize, Serialize};

use crate::mapping::RowMapping;

/// A named aggressor-row layout around a victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// One aggressor directly adjacent to the victim.
    SingleSided,
    /// Both physical neighbors of the victim (the paper's pattern).
    DoubleSided,
    /// `n` aggressor pairs around `n` interleaved victims (TRRespass
    /// style); the layout for one victim uses the aggressors at ±1 and
    /// the decoys spaced further out.
    ManySided {
        /// Number of aggressor rows in total (≥ 2, even).
        aggressors: u8,
    },
    /// Half-Double: a near aggressor at distance 1 and a far aggressor
    /// at distance 2 on the same side.
    HalfDouble,
}

impl AccessPattern {
    /// The *physical* row offsets (relative to the victim's physical
    /// row) that this pattern activates, with per-offset activation
    /// weight (fraction of the hammer budget).
    pub fn offsets(&self) -> Vec<(i64, f64)> {
        match self {
            AccessPattern::SingleSided => vec![(1, 1.0)],
            AccessPattern::DoubleSided => vec![(-1, 0.5), (1, 0.5)],
            AccessPattern::ManySided { aggressors } => {
                let n = (*aggressors).max(2) as i64;
                let mut offsets = Vec::new();
                // Pairs at ±1, ±3, ±5, … (victims interleave between).
                let pairs = n / 2;
                let weight = 1.0 / n as f64;
                for i in 0..pairs {
                    let d = 2 * i + 1;
                    offsets.push((-d, weight));
                    offsets.push((d, weight));
                }
                offsets
            }
            AccessPattern::HalfDouble => vec![(1, 0.7), (2, 0.3)],
        }
    }

    /// Resolves the pattern to logical aggressor rows for a victim,
    /// dropping offsets that fall outside the bank. Returns
    /// `(logical_row, weight)` pairs.
    pub fn aggressors_of(
        &self,
        mapping: RowMapping,
        victim_logical: u32,
        rows: u32,
    ) -> Vec<(u32, f64)> {
        let phys = i64::from(mapping.physical_of(victim_logical));
        self.offsets()
            .into_iter()
            .filter_map(|(offset, weight)| {
                let target = phys + offset;
                if (0..i64::from(rows)).contains(&target) {
                    Some((mapping.logical_of(target as u32), weight))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Relative disturbance effectiveness versus double-sided at the
    /// same per-aggressor hammer count (distance-2 rows couple far more
    /// weakly; single-sided lacks the compounding of both neighbors).
    pub fn effectiveness(&self) -> f64 {
        match self {
            AccessPattern::DoubleSided => 1.0,
            AccessPattern::SingleSided => 0.4,
            AccessPattern::ManySided { .. } => 0.95,
            AccessPattern::HalfDouble => 0.55,
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            AccessPattern::SingleSided => "single-sided".to_owned(),
            AccessPattern::DoubleSided => "double-sided".to_owned(),
            AccessPattern::ManySided { aggressors } => format!("{aggressors}-sided"),
            AccessPattern::HalfDouble => "half-double".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_sided_hits_both_neighbors() {
        let aggr = AccessPattern::DoubleSided.aggressors_of(RowMapping::Direct, 100, 1000);
        assert_eq!(aggr, vec![(99, 0.5), (101, 0.5)]);
    }

    #[test]
    fn single_sided_hits_one() {
        let aggr = AccessPattern::SingleSided.aggressors_of(RowMapping::Direct, 100, 1000);
        assert_eq!(aggr, vec![(101, 1.0)]);
    }

    #[test]
    fn many_sided_weights_sum_to_one() {
        for n in [2u8, 4, 8, 10] {
            let p = AccessPattern::ManySided { aggressors: n };
            let total: f64 = p.offsets().iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "{n}-sided weights sum to {total}");
            assert_eq!(p.offsets().len(), n as usize);
        }
    }

    #[test]
    fn edge_victims_lose_out_of_range_aggressors() {
        let aggr = AccessPattern::DoubleSided.aggressors_of(RowMapping::Direct, 0, 1000);
        assert_eq!(aggr, vec![(1, 0.5)]);
        let aggr = AccessPattern::HalfDouble.aggressors_of(RowMapping::Direct, 998, 1000);
        assert_eq!(aggr.len(), 1, "distance-2 row 1000 is out of range");
    }

    #[test]
    fn aggressors_respect_mapping() {
        // With VendorB (bit 0/1 swap), logical neighbors differ from
        // physical ones.
        let aggr = AccessPattern::DoubleSided.aggressors_of(RowMapping::VendorB, 4, 1000);
        let phys = RowMapping::VendorB.physical_of(4);
        for (logical, _) in aggr {
            let d = i64::from(RowMapping::VendorB.physical_of(logical)) - i64::from(phys);
            assert_eq!(d.abs(), 1);
        }
    }

    #[test]
    fn double_sided_is_most_effective() {
        for p in [
            AccessPattern::SingleSided,
            AccessPattern::ManySided { aggressors: 6 },
            AccessPattern::HalfDouble,
        ] {
            assert!(p.effectiveness() <= AccessPattern::DoubleSided.effectiveness());
        }
    }

    #[test]
    fn names_render() {
        assert_eq!(AccessPattern::ManySided { aggressors: 10 }.name(), "10-sided");
        assert_eq!(AccessPattern::DoubleSided.name(), "double-sided");
    }
}
