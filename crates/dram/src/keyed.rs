//! Counter-based (keyed) random streams for hammer-session dynamics.
//!
//! The sequential dynamics RNG in [`crate::device::DramDevice`] makes
//! every stochastic draw depend on the *number and order* of preceding
//! draws: skipping a hammer session (as an adaptive RDT search does)
//! shifts the stream and silently re-randomizes everything after it. A
//! [`KeyedRng`] instead derives its stream purely from *what is being
//! drawn* — the dynamics seed, the measurement epoch, and the identity
//! of the cell/trap — so any search strategy that visits a grid point
//! obtains exactly the draws a linear sweep would have obtained there.
//!
//! Concretely, each draw site builds a fresh `KeyedRng` from a key
//! tuple (splitmix64-folded, Philox-style counter stream) and pulls the
//! few values it needs:
//!
//! - [`KeyedRng::for_threshold`] — the per-measurement lognormal
//!   threshold jitter of one weak cell. Keyed by epoch (not by session):
//!   within one measurement every session sees the *same* sampled
//!   threshold, which makes the flip predicate monotone in the hammer
//!   count and the gallop/bisect search exact.
//! - [`KeyedRng::for_trap`] — the compound Markov catch-up step of one
//!   trap for one measurement epoch.
//!
//! The sequential RNG remains in place for everything outside keyed
//! sessions (device construction, row materialization, legacy probes),
//! byte-compatible with earlier releases.

use rand::RngCore;

/// Domain-separation tag for per-measurement threshold jitter draws.
pub const TAG_THRESHOLD: u64 = 0x7472_6573_686F_6C64; // "treshold"
/// Domain-separation tag for per-measurement trap catch-up draws.
pub const TAG_TRAP: u64 = 0x7472_6170_5F6B_6579; // "trap_key"

/// Finalizing 64-bit mixer (splitmix64): full avalanche, bijective.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based random stream keyed by draw identity.
///
/// Construction folds the key parts through `mix64`; the stream then
/// advances exactly like the shim's `SplitMix64` (golden-ratio counter +
/// finalizer), so statistical quality matches the seeded generators used
/// elsewhere in the model.
#[derive(Debug, Clone)]
pub struct KeyedRng {
    state: u64,
}

impl KeyedRng {
    /// Builds a stream from explicit key parts. Order matters; callers
    /// should lead with a domain tag so different draw sites with equal
    /// numeric keys cannot collide.
    #[inline]
    pub fn from_key(parts: &[u64]) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for &part in parts {
            state = mix64(state ^ part).wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        KeyedRng { state }
    }

    /// The stream for one weak cell's threshold jitter in measurement
    /// `epoch`. Deliberately *not* keyed by session index: a single
    /// threshold per measurement keeps the flip predicate monotone in
    /// hammer count (see the module docs).
    #[inline]
    pub fn for_threshold(dynamics_seed: u64, epoch: u64, bank: u64, row: u32, bit: u32) -> Self {
        KeyedRng::from_key(&[
            TAG_THRESHOLD,
            dynamics_seed,
            epoch,
            bank,
            u64::from(row),
            u64::from(bit),
        ])
    }

    /// The stream for one trap's compound Markov catch-up step covering
    /// measurement `epoch`.
    #[inline]
    pub fn for_trap(
        dynamics_seed: u64,
        epoch: u64,
        bank: u64,
        row: u32,
        bit: u32,
        trap_idx: u64,
    ) -> Self {
        KeyedRng::from_key(&[
            TAG_TRAP,
            dynamics_seed,
            epoch,
            bank,
            u64::from(row),
            u64::from(bit),
            trap_idx,
        ])
    }
}

impl RngCore for KeyedRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_reproduces_the_stream() {
        let mut a = KeyedRng::for_threshold(7, 3, 0, 100, 12);
        let mut b = KeyedRng::for_threshold(7, 3, 0, 100, 12);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn any_key_part_changes_the_stream() {
        let base = KeyedRng::for_threshold(7, 3, 0, 100, 12).next_u64();
        assert_ne!(base, KeyedRng::for_threshold(8, 3, 0, 100, 12).next_u64());
        assert_ne!(base, KeyedRng::for_threshold(7, 4, 0, 100, 12).next_u64());
        assert_ne!(base, KeyedRng::for_threshold(7, 3, 1, 100, 12).next_u64());
        assert_ne!(base, KeyedRng::for_threshold(7, 3, 0, 101, 12).next_u64());
        assert_ne!(base, KeyedRng::for_threshold(7, 3, 0, 100, 13).next_u64());
    }

    #[test]
    fn domain_tags_separate_draw_sites() {
        let t = KeyedRng::for_threshold(7, 3, 0, 100, 12).next_u64();
        let trap = KeyedRng::for_trap(7, 3, 0, 100, 12, 0).next_u64();
        assert_ne!(t, trap);
    }

    #[test]
    fn stream_is_uniform_enough_for_gen_bool() {
        // Coarse sanity: the keyed stream feeds gen_bool/gen::<f64>, so
        // the f64 mapping must cover (0, 1) evenly at the ~1% level.
        let mut rng = KeyedRng::from_key(&[1, 2, 3]);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean of uniform draws was {mean}");
    }

    #[test]
    fn construction_is_order_sensitive() {
        assert_ne!(KeyedRng::from_key(&[1, 2]).next_u64(), KeyedRng::from_key(&[2, 1]).next_u64());
    }
}
