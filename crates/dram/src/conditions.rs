//! Test conditions: the environmental axes the paper sweeps (§5).
//!
//! A VRD profile is a function of data pattern, aggressor-row on-time
//! (`t_AggOn`), and temperature. [`TestConditions`] bundles the three, with
//! the paper's standard values as constructors.

use serde::{Deserialize, Serialize};

use crate::pattern::DataPattern;

/// Minimum `t_RAS`-like aggressor on-time used by the paper (≈ 35 ns).
pub const T_AGG_ON_MIN_TRAS_NS: f64 = 35.0;

/// DDR4 `t_REFI` (7.8 µs) in nanoseconds — the paper's second on-time.
pub const T_AGG_ON_TREFI_NS: f64 = 7_800.0;

/// `9 × t_REFI` (70.2 µs) in nanoseconds — the paper's third on-time, the
/// maximum time a row may stay open per the DDR4/HBM2 standards.
pub const T_AGG_ON_9TREFI_NS: f64 = 70_200.0;

/// The three aggressor on-time values tested in §5.
pub const T_AGG_ON_VALUES_NS: [f64; 3] =
    [T_AGG_ON_MIN_TRAS_NS, T_AGG_ON_TREFI_NS, T_AGG_ON_9TREFI_NS];

/// The three temperatures tested in §5 (°C).
pub const TEMPERATURES_C: [f64; 3] = [50.0, 65.0, 80.0];

/// One combination of the paper's test parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestConditions {
    /// Data pattern used to initialize victim/aggressor/outer rows.
    pub pattern: DataPattern,
    /// Aggressor row on-time per activation, in nanoseconds.
    pub t_agg_on_ns: f64,
    /// DRAM temperature in °C.
    pub temperature_c: f64,
}

impl TestConditions {
    /// The paper's foundational-experiment conditions: Checkered0 data
    /// pattern, minimum `t_RAS` on-time, 50 °C.
    pub fn foundational() -> Self {
        TestConditions {
            pattern: DataPattern::Checkered0,
            t_agg_on_ns: T_AGG_ON_MIN_TRAS_NS,
            temperature_c: 50.0,
        }
    }

    /// Replaces the data pattern.
    pub fn with_pattern(mut self, pattern: DataPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Replaces the aggressor on-time (ns).
    ///
    /// # Panics
    ///
    /// Panics if `t_agg_on_ns` is not positive.
    pub fn with_t_agg_on_ns(mut self, t_agg_on_ns: f64) -> Self {
        assert!(t_agg_on_ns > 0.0, "t_agg_on must be positive");
        self.t_agg_on_ns = t_agg_on_ns;
        self
    }

    /// Replaces the temperature (°C).
    pub fn with_temperature_c(mut self, temperature_c: f64) -> Self {
        self.temperature_c = temperature_c;
        self
    }

    /// The full 4 × 3 × 3 grid of test-parameter combinations of §5.
    pub fn full_grid() -> Vec<TestConditions> {
        let mut grid = Vec::with_capacity(36);
        for pattern in DataPattern::ALL {
            for &t in &T_AGG_ON_VALUES_NS {
                for &temp in &TEMPERATURES_C {
                    grid.push(TestConditions { pattern, t_agg_on_ns: t, temperature_c: temp });
                }
            }
        }
        grid
    }
}

impl Default for TestConditions {
    fn default() -> Self {
        TestConditions::foundational()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foundational_matches_paper() {
        let c = TestConditions::foundational();
        assert_eq!(c.pattern, DataPattern::Checkered0);
        assert_eq!(c.t_agg_on_ns, 35.0);
        assert_eq!(c.temperature_c, 50.0);
    }

    #[test]
    fn grid_has_36_combinations() {
        let g = TestConditions::full_grid();
        assert_eq!(g.len(), 36);
        // All distinct.
        for (i, a) in g.iter().enumerate() {
            for b in &g[i + 1..] {
                assert!(a != b);
            }
        }
    }

    #[test]
    fn builders_replace_fields() {
        let c = TestConditions::foundational()
            .with_pattern(DataPattern::Rowstripe1)
            .with_t_agg_on_ns(T_AGG_ON_TREFI_NS)
            .with_temperature_c(80.0);
        assert_eq!(c.pattern, DataPattern::Rowstripe1);
        assert_eq!(c.t_agg_on_ns, 7800.0);
        assert_eq!(c.temperature_c, 80.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_on_time_panics() {
        TestConditions::foundational().with_t_agg_on_ns(0.0);
    }

    #[test]
    fn trefi_values_consistent() {
        assert!((T_AGG_ON_9TREFI_NS - 9.0 * T_AGG_ON_TREFI_NS).abs() < 1e-9);
    }
}
