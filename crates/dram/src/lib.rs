//! Behavioural DRAM device model for the VRD reproduction.
//!
//! This crate replaces the real DDR4/HBM2 chips of the paper with a
//! software device model whose read-disturbance behaviour follows the
//! paper's own hypothetical explanation for variable read disturbance
//! (§4.2): weak victim cells whose effective disturbance thresholds are
//! modulated by charge traps that randomly occupy/vacate between hammer
//! sessions.
//!
//! Main entry points:
//!
//! - [`device::DramDevice`] — a bank-organized DRAM chip you can
//!   activate/precharge/read/write; reading a row materializes
//!   read-disturbance bitflips from accumulated aggressor activity.
//! - [`spec::ModuleSpec`] and [`fleet::Fleet`] — the 21 DDR4 modules and
//!   4 HBM2 chips of the paper's Table 1, with per-module VRD model
//!   parameters calibrated to Table 7.
//! - [`family::DeviceFamily`] — per-family descriptors (topology, timing,
//!   addressing policy, per-bank variation); `spec.family()` is the
//!   single source of device geometry.
//! - [`mapping::RowMapping`] — logical→physical row address translation
//!   schemes plus reverse engineering (§3.1).
//! - [`pattern::DataPattern`] — the four data patterns of Table 2.
//!
//! # Examples
//!
//! ```
//! use vrd_dram::device::{DeviceConfig, DramDevice};
//! use vrd_dram::pattern::DataPattern;
//!
//! let mut dev = DramDevice::new(DeviceConfig::small_test(), 42);
//! let victim = 100;
//! dev.write_row(0, victim, DataPattern::Checkered0.victim_byte());
//! dev.write_row(0, victim - 1, DataPattern::Checkered0.aggressor_byte());
//! dev.write_row(0, victim + 1, DataPattern::Checkered0.aggressor_byte());
//! dev.hammer_double_sided(0, victim, 200_000, 35.0);
//! let flips = dev.read_and_compare(0, victim, DataPattern::Checkered0.victim_byte());
//! // A heavy enough hammer count flips at least the row's weakest cell,
//! // if the row has any weak cell at all.
//! println!("{} bitflips", flips.len());
//! ```

pub mod access;
pub mod batch;
pub mod cells;
pub mod conditions;
pub mod device;
pub mod error;
pub mod family;
pub mod fleet;
pub mod hashing;
pub mod keyed;
pub mod mapping;
pub mod pattern;
pub mod retention;
pub mod spatial;
pub mod spec;
pub mod vrd;

pub use batch::{LaneThresholds, RowBatchProfile};
pub use cells::CellPolarity;
pub use conditions::TestConditions;
pub use device::{Bitflip, DeviceConfig, DramDevice};
pub use error::DramError;
pub use family::{BankAddress, BankVariation, ChipMapping, DeviceFamily, FamilyTimings, Topology};
pub use fleet::{Fleet, Module};
pub use mapping::RowMapping;
pub use pattern::DataPattern;
pub use spec::{DieDensity, DramStandard, Manufacturer, ModuleSpec};
