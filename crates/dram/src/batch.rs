//! Batched struct-of-arrays evaluation of a victim row's weak cells.
//!
//! Under keyed dynamics ([`crate::keyed`]) every per-measurement draw is
//! a pure function of `(dynamics seed, epoch, cell identity)`: within one
//! measurement epoch a weak cell's sampled threshold is a *constant*, and
//! trap evolution advances exactly once per epoch. The scalar hot path
//! still re-derives those constants on every hammer session — three
//! per-row restorations per probe, each running the full lognormal
//! sampler per cell.
//!
//! This module is the struct-of-arrays alternative: a
//! [`RowBatchProfile`] captures one `(epoch, bank, row)` by drawing all
//! per-bit thresholds once, laid out as dense lanes
//! ([`LaneThresholds`]), after which each probe of the epoch reduces to
//! one branch-free compare pass: thresholds are compared against the
//! probe's effective hammer count 64 lanes at a time, flips materialize
//! as `u64` lane masks, and set lanes are extracted with
//! `trailing_zeros` in cell order — bit-for-bit the flips the scalar
//! path would have pushed.
//!
//! The profile is built by
//! [`DramDevice::prepare_batch_epoch`](crate::device::DramDevice::prepare_batch_epoch)
//! and consumed by
//! [`DramDevice::batch_hammer_session`](crate::device::DramDevice::batch_hammer_session);
//! the byte-identity contract between the two paths is enforced by the
//! differential suites in `tests/batch_equivalence.rs`.

/// Per-cell sampled thresholds for one measurement epoch, padded to
/// 64-lane words for branch-free mask building.
///
/// Lane `i` holds cell `i`'s threshold (in the row's weak-cell order);
/// padding lanes hold `f64::INFINITY` so they never compare as flipped.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneThresholds {
    /// Sampled thresholds, length padded up to a multiple of 64.
    thresholds: Vec<f64>,
    /// Bit position of each real lane (unpadded length).
    bits: Vec<u32>,
}

impl LaneThresholds {
    /// Builds a lane set from parallel `bits`/`thresholds` arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays disagree in length.
    pub fn new(bits: Vec<u32>, mut thresholds: Vec<f64>) -> Self {
        assert_eq!(bits.len(), thresholds.len(), "one threshold per cell");
        let padded = thresholds.len().div_ceil(64) * 64;
        thresholds.resize(padded, f64::INFINITY);
        LaneThresholds { thresholds, bits }
    }

    /// Number of real (unpadded) lanes.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the set holds no cells at all.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Appends the bit positions of every lane whose threshold is at or
    /// below `effective_hammers`, in lane (= weak-cell) order.
    ///
    /// The compare loop runs over `chunks_exact(64)` with a branch-free
    /// select per lane, so it vectorizes; only words with at least one
    /// flip pay for bit extraction.
    pub fn flips_into(&self, effective_hammers: f64, out: &mut Vec<u32>) {
        for (word, chunk) in self.thresholds.chunks_exact(64).enumerate() {
            let mut mask = 0u64;
            for (lane, &threshold) in chunk.iter().enumerate() {
                mask |= u64::from(effective_hammers >= threshold) << lane;
            }
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                out.push(self.bits[(word << 6) | lane]);
                mask &= mask - 1;
            }
        }
    }

    /// Number of lanes that flip at `effective_hammers` (popcount over
    /// the lane masks, no extraction).
    pub fn count(&self, effective_hammers: f64) -> u32 {
        let mut total = 0u32;
        for chunk in self.thresholds.chunks_exact(64) {
            let mut mask = 0u64;
            for (lane, &threshold) in chunk.iter().enumerate() {
                mask |= u64::from(effective_hammers >= threshold) << lane;
            }
            total += mask.count_ones();
        }
        total
    }
}

/// One `(epoch, bank, victim row)` prepared for batched hammer sessions.
///
/// Captures everything a probe needs: the addresses involved in a
/// double-sided session, the fills the session writes, the aggressor
/// on-time, and the per-cell threshold lanes for the epoch — one set for
/// hammered probes and (when the on-time differs) one for idle
/// (`hammer_count == 0`) probes, whose accumulated on-time never exceeds
/// the minimum `t_RAS`.
#[derive(Debug, Clone)]
pub struct RowBatchProfile {
    /// Measurement epoch the thresholds were drawn for.
    pub(crate) epoch: u64,
    /// Bank of the victim row.
    pub(crate) bank: usize,
    /// The victim row.
    pub(crate) victim: u32,
    /// Physical neighbor below the victim (first aggressor).
    pub(crate) below: u32,
    /// Physical neighbor above the victim (second aggressor).
    pub(crate) above: u32,
    /// Physical neighbor below the first aggressor, if any.
    pub(crate) outer_below: Option<u32>,
    /// Physical neighbor above the second aggressor, if any.
    pub(crate) outer_above: Option<u32>,
    /// Fill byte the session writes to the victim row.
    pub(crate) victim_fill: u8,
    /// Fill byte the session writes to both aggressor rows.
    pub(crate) aggressor_fill: u8,
    /// Aggressor on-time of hammered probes (ns), already clamped to the
    /// platform's `t_RAS`.
    pub(crate) hammer_t_on_ns: f64,
    /// Threshold lanes under the hammered-probe conditions.
    pub(crate) hammer: LaneThresholds,
    /// Threshold lanes for idle probes; `None` when identical to
    /// [`hammer`](Self::hammer) (the common minimum-`t_RAS` case).
    pub(crate) idle: Option<LaneThresholds>,
}

impl RowBatchProfile {
    /// Measurement epoch the profile was prepared for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bank of the victim row.
    pub fn bank(&self) -> usize {
        self.bank
    }

    /// The victim row.
    pub fn victim(&self) -> u32 {
        self.victim
    }

    /// The below aggressor row.
    pub fn below(&self) -> u32 {
        self.below
    }

    /// The above aggressor row.
    pub fn above(&self) -> u32 {
        self.above
    }

    /// Fill byte the session writes to the victim row.
    pub fn victim_fill(&self) -> u8 {
        self.victim_fill
    }

    /// Fill byte the session writes to both aggressor rows.
    pub fn aggressor_fill(&self) -> u8 {
        self.aggressor_fill
    }

    /// Number of weak cells captured in the profile.
    pub fn weak_cells(&self) -> usize {
        self.hammer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_never_flips() {
        let lanes = LaneThresholds::new(Vec::new(), Vec::new());
        assert!(lanes.is_empty());
        let mut out = Vec::new();
        lanes.flips_into(1e18, &mut out);
        assert!(out.is_empty());
        assert_eq!(lanes.count(1e18), 0);
    }

    #[test]
    fn flips_match_scalar_compare_in_cell_order() {
        // 70 lanes spanning two words, thresholds descending so the
        // flip set grows from the back as the hammer count rises.
        let bits: Vec<u32> = (0..70).map(|i| 1000 + i).collect();
        let thresholds: Vec<f64> = (0..70).map(|i| f64::from(100 - i)).collect();
        let lanes = LaneThresholds::new(bits.clone(), thresholds.clone());
        for eff in [0.0, 30.5, 31.0, 100.0, 1e9] {
            let mut got = Vec::new();
            lanes.flips_into(eff, &mut got);
            let want: Vec<u32> =
                bits.iter().zip(&thresholds).filter(|&(_, &t)| eff >= t).map(|(&b, _)| b).collect();
            assert_eq!(got, want, "eff = {eff}");
            assert_eq!(lanes.count(eff) as usize, want.len());
        }
    }

    #[test]
    fn boundary_is_inclusive_like_the_scalar_predicate() {
        // The scalar path flips on `hammers >= threshold`; the lane
        // compare must keep the equality case.
        let lanes = LaneThresholds::new(vec![7], vec![500.0]);
        let mut out = Vec::new();
        lanes.flips_into(500.0, &mut out);
        assert_eq!(out, vec![7]);
        out.clear();
        lanes.flips_into(499.999, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn padding_lanes_stay_silent() {
        // One real lane in a 64-lane word: infinity padding must never
        // flip even at absurd hammer counts.
        let lanes = LaneThresholds::new(vec![3], vec![1.0]);
        let mut out = Vec::new();
        lanes.flips_into(f64::MAX, &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    #[should_panic(expected = "one threshold per cell")]
    fn mismatched_arrays_panic() {
        LaneThresholds::new(vec![1, 2], vec![1.0]);
    }
}
