//! The trap-based variable-read-disturbance engine.
//!
//! The paper's hypothetical explanation for VRD (§4.2) attributes the
//! temporal variation in a row's read-disturbance threshold (RDT) to charge
//! traps in the shared active region of aggressor and victim cells whose
//! occupied/unoccupied state changes randomly over time, as in the variable
//! retention time (VRT) phenomenon. This module implements exactly that
//! mechanism:
//!
//! - A vulnerable row owns a handful of [`WeakCell`]s — the tail of the
//!   per-cell disturbance distribution. All other cells have thresholds far
//!   above any tested hammer count and need no explicit state.
//! - Each weak cell owns up to a few [`Trap`]s. Between hammer sessions
//!   (concretely: on every victim-row charge restoration) each trap's
//!   occupancy takes a Markov-chain step. An occupied trap assists electron
//!   migration into the victim cell, lowering the cell's effective
//!   threshold multiplicatively.
//! - The effective threshold also depends on the test conditions: data
//!   pattern (per-cell coupling sensitivities), aggressor on-time
//!   (RowPress amplification), temperature, and whether the stored data
//!   leaves the cell charged.
//!
//! The discrete trap states produce the paper's "RDT has multiple states"
//! (Finding 2); per-session threshold jitter (thermal/supply noise) makes
//! consecutive measurements differ ("79% of state changes happen after
//! every measurement", Finding 3) and forms the near-normal histogram
//! bulk; slow, low-occupancy deep traps produce the rare low-RDT
//! excursions that make the minimum RDT so hard to observe (Findings
//! 7–9), and one dominant trap produces the bimodal histogram of HBM2
//! Chip1 (Fig. 4).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cells::CellPolarity;
use crate::conditions::{TestConditions, T_AGG_ON_MIN_TRAS_NS};

/// A charge trap adjacent to a weak cell.
///
/// Occupancy evolves as a two-state Markov chain: on each step, with
/// probability `mix_rate` the state is redrawn from the stationary
/// distribution (`occupied` with probability `occupancy`), otherwise it is
/// retained. This parameterization makes the stationary distribution and
/// the mixing speed independently controllable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trap {
    /// Stationary probability of being occupied, in `[0, 1]`.
    pub occupancy: f64,
    /// Per-step probability of redrawing the state, in `(0, 1]`.
    pub mix_rate: f64,
    /// Relative threshold reduction when occupied, in `[0, 1)`:
    /// an occupied trap multiplies the cell threshold by `1 - assist`.
    pub assist: f64,
    /// Current state.
    pub occupied: bool,
}

impl Trap {
    /// Creates a trap in a state drawn from its stationary distribution.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside its documented range.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, occupancy: f64, mix_rate: f64, assist: f64) -> Self {
        assert!((0.0..=1.0).contains(&occupancy), "occupancy must be in [0, 1]");
        assert!(mix_rate > 0.0 && mix_rate <= 1.0, "mix_rate must be in (0, 1]");
        assert!((0.0..1.0).contains(&assist), "assist must be in [0, 1)");
        Trap { occupancy, mix_rate, assist, occupied: rng.gen_bool(occupancy) }
    }

    /// One Markov step. `temperature_c` accelerates mixing: trap
    /// capture/emission is thermally activated, so the effective redraw
    /// probability grows with temperature (+1%/°C relative to 50 °C,
    /// clamped to `(0, 1]`).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, temperature_c: f64) {
        let accel = 1.0 + 0.01 * (temperature_c - 50.0);
        let rate = (self.mix_rate * accel).clamp(f64::MIN_POSITIVE, 1.0);
        if rng.gen_bool(rate) {
            self.occupied = rng.gen_bool(self.occupancy);
        }
    }

    /// The threshold multiplier contributed by this trap right now.
    #[inline]
    pub fn multiplier(&self) -> f64 {
        if self.occupied {
            1.0 - self.assist
        } else {
            1.0
        }
    }
}

/// A weak victim cell: one of the few cells in a row whose disturbance
/// threshold falls inside the testable hammer-count range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakCell {
    /// Bit position within the row (0 = LSB of byte 0).
    pub bit: u32,
    /// Data-encoding polarity of this cell.
    pub polarity: CellPolarity,
    /// Base double-sided threshold (activations per aggressor) at
    /// reference conditions: charged cell, pattern coupling 1.0,
    /// `t_AggOn` = min `t_RAS`, 50 °C, all traps empty.
    pub base_threshold: f64,
    /// Multiplicative pattern sensitivity, one factor per
    /// [`crate::pattern::DataPattern`] index.
    pub pattern_sense: [f64; 4],
    /// RowPress exponent: threshold multiplier
    /// `(t_AggOn / tRAS)^(-press_coeff)` for `t_AggOn > tRAS`.
    pub press_coeff: f64,
    /// Relative threshold change per °C away from 50 °C (may be negative).
    pub temp_coeff: f64,
    /// Threshold multiplier applied when the stored data leaves this cell
    /// *discharged* (charge-gain flips are weaker than charge-loss flips).
    pub discharged_penalty: f64,
    /// Per-session multiplicative threshold noise (lognormal sigma):
    /// thermal and supply fluctuations jitter the effective threshold a
    /// few percent between hammer sessions, producing the near-normal
    /// bulk of the measured RDT distribution (Fig. 4) on top of the
    /// discrete trap states.
    pub jitter_sigma: f64,
    /// Multiplicative modulation of the VRD *strength* (jitter sigma)
    /// per data pattern: different patterns couple differently into the
    /// noise mechanisms, so a chip's VRD profile is pattern-dependent
    /// (Findings 12–13) beyond the threshold-scale effect of
    /// `pattern_sense`.
    pub pattern_vrd_sense: [f64; 4],
    /// The traps assisting disturbance of this cell.
    pub traps: Vec<Trap>,
}

impl WeakCell {
    /// Effective threshold (activations per aggressor, double-sided) under
    /// `conditions`, given the bit value currently stored in the cell.
    ///
    /// Returns the hammer count at which this cell flips; always positive.
    #[inline]
    pub fn effective_threshold(&self, conditions: &TestConditions, stored_bit: bool) -> f64 {
        let mut t = self.base_threshold;
        t *= self.pattern_sense[conditions.pattern.index()];
        // RowPress amplification: longer on-time lowers the threshold.
        let on_ratio = (conditions.t_agg_on_ns / T_AGG_ON_MIN_TRAS_NS).max(1.0);
        t *= on_ratio.powf(-self.press_coeff);
        // Temperature sensitivity, clamped so the factor stays positive.
        t *= (1.0 + self.temp_coeff * (conditions.temperature_c - 50.0)).max(0.05);
        // Trap assists.
        for trap in &self.traps {
            t *= trap.multiplier();
        }
        // Discharged cells flip by charge gain, which needs more hammers.
        if !self.polarity.is_charged(stored_bit) {
            t *= self.discharged_penalty;
        }
        t.max(1.0)
    }

    /// Steps every trap's Markov chain once (one charge-restoration event).
    pub fn step_traps<R: Rng + ?Sized>(&mut self, rng: &mut R, temperature_c: f64) {
        for trap in &mut self.traps {
            trap.step(rng, temperature_c);
        }
    }

    /// Samples the threshold for one hammer session: the deterministic
    /// [`effective_threshold`](Self::effective_threshold) scaled by the
    /// per-session lognormal jitter.
    #[inline]
    pub fn sample_threshold<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        conditions: &TestConditions,
        stored_bit: bool,
    ) -> f64 {
        let base = self.effective_threshold(conditions, stored_bit);
        let sigma = self.jitter_sigma * self.pattern_vrd_sense[conditions.pattern.index()];
        if sigma == 0.0 {
            return base;
        }
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (base * (sigma * z).exp()).max(1.0)
    }

    /// The smallest threshold this cell can exhibit under `conditions`
    /// (all traps occupied), for the given stored bit.
    pub fn min_possible_threshold(&self, conditions: &TestConditions, stored_bit: bool) -> f64 {
        let mut all_occupied = self.clone();
        for trap in &mut all_occupied.traps {
            trap.occupied = true;
        }
        all_occupied.effective_threshold(conditions, stored_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::DataPattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_cell() -> WeakCell {
        WeakCell {
            bit: 0,
            polarity: CellPolarity::True,
            base_threshold: 10_000.0,
            pattern_sense: [1.0, 1.1, 0.9, 1.05],
            press_coeff: 0.2,
            temp_coeff: -0.002,
            discharged_penalty: 2.5,
            jitter_sigma: 0.0,
            pattern_vrd_sense: [1.0; 4],
            traps: vec![],
        }
    }

    #[test]
    fn trap_respects_stationary_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut trap = Trap::new(&mut rng, 0.3, 1.0, 0.1);
        let mut occupied = 0u32;
        for _ in 0..20_000 {
            trap.step(&mut rng, 50.0);
            occupied += u32::from(trap.occupied);
        }
        let frac = f64::from(occupied) / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "stationary occupancy {frac}");
    }

    #[test]
    fn slow_trap_changes_rarely() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trap = Trap::new(&mut rng, 0.5, 0.01, 0.1);
        let mut changes = 0u32;
        let mut prev = trap.occupied;
        for _ in 0..10_000 {
            trap.step(&mut rng, 50.0);
            changes += u32::from(trap.occupied != prev);
            prev = trap.occupied;
        }
        // Redraw prob 0.01, half of redraws change state: ~50 changes.
        assert!(changes < 200, "slow trap changed {changes} times");
    }

    #[test]
    fn temperature_accelerates_mixing() {
        let mut rng = StdRng::seed_from_u64(3);
        let count_changes = |temp: f64, rng: &mut StdRng| {
            let mut trap = Trap::new(rng, 0.5, 0.2, 0.1);
            let mut changes = 0u32;
            let mut prev = trap.occupied;
            for _ in 0..20_000 {
                trap.step(rng, temp);
                changes += u32::from(trap.occupied != prev);
                prev = trap.occupied;
            }
            changes
        };
        let cold = count_changes(50.0, &mut rng);
        let hot = count_changes(80.0, &mut rng);
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn occupied_trap_lowers_threshold() {
        let mut cell = test_cell();
        let mut rng = StdRng::seed_from_u64(4);
        cell.traps.push(Trap::new(&mut rng, 0.5, 1.0, 0.2));
        cell.traps[0].occupied = false;
        let clean = cell.effective_threshold(&TestConditions::foundational(), true);
        cell.traps[0].occupied = true;
        let assisted = cell.effective_threshold(&TestConditions::foundational(), true);
        assert!((assisted / clean - 0.8).abs() < 1e-12);
    }

    #[test]
    fn longer_on_time_lowers_threshold() {
        let cell = test_cell();
        let short = cell.effective_threshold(&TestConditions::foundational(), true);
        let long = cell
            .effective_threshold(&TestConditions::foundational().with_t_agg_on_ns(7_800.0), true);
        assert!(long < short, "RowPress must lower the threshold: {long} !< {short}");
    }

    #[test]
    fn on_time_below_tras_does_not_raise_threshold() {
        let cell = test_cell();
        let at_tras = cell.effective_threshold(&TestConditions::foundational(), true);
        let below =
            cell.effective_threshold(&TestConditions::foundational().with_t_agg_on_ns(10.0), true);
        assert_eq!(at_tras, below);
    }

    #[test]
    fn pattern_sensitivity_applies() {
        let cell = test_cell();
        let c = TestConditions::foundational();
        let rs0 = cell.effective_threshold(&c.with_pattern(DataPattern::Rowstripe0), true);
        let ck0 = cell.effective_threshold(&c.with_pattern(DataPattern::Checkered0), true);
        assert!((rs0 / ck0 - 1.0 / 0.9).abs() < 1e-9);
    }

    #[test]
    fn discharged_cell_needs_more_hammers() {
        let cell = test_cell();
        let c = TestConditions::foundational();
        let charged = cell.effective_threshold(&c, true); // true cell, bit 1
        let discharged = cell.effective_threshold(&c, false);
        assert!((discharged / charged - 2.5).abs() < 1e-9);
    }

    #[test]
    fn anti_cell_polarity_inverts_charging() {
        let mut cell = test_cell();
        cell.polarity = CellPolarity::Anti;
        let c = TestConditions::foundational();
        assert!(cell.effective_threshold(&c, false) < cell.effective_threshold(&c, true));
    }

    #[test]
    fn threshold_never_below_one() {
        let mut cell = test_cell();
        cell.base_threshold = 0.001;
        assert_eq!(cell.effective_threshold(&TestConditions::foundational(), true), 1.0);
    }

    #[test]
    fn min_possible_threshold_is_lower_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cell = test_cell();
        for _ in 0..3 {
            cell.traps.push(Trap::new(&mut rng, 0.5, 0.5, 0.1));
        }
        let c = TestConditions::foundational();
        let floor = cell.min_possible_threshold(&c, true);
        for _ in 0..100 {
            cell.step_traps(&mut rng, 50.0);
            assert!(cell.effective_threshold(&c, true) >= floor - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "assist")]
    fn invalid_assist_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        Trap::new(&mut rng, 0.5, 0.5, 1.0);
    }
}
