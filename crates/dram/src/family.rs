//! Device-family descriptors: topology, timings, and policy per DRAM
//! standard.
//!
//! The paper tests two very different device families — 21 DDR4 DIMMs
//! and 4 HBM2 chips — and the related HBM study (PAPERS.md, *Read
//! Disturbance in High Bandwidth Memory*) adds per-bank and
//! pseudo-channel-level structure that a flat `(bank, row)` model cannot
//! express. A [`DeviceFamily`] gathers everything that used to be
//! scattered `match`-on-standard lookups:
//!
//! - [`Topology`]: channels → pseudo-channels → bank groups → banks →
//!   rows, with flat-index ↔ [`BankAddress`] conversion. All geometry is
//!   `u32`, so indices compose without casts.
//! - [`FamilyTimings`]: the tRAS/tRC/tREFI the disturbance model and the
//!   test platform agree on (the full JEDEC bin lives in `vrd-bender`).
//! - Row-mapping and true-/anti-cell layout policy.
//! - [`ChipMapping`]: a well-defined bit → chip (or bit → pseudo-channel)
//!   rule per family, replacing byte-interleave math that silently
//!   degenerated on HBM2.
//! - [`BankVariation`]: the per-bank disturbance-threshold spread. DDR4
//!   banks are modeled as identical (factor exactly 1.0); HBM2 banks are
//!   calibrated to the HBM study's per-bank RDT variation.
//!
//! [`crate::spec::ModuleSpec`] is a thin roster entry over a family
//! descriptor: `spec.family()` is the single source of geometry.

use serde::{Deserialize, Serialize};

use crate::cells::CellLayout;
use crate::mapping::RowMapping;
use crate::spec::{DieDensity, DramStandard, Manufacturer};

/// Hierarchical bank organization of one device.
///
/// The flat bank index used by the device model enumerates the hierarchy
/// with the innermost level fastest:
/// `flat = ((channel × pseudo_channels + pc) × bank_groups + group) ×
/// banks_per_group + bank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels (1 for a DDR4 DIMM rank; HBM2 stacks expose
    /// several, but the paper tests one channel per chip).
    pub channels: u32,
    /// Pseudo-channels per channel (HBM2 splits each channel in two;
    /// DDR4 has none, i.e. 1).
    pub pseudo_channels: u32,
    /// Bank groups per pseudo-channel.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
}

impl Topology {
    /// A flat one-level topology (tests and synthetic devices).
    pub fn linear(banks: u32, rows_per_bank: u32) -> Self {
        Topology {
            channels: 1,
            pseudo_channels: 1,
            bank_groups: 1,
            banks_per_group: banks,
            rows_per_bank,
        }
    }

    /// Total banks across the whole hierarchy.
    pub fn banks(&self) -> u32 {
        self.channels * self.pseudo_channels * self.bank_groups * self.banks_per_group
    }

    /// Total rows across all banks.
    pub fn rows(&self) -> u64 {
        u64::from(self.banks()) * u64::from(self.rows_per_bank)
    }

    /// Decomposes a flat bank index into its hierarchical address.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= self.banks()`.
    pub fn address_of(&self, bank: u32) -> BankAddress {
        assert!(bank < self.banks(), "bank {bank} out of range for {} banks", self.banks());
        let in_group = bank % self.banks_per_group;
        let rest = bank / self.banks_per_group;
        let group = rest % self.bank_groups;
        let rest = rest / self.bank_groups;
        let pseudo_channel = rest % self.pseudo_channels;
        let channel = rest / self.pseudo_channels;
        BankAddress { channel, pseudo_channel, bank_group: group, bank: in_group }
    }

    /// Recomposes a hierarchical address into the flat bank index.
    pub fn flat_index(&self, addr: BankAddress) -> u32 {
        ((addr.channel * self.pseudo_channels + addr.pseudo_channel) * self.bank_groups
            + addr.bank_group)
            * self.banks_per_group
            + addr.bank
    }
}

/// Hierarchical address of one bank within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankAddress {
    /// Channel index.
    pub channel: u32,
    /// Pseudo-channel within the channel.
    pub pseudo_channel: u32,
    /// Bank group within the pseudo-channel.
    pub bank_group: u32,
    /// Bank within the bank group.
    pub bank: u32,
}

/// The timing parameters the disturbance model itself depends on, per
/// family (ns). The full JEDEC speed-bin table lives in `vrd-bender`;
/// these three are duplicated here because the device model's RowPress
/// scaling and refresh bookkeeping need them without a `vrd-bender`
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FamilyTimings {
    /// Minimum row-open time `tRAS`.
    pub t_ras_ns: f64,
    /// Row cycle time `tRC` (ACT-to-ACT, same bank).
    pub t_rc_ns: f64,
    /// Average refresh command interval `tREFI`.
    pub t_refi_ns: f64,
}

impl FamilyTimings {
    /// DDR4 (JESD79-4C, 3200 MT/s bin): tRC = tRAS 35 + tRP 13.75.
    pub fn ddr4() -> Self {
        FamilyTimings { t_ras_ns: 35.0, t_rc_ns: 48.75, t_refi_ns: 7_800.0 }
    }

    /// HBM2 (JESD235D): tRC = tRAS 33 + tRP 14.
    pub fn hbm2() -> Self {
        FamilyTimings { t_ras_ns: 33.0, t_rc_ns: 47.0, t_refi_ns: 3_900.0 }
    }
}

/// Which physical chip (or pseudo-channel) drives a given data bit of a
/// row — a well-defined per-family rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipMapping {
    /// DDR4 DIMM: consecutive `chip_width`-bit slices of the data bus
    /// interleave across the module's chips (x8 parts contribute one
    /// byte each, x16 parts two).
    ByteInterleaved {
        /// Chips on the module.
        chips: u32,
        /// Data bits per chip slice (8 or 16).
        chip_width: u32,
    },
    /// HBM2: a single die whose row bits belong to pseudo-channels in
    /// `word_bits`-wide interleaved words (JESD235D pseudo-channel mode:
    /// 128-bit words).
    PseudoChannel {
        /// Pseudo-channels sharing the row.
        pseudo_channels: u32,
        /// Bits per pseudo-channel word.
        word_bits: u32,
    },
}

impl ChipMapping {
    /// Number of distinct chips (or pseudo-channels) bits map onto.
    pub fn chips(&self) -> u32 {
        match *self {
            ChipMapping::ByteInterleaved { chips, .. } => chips,
            ChipMapping::PseudoChannel { pseudo_channels, .. } => pseudo_channels,
        }
    }

    /// The chip (or pseudo-channel) that drives data bit `bit` of a row.
    pub fn chip_of_bit(&self, bit: u32) -> u32 {
        match *self {
            ChipMapping::ByteInterleaved { chips, chip_width } => (bit / chip_width) % chips,
            ChipMapping::PseudoChannel { pseudo_channels, word_bits } => {
                (bit / word_bits) % pseudo_channels
            }
        }
    }
}

/// Per-bank disturbance-threshold variation of one family.
///
/// The HBM study reports that minimum hammer counts vary noticeably from
/// bank to bank within an HBM2 channel (and between pseudo-channels),
/// whereas the DDR4 methodology of the source paper treats banks as
/// interchangeable. The factor is a pure hash of `(bank, device seed)` —
/// it consumes no sequential RNG draws, so enabling it cannot perturb
/// any other stochastic stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankVariation {
    /// Sigma (ln units) of the per-bank lognormal threshold factor.
    /// Zero means every bank is identical (factor exactly 1.0).
    pub sigma_ln: f64,
}

impl BankVariation {
    /// No per-bank variation: `factor` returns exactly 1.0.
    pub fn none() -> Self {
        BankVariation { sigma_ln: 0.0 }
    }

    /// HBM2 per-bank spread calibrated to the HBM study's bank-to-bank
    /// minimum-hammer-count variation (~±25% across a channel).
    pub fn hbm2() -> Self {
        BankVariation { sigma_ln: 0.12 }
    }

    /// Deterministic threshold factor for one bank. Exactly 1.0 when
    /// `sigma_ln` is zero, so families without per-bank variation are
    /// bitwise unaffected.
    pub fn factor(&self, bank: u32, device_seed: u64) -> f64 {
        if self.sigma_ln == 0.0 {
            return 1.0;
        }
        // Hash the bank index into a unit normal via a SplitMix finalizer
        // + Box–Muller, exactly like `SpatialProfile::factor` does for
        // subarrays (a different salt keeps the streams independent).
        let mut z = device_seed ^ u64::from(bank).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xBA5E_BA11;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u1 = ((z >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-12, 1.0);
        let u2 = ((z.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64)
            .clamp(0.0, 1.0);
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.sigma_ln * n).exp()
    }
}

/// Everything the device model needs to know about a family of parts:
/// topology, timing, addressing policy, and disturbance-variation
/// structure. [`crate::spec::ModuleSpec::family`] derives one per roster
/// entry; future families (DDR5, LPDDR) are new constructors here plus
/// roster additions, not code edits elsewhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceFamily {
    /// The JEDEC standard this family implements.
    pub standard: DramStandard,
    /// Bank hierarchy and row count.
    pub topology: Topology,
    /// The timing parameters the disturbance model depends on.
    pub timings: FamilyTimings,
    /// Logical→physical row mapping policy.
    pub mapping: RowMapping,
    /// True-/anti-cell layout policy.
    pub cell_layout: CellLayout,
    /// Bit → chip / pseudo-channel mapping.
    pub chip_mapping: ChipMapping,
    /// Per-bank disturbance-threshold spread.
    pub bank_variation: BankVariation,
}

impl DeviceFamily {
    /// The DDR4 family descriptor for one module: 16 banks in 4 bank
    /// groups, rows scaled with die density, vendor-specific row mapping
    /// and cell layout, byte-interleaved chip mapping, identical banks.
    pub fn ddr4(
        manufacturer: Manufacturer,
        density: DieDensity,
        chips: u32,
        chip_width: u32,
    ) -> Self {
        let rows_per_bank = match density {
            DieDensity::Gb4 => 32 * 1024,
            DieDensity::Gb8 => 64 * 1024,
            DieDensity::Gb16 => 128 * 1024,
            // Conservative default for parts whose density is not
            // discernible (none of the Table-1 DDR4 modules need it).
            DieDensity::Unknown => 64 * 1024,
        };
        DeviceFamily {
            standard: DramStandard::Ddr4,
            topology: Topology {
                channels: 1,
                pseudo_channels: 1,
                bank_groups: 4,
                banks_per_group: 4,
                rows_per_bank,
            },
            timings: FamilyTimings::ddr4(),
            mapping: match manufacturer {
                Manufacturer::H => RowMapping::VendorA,
                Manufacturer::M => RowMapping::VendorB,
                Manufacturer::S => RowMapping::VendorC,
            },
            cell_layout: match manufacturer {
                Manufacturer::H => CellLayout::new(512, false),
                Manufacturer::M => CellLayout::new(256, false),
                Manufacturer::S => CellLayout::new(512, true),
            },
            chip_mapping: ChipMapping::ByteInterleaved { chips, chip_width },
            bank_variation: BankVariation::none(),
        }
    }

    /// The HBM2 family descriptor: one tested channel split into two
    /// pseudo-channels of 4×4 banks (32 flat banks), 16 Ki rows per
    /// bank, direct row mapping, 128-bit pseudo-channel words, and the
    /// HBM study's per-bank threshold spread.
    pub fn hbm2() -> Self {
        DeviceFamily {
            standard: DramStandard::Hbm2,
            topology: Topology {
                channels: 1,
                pseudo_channels: 2,
                bank_groups: 4,
                banks_per_group: 4,
                rows_per_bank: 16 * 1024,
            },
            timings: FamilyTimings::hbm2(),
            mapping: RowMapping::Direct,
            cell_layout: CellLayout::new(512, true),
            chip_mapping: ChipMapping::PseudoChannel { pseudo_channels: 2, word_bits: 128 },
            bank_variation: BankVariation::hbm2(),
        }
    }

    /// The family descriptor for a roster entry's fields — the single
    /// dispatch point from standard to family.
    pub fn for_module(
        standard: DramStandard,
        manufacturer: Manufacturer,
        density: DieDensity,
        chips: u32,
        chip_width: u32,
    ) -> Self {
        match standard {
            DramStandard::Ddr4 => Self::ddr4(manufacturer, density, chips, chip_width),
            DramStandard::Hbm2 => Self::hbm2(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_topology_matches_jedec() {
        let f = DeviceFamily::ddr4(Manufacturer::M, DieDensity::Gb16, 8, 8);
        assert_eq!(f.topology.banks(), 16);
        assert_eq!(f.topology.rows_per_bank, 128 * 1024);
        assert_eq!(f.topology.rows(), 16 * 128 * 1024);
    }

    #[test]
    fn hbm2_topology_has_pseudo_channels() {
        let f = DeviceFamily::hbm2();
        assert_eq!(f.topology.banks(), 32);
        assert_eq!(f.topology.pseudo_channels, 2);
        assert_eq!(f.topology.rows_per_bank, 16 * 1024);
    }

    #[test]
    fn flat_index_roundtrips() {
        for topo in [DeviceFamily::hbm2().topology, Topology::linear(5, 100)] {
            for bank in 0..topo.banks() {
                let addr = topo.address_of(bank);
                assert_eq!(topo.flat_index(addr), bank);
                assert!(addr.channel < topo.channels);
                assert!(addr.pseudo_channel < topo.pseudo_channels);
                assert!(addr.bank_group < topo.bank_groups);
                assert!(addr.bank < topo.banks_per_group);
            }
        }
    }

    #[test]
    fn hbm2_flat_order_walks_banks_fastest() {
        let topo = DeviceFamily::hbm2().topology;
        // Banks 0..16 are pseudo-channel 0, 16..32 pseudo-channel 1.
        assert_eq!(topo.address_of(0).pseudo_channel, 0);
        assert_eq!(topo.address_of(15).pseudo_channel, 0);
        assert_eq!(topo.address_of(16).pseudo_channel, 1);
        assert_eq!(topo.address_of(3).bank_group, 0);
        assert_eq!(topo.address_of(4).bank_group, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn address_of_checks_bounds() {
        let _ = Topology::linear(2, 10).address_of(2);
    }

    #[test]
    fn byte_interleaved_chip_mapping() {
        let m = ChipMapping::ByteInterleaved { chips: 8, chip_width: 8 };
        assert_eq!(m.chip_of_bit(0), 0);
        assert_eq!(m.chip_of_bit(7), 0);
        assert_eq!(m.chip_of_bit(8), 1);
        assert_eq!(m.chip_of_bit(63), 7);
        assert_eq!(m.chip_of_bit(64), 0);
    }

    #[test]
    fn pseudo_channel_chip_mapping_alternates_words() {
        let m = DeviceFamily::hbm2().chip_mapping;
        assert_eq!(m.chips(), 2);
        assert_eq!(m.chip_of_bit(0), 0);
        assert_eq!(m.chip_of_bit(127), 0);
        assert_eq!(m.chip_of_bit(128), 1);
        assert_eq!(m.chip_of_bit(255), 1);
        assert_eq!(m.chip_of_bit(256), 0);
    }

    #[test]
    fn zero_sigma_bank_factor_is_exactly_one() {
        let v = BankVariation::none();
        for bank in 0..32 {
            for seed in [0u64, 1, 42, u64::MAX] {
                assert_eq!(v.factor(bank, seed).to_bits(), 1.0f64.to_bits());
            }
        }
    }

    #[test]
    fn hbm2_bank_factor_is_deterministic_and_varies() {
        let v = BankVariation::hbm2();
        assert_eq!(v.factor(3, 7), v.factor(3, 7));
        let distinct: std::collections::BTreeSet<u64> =
            (0..32u32).map(|b| v.factor(b, 7).to_bits()).collect();
        assert!(distinct.len() > 24, "bank factors must vary");
        let mean: f64 = (0..32u32).map(|b| v.factor(b, 7)).sum::<f64>() / 32.0;
        assert!((mean - 1.0).abs() < 0.15, "mean bank factor {mean}");
    }

    #[test]
    fn different_seeds_reshuffle_bank_factors() {
        let v = BankVariation::hbm2();
        let a: Vec<u64> = (0..16u32).map(|b| v.factor(b, 1).to_bits()).collect();
        let b: Vec<u64> = (0..16u32).map(|b| v.factor(b, 2).to_bits()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn family_timings_are_distinct_per_standard() {
        let d = FamilyTimings::ddr4();
        let h = FamilyTimings::hbm2();
        assert!(d.t_refi_ns > h.t_refi_ns, "DDR4 refreshes half as often");
        assert!((d.t_rc_ns - (d.t_ras_ns + 13.75)).abs() < 1e-9);
        assert!((h.t_rc_ns - (h.t_ras_ns + 14.0)).abs() < 1e-9);
    }

    #[test]
    fn for_module_dispatches_by_standard() {
        let d =
            DeviceFamily::for_module(DramStandard::Ddr4, Manufacturer::H, DieDensity::Gb8, 8, 8);
        assert_eq!(d.standard, DramStandard::Ddr4);
        assert_eq!(d.mapping, RowMapping::VendorA);
        let h = DeviceFamily::for_module(
            DramStandard::Hbm2,
            Manufacturer::S,
            DieDensity::Unknown,
            1,
            0,
        );
        assert_eq!(h, DeviceFamily::hbm2());
    }
}
