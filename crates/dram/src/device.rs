//! The behavioural DRAM device: banks, rows, activation-driven read
//! disturbance, refresh, TRR emulation, and on-die-ECC emulation.
//!
//! # Model semantics
//!
//! - Activating a row disturbs its two *physical* neighbors: each
//!   activation adds one "hammer" of accumulated disturbance, tagged with
//!   the aggressor's on-time. Single-sided hammering is weaker than
//!   double-sided (weight [`SINGLE_SIDED_WEIGHT`] for the unbalanced part).
//! - Activating a row also *restores* it: pending bitflips are
//!   materialized from the accumulated disturbance (they occurred during
//!   the preceding hammering), the accumulated disturbance resets, and the
//!   row's trap states take one Markov step (the paper's §4.2 mechanism).
//! - Reading returns the stored fill bytes with materialized bitflips
//!   applied. Writing clears flips (data is overwritten).
//! - Refresh restores a sliding window of rows per bank, like a real
//!   chip's internal refresh counter. When TRR emulation is on, recently
//!   activated rows' neighbors are additionally restored — this is why
//!   the paper's methodology disables refresh (§3.1).
//!
//! The device is command-level, not cycle-level: time lives in
//! `vrd-bender`, which issues these operations with JEDEC timing.

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::batch::{LaneThresholds, RowBatchProfile};
use crate::cells::CellLayout;
use crate::conditions::{TestConditions, T_AGG_ON_MIN_TRAS_NS};
use crate::error::DramError;
use crate::family::{BankVariation, Topology};
use crate::hashing::FxHashMap;
use crate::keyed::KeyedRng;
use crate::mapping::RowMapping;
use crate::pattern::DataPattern;
use crate::spatial::SpatialProfile;
use crate::spec::VrdModelParams;
use crate::vrd::{Trap, WeakCell};

/// Relative disturbance weight of unbalanced (single-sided) activations
/// compared to balanced double-sided hammering.
pub const SINGLE_SIDED_WEIGHT: f64 = 0.4;

/// Static configuration of a [`DramDevice`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Bank hierarchy and row count (see [`Topology`]). The device
    /// addresses banks by their flat index; the topology defines how
    /// that index decomposes into channel / pseudo-channel / bank group.
    pub topology: Topology,
    /// Bytes per row (the paper's rows are 64 Kibit = 8192 bytes).
    pub row_bytes: u32,
    /// Logical→physical row mapping.
    pub mapping: RowMapping,
    /// True-/anti-cell layout.
    pub cell_layout: CellLayout,
    /// Stochastic VRD engine parameters.
    pub vrd: VrdModelParams,
    /// Spatial threshold structure (subarray tiles + edge weakening).
    pub spatial: SpatialProfile,
    /// Per-bank threshold spread ([`BankVariation::none`] for families
    /// whose banks are modeled as identical).
    pub bank_variation: BankVariation,
    /// Rows restored per bank by one refresh command.
    pub rows_per_refresh: u32,
}

impl DeviceConfig {
    /// A small configuration for fast unit tests: 2 banks × 4096 rows of
    /// 1 KiB, direct mapping, test-friendly VRD parameters.
    pub fn small_test() -> Self {
        DeviceConfig {
            topology: Topology::linear(2, 4096),
            row_bytes: 1024,
            mapping: RowMapping::Direct,
            cell_layout: CellLayout::default(),
            vrd: VrdModelParams::small_test(),
            spatial: SpatialProfile::flat(),
            bank_variation: BankVariation::none(),
            rows_per_refresh: 8,
        }
    }

    /// Total banks (the flat index range), from the topology.
    pub fn banks(&self) -> u32 {
        self.topology.banks()
    }

    /// Rows per bank, from the topology.
    pub fn rows_per_bank(&self) -> u32 {
        self.topology.rows_per_bank
    }
}

/// One observed read-disturbance bitflip in a victim row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitflip {
    /// Bit position within the row (0 = LSB of byte 0).
    pub bit: u32,
}

/// Accumulated disturbance on one victim row since its last restore.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct DisturbState {
    /// Activations of the physically-below neighbor.
    below: f64,
    /// Activations of the physically-above neighbor.
    above: f64,
    /// Largest aggressor on-time seen during accumulation (ns).
    t_on_ns: f64,
}

impl DisturbState {
    /// Effective double-sided hammer count: the balanced part counts in
    /// full, the unbalanced excess at [`SINGLE_SIDED_WEIGHT`].
    fn effective_hammers(&self) -> f64 {
        let lo = self.below.min(self.above);
        let hi = self.below.max(self.above);
        lo + SINGLE_SIDED_WEIGHT * (hi - lo)
    }

    fn is_clean(&self) -> bool {
        self.below == 0.0 && self.above == 0.0
    }
}

/// Stored contents of a row. Rows written through the fill API stay
/// compact; arbitrary data falls back to a byte vector.
#[derive(Debug, Clone, PartialEq)]
enum RowData {
    /// Every byte of the row holds this value.
    Uniform(u8),
    /// Explicit bytes.
    Bytes(Box<[u8]>),
}

impl RowData {
    fn bit(&self, bit: u32) -> bool {
        match self {
            RowData::Uniform(b) => (b >> (bit % 8)) & 1 == 1,
            RowData::Bytes(bytes) => {
                let byte = bytes[(bit / 8) as usize];
                (byte >> (bit % 8)) & 1 == 1
            }
        }
    }
}

#[derive(Debug)]
struct RowState {
    data: RowData,
    /// Bit positions whose stored value is currently inverted by a flip.
    flipped: Vec<u32>,
    disturb: DisturbState,
    /// Weak cells, generated lazily and deterministically per row.
    cells: Vec<WeakCell>,
    /// Last measurement epoch whose keyed trap evolution this row has
    /// absorbed (see [`DramDevice::begin_keyed_session`]). Rows touched
    /// only by the sequential path stay at their creation epoch.
    trap_epoch: u64,
}

#[derive(Debug)]
struct Bank {
    open_row: Option<u32>,
    rows: FxHashMap<u32, RowState>,
    refresh_ptr: u32,
    /// Recently activated rows (ring buffer) for TRR emulation.
    recent_activations: Vec<u32>,
}

impl Bank {
    fn new() -> Self {
        Bank {
            open_row: None,
            rows: FxHashMap::default(),
            refresh_ptr: 0,
            recent_activations: Vec::new(),
        }
    }
}

/// The identity of the hammer session currently executing under
/// counter-based RNG keying (see [`DramDevice::begin_keyed_session`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyedSession {
    /// Measurement epoch: one RDT measurement = one epoch. Threshold
    /// jitter and trap evolution are keyed by this value, so every
    /// session within a measurement samples identical dynamics.
    pub epoch: u64,
    /// Session index within the measurement (the sweep's grid index).
    /// Not part of any stochastic key — recorded for diagnostics only,
    /// because the flip predicate must be independent of *which*
    /// sessions a search strategy chooses to run.
    pub session: u64,
}

/// Compound trap Markov steps charged per measurement epoch under keyed
/// dynamics: approximately the per-measurement restore count of a linear
/// Algorithm-1 sweep (two restorations per session, a few dozen sessions
/// until the first flip).
pub const TRAP_STEPS_PER_MEASUREMENT: u32 = 100;

/// A behavioural DRAM device with a stochastic read-disturbance engine.
///
/// See the [module documentation](self) for the model semantics.
#[derive(Debug)]
pub struct DramDevice {
    config: DeviceConfig,
    seed: u64,
    banks: Vec<Bank>,
    rng: ChaCha12Rng,
    /// Key material for counter-based draws ([`crate::keyed`]): follows
    /// the sequential RNG's seed through [`Self::reseed_dynamics`].
    dynamics_seed: u64,
    /// When set, restoration dynamics draw from keyed streams instead of
    /// the sequential RNG.
    keyed_session: Option<KeyedSession>,
    temperature_c: f64,
    trr_enabled: bool,
    on_die_ecc_enabled: bool,
    total_activations: u64,
    /// Device-wide pattern-dependent VRD-strength bias: every chip
    /// design couples the four data patterns into its noise mechanisms
    /// differently, so which pattern yields the worst VRD profile varies
    /// across chips (Finding 13).
    pattern_vrd_bias: [f64; 4],
}

impl DramDevice {
    /// Creates a device from `config`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks, rows, or row bytes.
    pub fn new(config: DeviceConfig, seed: u64) -> Self {
        assert!(config.banks() > 0, "device needs at least one bank");
        assert!(config.rows_per_bank() > 1, "device needs at least two rows");
        assert!(config.row_bytes > 0, "rows need at least one byte");
        let banks = (0..config.banks()).map(|_| Bank::new()).collect();
        let mut bias_rng = ChaCha12Rng::seed_from_u64(seed ^ 0xB1A5_u64);
        let mut pattern_vrd_bias = [1.0f64; 4];
        for b in &mut pattern_vrd_bias {
            *b = (0.25 * sample_normal(&mut bias_rng)).exp();
        }
        DramDevice {
            banks,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0xD12A_0DE1_u64),
            dynamics_seed: seed ^ 0xD12A_0DE1_u64,
            keyed_session: None,
            seed,
            config,
            temperature_c: 50.0,
            trr_enabled: false,
            on_die_ecc_enabled: false,
            total_activations: 0,
            pattern_vrd_bias,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The device seed. Together with [`DeviceConfig::spatial`] this
    /// fully determines the per-row spatial factors
    /// ([`SpatialProfile::factor`](crate::spatial::SpatialProfile::factor)),
    /// so external tooling can reconstruct the spatial threshold map
    /// without probing every row.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current device temperature (°C). Set by the test platform's
    /// thermal controller.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Sets the device temperature (°C).
    pub fn set_temperature_c(&mut self, temperature_c: f64) {
        self.temperature_c = temperature_c;
    }

    /// Enables or disables the on-die TRR (target-row-refresh) emulation.
    /// The paper's methodology disables it by disabling periodic refresh.
    pub fn set_trr_enabled(&mut self, enabled: bool) {
        self.trr_enabled = enabled;
    }

    /// Enables or disables on-die-ECC emulation (single-bit correction per
    /// 64-bit word at read time). HBM2 chips expose this through a mode
    /// register; the paper sets it to zero.
    pub fn set_on_die_ecc_enabled(&mut self, enabled: bool) {
        self.on_die_ecc_enabled = enabled;
    }

    /// Total activate commands the device has seen.
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Reseeds the *dynamics* RNG (threshold sampling and trap stepping)
    /// without touching the device seed, so the weak-cell layout — which
    /// is derived per row from the device seed — stays identical.
    ///
    /// This is the determinism hook of the parallel campaign executor:
    /// every work unit reseeds its platform with a seed derived from
    /// `(campaign_seed, unit key)`, making the unit's measurements
    /// independent of whatever ran on the device before it and therefore
    /// bit-identical regardless of thread count or scheduling order.
    pub fn reseed_dynamics(&mut self, seed: u64) {
        self.rng = ChaCha12Rng::seed_from_u64(seed ^ 0xD12A_0DE1_u64);
        self.dynamics_seed = seed ^ 0xD12A_0DE1_u64;
    }

    /// Enters (or re-keys) a keyed hammer session: until
    /// [`end_keyed_session`](Self::end_keyed_session), restoration
    /// dynamics — per-measurement threshold jitter and trap evolution —
    /// draw from counter-based streams keyed by `(dynamics seed, epoch,
    /// cell identity)` instead of consuming the sequential RNG (see
    /// [`crate::keyed`]). Because the keyed draws are a pure function of
    /// the epoch and the cell, running *fewer* or *different* sessions
    /// (an adaptive search) observes bit-identical dynamics to a full
    /// linear sweep, and the sequential RNG's stream position is left
    /// untouched for the surrounding unkeyed code.
    ///
    /// Epochs must be distinct per RDT measurement and are expected to
    /// increase monotonically over a device's lifetime; the session
    /// index is diagnostic only.
    pub fn begin_keyed_session(&mut self, epoch: u64, session: u64) {
        self.keyed_session = Some(KeyedSession { epoch, session });
    }

    /// Leaves keyed-session mode: restoration dynamics return to the
    /// sequential RNG.
    pub fn end_keyed_session(&mut self) {
        self.keyed_session = None;
    }

    /// The keyed session currently in effect, if any.
    pub fn keyed_session(&self) -> Option<KeyedSession> {
        self.keyed_session
    }

    /// The currently open row of `bank`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn open_row(&self, bank: usize) -> Option<u32> {
        self.banks[bank].open_row
    }

    fn check_addr(&self, bank: usize, row: u32) -> Result<(), DramError> {
        if bank >= self.config.banks() as usize {
            return Err(DramError::BankOutOfRange { bank, banks: self.config.banks() as usize });
        }
        if row >= self.config.rows_per_bank() {
            return Err(DramError::RowOutOfRange { row, rows: self.config.rows_per_bank() });
        }
        Ok(())
    }

    /// Activates (opens) `row` in `bank` with the default minimum-`t_RAS`
    /// on-time.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses or if another row is
    /// already open in the bank (a real controller must precharge first).
    pub fn activate(&mut self, bank: usize, row: u32) -> Result<(), DramError> {
        self.activate_for(bank, row, T_AGG_ON_MIN_TRAS_NS)
    }

    /// Activates `row` in `bank`, keeping it open for `t_on_ns` before the
    /// eventual precharge (the RowPress axis).
    ///
    /// # Errors
    ///
    /// Same as [`activate`](Self::activate).
    pub fn activate_for(&mut self, bank: usize, row: u32, t_on_ns: f64) -> Result<(), DramError> {
        self.activate_n(bank, row, 1, t_on_ns)
    }

    /// Applies `n` consecutive activate/precharge cycles of `row`
    /// (semantically identical to `n` single activations, each held open
    /// for `t_on_ns`), leaving the row open after the final activation.
    ///
    /// This is the device-side fast path for hammering loops.
    ///
    /// # Errors
    ///
    /// Same as [`activate`](Self::activate).
    pub fn activate_n(
        &mut self,
        bank: usize,
        row: u32,
        n: u32,
        t_on_ns: f64,
    ) -> Result<(), DramError> {
        self.check_addr(bank, row)?;
        if n == 0 {
            return Ok(());
        }
        if let Some(open) = self.banks[bank].open_row {
            if open != row {
                return Err(DramError::RowNotOpen { bank, row });
            }
        }
        self.total_activations += u64::from(n);
        // Restore this row (it is being activated): materialize pending
        // flips, clear disturbance, step traps n times.
        self.restore_row(bank, row, n);
        self.banks[bank].open_row = Some(row);

        // Disturb physical neighbors.
        let (below, above) = self.config.mapping.neighbors_of(row, self.config.rows_per_bank());
        if let Some(b) = below {
            self.add_disturbance(bank, b, /*from_below=*/ false, n, t_on_ns);
        }
        if let Some(a) = above {
            self.add_disturbance(bank, a, /*from_below=*/ true, n, t_on_ns);
        }

        // TRR bookkeeping.
        if self.trr_enabled {
            let recent = &mut self.banks[bank].recent_activations;
            recent.push(row);
            if recent.len() > 16 {
                recent.remove(0);
            }
        }
        Ok(())
    }

    /// Precharges (closes) the open row of `bank`, if any.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range bank.
    pub fn precharge(&mut self, bank: usize) -> Result<(), DramError> {
        if bank >= self.config.banks() as usize {
            return Err(DramError::BankOutOfRange { bank, banks: self.config.banks() as usize });
        }
        self.banks[bank].open_row = None;
        Ok(())
    }

    /// Writes `fill` to every byte of the *open* row of `bank`, clearing
    /// any bitflips (data is overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNotOpen`] if `row` is not the open row.
    pub fn write_open_row(&mut self, bank: usize, row: u32, fill: u8) -> Result<(), DramError> {
        self.check_addr(bank, row)?;
        if self.banks[bank].open_row != Some(row) {
            return Err(DramError::RowNotOpen { bank, row });
        }
        let state = self.row_state(bank, row);
        state.data = RowData::Uniform(fill);
        state.flipped.clear();
        Ok(())
    }

    /// Writes arbitrary `bytes` to the open row (truncated / zero-padded
    /// to the row size), clearing any bitflips.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNotOpen`] if `row` is not the open row.
    pub fn write_open_row_bytes(
        &mut self,
        bank: usize,
        row: u32,
        bytes: &[u8],
    ) -> Result<(), DramError> {
        self.check_addr(bank, row)?;
        if self.banks[bank].open_row != Some(row) {
            return Err(DramError::RowNotOpen { bank, row });
        }
        let row_bytes = self.config.row_bytes as usize;
        let mut data = vec![0u8; row_bytes];
        let n = bytes.len().min(row_bytes);
        data[..n].copy_from_slice(&bytes[..n]);
        let state = self.row_state(bank, row);
        state.data = RowData::Bytes(data.into_boxed_slice());
        state.flipped.clear();
        Ok(())
    }

    /// Convenience: activate + fill-write + precharge.
    ///
    /// # Panics
    ///
    /// Panics on invalid addresses (use the command-level API for fallible
    /// access).
    pub fn write_row(&mut self, bank: usize, row: u32, fill: u8) {
        self.precharge(bank).expect("valid bank");
        self.activate(bank, row).expect("valid address");
        self.write_open_row(bank, row, fill).expect("row is open");
        self.precharge(bank).expect("valid bank");
    }

    /// Reads the open row's current contents (with flips applied, and
    /// on-die ECC correction if enabled).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNotOpen`] if `row` is not the open row.
    pub fn read_open_row(&mut self, bank: usize, row: u32) -> Result<Vec<u8>, DramError> {
        self.check_addr(bank, row)?;
        if self.banks[bank].open_row != Some(row) {
            return Err(DramError::RowNotOpen { bank, row });
        }
        let row_bytes = self.config.row_bytes as usize;
        let on_die_ecc = self.on_die_ecc_enabled;
        let state = self.row_state(bank, row);
        let mut bytes = match &state.data {
            RowData::Uniform(b) => vec![*b; row_bytes],
            RowData::Bytes(data) => data.to_vec(),
        };
        let flips = visible_flips(&state.flipped, on_die_ecc);
        for bit in flips {
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        Ok(bytes)
    }

    /// Convenience: activate (materializing pending flips) + compare the
    /// row against a uniform `expected` fill + precharge. Returns the
    /// observed bitflips.
    ///
    /// # Panics
    ///
    /// Panics on invalid addresses.
    pub fn read_and_compare(&mut self, bank: usize, row: u32, expected: u8) -> Vec<Bitflip> {
        self.precharge(bank).expect("valid bank");
        self.activate(bank, row).expect("valid address");
        let on_die_ecc = self.on_die_ecc_enabled;
        let state = self.row_state(bank, row);
        let mut flips: Vec<Bitflip> = visible_flips(&state.flipped, on_die_ecc)
            .into_iter()
            .map(|bit| Bitflip { bit })
            .collect();
        // Also report any mismatch between stored fill and expectation
        // (e.g. the row was never initialized).
        if let RowData::Uniform(stored) = state.data {
            if stored != expected {
                // Whole-row mismatch: report the first differing bit of
                // each byte value; campaigns never hit this path.
                for bit in 0..8u32 {
                    if (stored ^ expected) >> bit & 1 == 1 {
                        flips.push(Bitflip { bit });
                    }
                }
            }
        }
        self.precharge(bank).expect("valid bank");
        flips.sort_unstable_by_key(|f| f.bit);
        flips.dedup();
        flips
    }

    /// Performs the paper's double-sided hammer: `hammer_count`
    /// activations of *each* of the two physical neighbors of `victim`,
    /// alternating, each held open `t_on_ns`.
    ///
    /// # Panics
    ///
    /// Panics on invalid addresses.
    pub fn hammer_double_sided(
        &mut self,
        bank: usize,
        victim: u32,
        hammer_count: u32,
        t_on_ns: f64,
    ) {
        let (below, above) = self.config.mapping.neighbors_of(victim, self.config.rows_per_bank());
        self.precharge(bank).expect("valid bank");
        // Alternating ACT/PRE pairs are semantically equal to bulk
        // activation of each side because disturbance accumulates
        // additively between victim restores.
        if let Some(b) = below {
            self.activate_n(bank, b, hammer_count, t_on_ns).expect("valid address");
            self.precharge(bank).expect("valid bank");
        }
        if let Some(a) = above {
            self.activate_n(bank, a, hammer_count, t_on_ns).expect("valid address");
            self.precharge(bank).expect("valid bank");
        }
    }

    /// Issues one refresh command: restores the next
    /// `rows_per_refresh` rows in every bank (and, with TRR enabled, the
    /// neighbors of recently activated rows).
    pub fn refresh(&mut self) {
        for bank_idx in 0..self.config.banks() as usize {
            let start = self.banks[bank_idx].refresh_ptr;
            for offset in 0..self.config.rows_per_refresh {
                let row = (start + offset) % self.config.rows_per_bank();
                self.restore_row(bank_idx, row, 1);
            }
            self.banks[bank_idx].refresh_ptr =
                (start + self.config.rows_per_refresh) % self.config.rows_per_bank();

            if self.trr_enabled {
                let recent = std::mem::take(&mut self.banks[bank_idx].recent_activations);
                for row in &recent {
                    let (below, above) =
                        self.config.mapping.neighbors_of(*row, self.config.rows_per_bank());
                    for neighbor in [below, above].into_iter().flatten() {
                        self.restore_row(bank_idx, neighbor, 1);
                    }
                }
                self.banks[bank_idx].recent_activations = recent;
            }
        }
    }

    /// The smallest hammer count at which the given row can currently
    /// flip under `conditions` — the row's instantaneous ground-truth
    /// threshold (all weak cells, current trap states, current data).
    /// Returns `None` for rows without weak cells.
    ///
    /// This is an oracle for tests and analyses; real campaigns must
    /// measure it the hard way, which is the point of the paper.
    pub fn oracle_row_threshold(
        &mut self,
        bank: usize,
        row: u32,
        conditions: &TestConditions,
    ) -> Option<f64> {
        self.check_addr(bank, row).ok()?;
        self.ensure_row(bank, row);
        let state = self.banks[bank].rows.get(&row).expect("ensured");
        let mut min: Option<f64> = None;
        for cell in &state.cells {
            let stored = state.data.bit(cell.bit) ^ state.flipped.contains(&cell.bit);
            let t = cell.effective_threshold(conditions, stored);
            min = Some(min.map_or(t, |m: f64| m.min(t)));
        }
        min
    }

    /// Number of weak cells in a row (oracle for tests).
    pub fn oracle_weak_cell_count(&mut self, bank: usize, row: u32) -> usize {
        if self.check_addr(bank, row).is_err() {
            return 0;
        }
        self.ensure_row(bank, row);
        self.banks[bank].rows[&row].cells.len()
    }

    // ----- internals -------------------------------------------------

    fn row_state(&mut self, bank: usize, row: u32) -> &mut RowState {
        self.ensure_row(bank, row);
        self.banks[bank].rows.get_mut(&row).expect("ensured")
    }

    fn ensure_row(&mut self, bank: usize, row: u32) {
        if self.banks[bank].rows.contains_key(&row) {
            return;
        }
        let cells = self.generate_weak_cells(bank, row);
        // Rows born inside a keyed session owe no catch-up for epochs
        // they did not exist in.
        let trap_epoch = self.keyed_session.map_or(0, |s| s.epoch);
        self.banks[bank].rows.insert(
            row,
            RowState {
                data: RowData::Uniform(0),
                flipped: Vec::new(),
                disturb: DisturbState::default(),
                cells,
                trap_epoch,
            },
        );
    }

    /// Deterministic per-row weak-cell generation from the device seed.
    fn generate_weak_cells(&mut self, bank: usize, row: u32) -> Vec<WeakCell> {
        let seed = derive_row_seed(self.seed, bank as u64, u64::from(row));
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let p = &self.config.vrd;
        let physical = self.config.mapping.physical_of(row);
        let polarity = self.config.cell_layout.polarity_of_physical_row(physical);
        let row_bits = self.config.row_bytes * 8;

        let spatial_factor = self.config.spatial.factor(physical, self.seed);
        // Per-bank spread (HBM2): a pure hash of (bank, seed), so it
        // consumes no RNG draws; with zero sigma the factor is exactly
        // 1.0 and the multiplication below is bitwise identity.
        let bank_factor = self.config.bank_variation.factor(bank as u32, self.seed);
        let count = sample_poisson(&mut rng, p.weak_cells_per_row);
        let mut cells = Vec::with_capacity(count);
        for _ in 0..count {
            let base_ln = (p.median_rdt * spatial_factor * bank_factor).ln()
                + p.sigma_ln * sample_normal(&mut rng);
            let mut pattern_sense = [1.0f64; 4];
            for s in &mut pattern_sense {
                *s = (p.pattern_spread * sample_normal(&mut rng)).exp();
            }
            let press = (p.press_coeff * (0.08 * sample_normal(&mut rng)).exp()).max(0.01);
            let temp_coeff = p.temp_coeff_mean + p.temp_coeff_spread * sample_normal(&mut rng);
            let discharged_penalty = 2.0 + 2.0 * rng.gen::<f64>();

            let jitter_sigma = p.jitter_sigma_range.0
                + (p.jitter_sigma_range.1 - p.jitter_sigma_range.0) * rng.gen::<f64>();
            let mut pattern_vrd_sense = self.pattern_vrd_bias;
            for s in &mut pattern_vrd_sense {
                *s *= (0.15 * sample_normal(&mut rng)).exp();
            }
            let mix = |rng: &mut ChaCha12Rng| {
                p.mix_rate_range.0 + (p.mix_rate_range.1 - p.mix_rate_range.0) * rng.gen::<f64>()
            };
            let mut traps = Vec::new();
            if p.bimodal {
                // One dominant, moderately occupied trap: two clearly
                // separated RDT populations (HBM2 Chip1 in Fig. 4).
                traps.push(Trap::new(&mut rng, 0.4, 0.02, p.tail_assist.max(0.18)));
            } else {
                // A few small traps add discrete states on top of the
                // session jitter.
                let n_traps = 1 + sample_geometric(&mut rng, 0.5).min(3);
                for _ in 0..n_traps {
                    let occupancy = 0.2 + 0.6 * rng.gen::<f64>();
                    let m = mix(&mut rng);
                    let assist = (p.typical_assist * (0.5 + rng.gen::<f64>())).min(0.6);
                    traps.push(Trap::new(&mut rng, occupancy, m, assist));
                }
                if rng.gen_bool(p.tail_probability) {
                    // A deep trap whose occupied state is rare: the
                    // minimum RDT appears in only a small fraction of
                    // measurements (Findings 7–9). Occupancy is sampled
                    // log-uniformly over the configured range.
                    let (lo, hi) = p.tail_occupancy_range;
                    let occupancy = (lo.ln() + (hi.ln() - lo.ln()) * rng.gen::<f64>()).exp();
                    let m = mix(&mut rng) * 0.5;
                    traps.push(Trap::new(&mut rng, occupancy, m.max(1e-4), p.tail_assist));
                }
            }

            cells.push(WeakCell {
                bit: rng.gen_range(0..row_bits),
                polarity,
                base_threshold: base_ln.exp(),
                pattern_sense,
                press_coeff: press,
                temp_coeff,
                discharged_penalty,
                jitter_sigma,
                pattern_vrd_sense,
                traps,
            });
        }
        cells
    }

    fn add_disturbance(
        &mut self,
        bank: usize,
        victim: u32,
        from_below: bool,
        n: u32,
        t_on_ns: f64,
    ) {
        self.ensure_row(bank, victim);
        // Rows without weak cells never flip in the tested range; skip
        // the bookkeeping for them (the dominant case).
        let state = self.banks[bank].rows.get_mut(&victim).expect("ensured");
        if state.cells.is_empty() {
            return;
        }
        if from_below {
            state.disturb.below += f64::from(n);
        } else {
            state.disturb.above += f64::from(n);
        }
        state.disturb.t_on_ns = state.disturb.t_on_ns.max(t_on_ns);
    }

    /// Charge restoration of a row: materialize pending flips, reset
    /// accumulated disturbance, evolve traps.
    ///
    /// Sequential mode steps traps `n` times and samples a fresh
    /// threshold per restoration from the device RNG. Keyed mode (see
    /// [`begin_keyed_session`](Self::begin_keyed_session)) draws both
    /// from counter-based streams: one threshold and one compound trap
    /// step per *measurement epoch*, independent of how many sessions
    /// the epoch runs.
    fn restore_row(&mut self, bank: usize, row: u32, n: u32) {
        // Avoid instantiating untouched rows on refresh.
        if !self.banks[bank].rows.contains_key(&row) {
            return;
        }
        let temperature = self.temperature_c;
        let conditions = self.infer_conditions(bank, row);
        let keyed = self.keyed_session;
        let dynamics_seed = self.dynamics_seed;
        if let Some(session) = keyed {
            self.catch_up_traps(bank, row, session.epoch);
            let state = self.banks[bank].rows.get_mut(&row).expect("checked");
            if !state.disturb.is_clean() {
                let hammers = state.disturb.effective_hammers();
                for cell in &state.cells {
                    let already = state.flipped.contains(&cell.bit);
                    let stored = state.data.bit(cell.bit) ^ already;
                    let mut rng = KeyedRng::for_threshold(
                        dynamics_seed,
                        session.epoch,
                        bank as u64,
                        row,
                        cell.bit,
                    );
                    let threshold = cell.sample_threshold(&mut rng, &conditions, stored);
                    if hammers >= threshold && !already {
                        state.flipped.push(cell.bit);
                    }
                }
                state.disturb = DisturbState::default();
            }
            return;
        }
        let state = self.banks[bank].rows.get_mut(&row).expect("checked");
        if !state.disturb.is_clean() {
            let hammers = state.disturb.effective_hammers();
            for cell in &state.cells {
                let already = state.flipped.contains(&cell.bit);
                let stored = state.data.bit(cell.bit) ^ already;
                let threshold = cell.sample_threshold(&mut self.rng, &conditions, stored);
                if hammers >= threshold && !already {
                    state.flipped.push(cell.bit);
                }
            }
            state.disturb = DisturbState::default();
        }
        if !state.cells.is_empty() {
            // One Markov step per restoration event; bulk restorations
            // step with the compound redraw probability.
            for cell in &mut state.cells {
                for trap in &mut cell.traps {
                    step_trap_n(trap, &mut self.rng, temperature, n);
                }
            }
        }
    }

    /// Infers the effective test conditions for a victim row from its own
    /// and its aggressors' stored data (the physical coupling the
    /// pattern-sensitivity factors model) plus device temperature and the
    /// recorded aggressor on-time.
    fn infer_conditions(&self, bank: usize, row: u32) -> TestConditions {
        let state = self.banks[bank].rows.get(&row).expect("caller ensured");
        let t_on =
            if state.disturb.t_on_ns > 0.0 { state.disturb.t_on_ns } else { T_AGG_ON_MIN_TRAS_NS };
        let victim_fill = match state.data {
            RowData::Uniform(b) => Some(b),
            RowData::Bytes(_) => None,
        };
        let (below, above) = self.config.mapping.neighbors_of(row, self.config.rows_per_bank());
        let aggressor_fill = [below, above]
            .into_iter()
            .flatten()
            .filter_map(|r| self.banks[bank].rows.get(&r))
            .find_map(|s| match s.data {
                RowData::Uniform(b) => Some(b),
                RowData::Bytes(_) => None,
            });
        let pattern = classify_pattern(victim_fill, aggressor_fill)
            .or_else(|| victim_fill.map(nearest_pattern))
            .unwrap_or(DataPattern::Checkered0);
        TestConditions { pattern, t_agg_on_ns: t_on, temperature_c: self.temperature_c }
    }

    /// Catches up trap evolution of `row` to `epoch` under keyed
    /// dynamics: one compound step per elapsed epoch, keyed by epoch, so
    /// it does not matter which session (or which search strategy, or
    /// the batch engine) triggers the catch-up.
    fn catch_up_traps(&mut self, bank: usize, row: u32, epoch: u64) {
        let temperature = self.temperature_c;
        let dynamics_seed = self.dynamics_seed;
        let Some(state) = self.banks[bank].rows.get_mut(&row) else {
            return;
        };
        if state.trap_epoch >= epoch || state.cells.is_empty() {
            return;
        }
        for e in state.trap_epoch + 1..=epoch {
            for cell in &mut state.cells {
                for (trap_idx, trap) in cell.traps.iter_mut().enumerate() {
                    let mut rng = KeyedRng::for_trap(
                        dynamics_seed,
                        e,
                        bank as u64,
                        row,
                        cell.bit,
                        trap_idx as u64,
                    );
                    step_trap_n(trap, &mut rng, temperature, TRAP_STEPS_PER_MEASUREMENT);
                }
            }
        }
        state.trap_epoch = epoch;
    }

    /// Prepares one `(epoch, bank, victim)` for batched double-sided
    /// hammer sessions: materializes the rows a session touches, catches
    /// their traps up to the current keyed epoch, and draws every weak
    /// cell's per-epoch threshold once into dense lanes.
    ///
    /// `hammer_t_on_ns` is the aggressor on-time of hammered probes as
    /// the memory controller applies it (already clamped to `t_RAS`).
    ///
    /// Returns `None` — leaving the device in a state the scalar path
    /// reproduces exactly — whenever the scalar path could diverge from
    /// the batch replay: no keyed session, invalid address, TRR
    /// emulation, an edge victim without two distinct aggressors, an
    /// asymmetric mapping, or a row whose weak cells share a bit
    /// position (their flip evaluation is order-dependent).
    pub fn prepare_batch_epoch(
        &mut self,
        bank: usize,
        victim: u32,
        pattern: DataPattern,
        hammer_t_on_ns: f64,
    ) -> Option<RowBatchProfile> {
        let session = self.keyed_session?;
        self.check_addr(bank, victim).ok()?;
        if self.trr_enabled {
            return None;
        }
        let rows = self.config.rows_per_bank();
        let (below, above) = self.config.mapping.neighbors_of(victim, rows);
        let (below, above) = match (below, above) {
            (Some(b), Some(a)) => (b, a),
            // Edge victims hammer a single aggressor twice; keep them
            // on the scalar path.
            _ => return None,
        };
        let (outer_below, below_up) = self.config.mapping.neighbors_of(below, rows);
        let (above_down, outer_above) = self.config.mapping.neighbors_of(above, rows);
        if below_up != Some(victim) || above_down != Some(victim) {
            return None;
        }

        let epoch = session.epoch;
        for row in [victim, below, above] {
            self.ensure_row(bank, row);
            self.catch_up_traps(bank, row, epoch);
        }

        let victim_fill = pattern.victim_byte();
        let aggressor_fill = pattern.aggressor_byte();
        let hammer_t_on = T_AGG_ON_MIN_TRAS_NS.max(hammer_t_on_ns);
        // The conditions the read restore will infer from the rows the
        // session has just written.
        let inferred = classify_pattern(Some(victim_fill), Some(aggressor_fill))
            .or_else(|| Some(nearest_pattern(victim_fill)))
            .unwrap_or(DataPattern::Checkered0);
        let cond_hammer = TestConditions {
            pattern: inferred,
            t_agg_on_ns: hammer_t_on,
            temperature_c: self.temperature_c,
        };
        let cond_idle = TestConditions { t_agg_on_ns: T_AGG_ON_MIN_TRAS_NS, ..cond_hammer };

        let state = self.banks[bank].rows.get(&victim).expect("ensured");
        let bits: Vec<u32> = state.cells.iter().map(|c| c.bit).collect();
        let mut sorted = bits.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        let dynamics_seed = self.dynamics_seed;
        let sample_set = |cond: &TestConditions| {
            let mut thresholds = Vec::with_capacity(state.cells.len());
            for cell in &state.cells {
                let stored = (victim_fill >> (cell.bit % 8)) & 1 == 1;
                let mut rng =
                    KeyedRng::for_threshold(dynamics_seed, epoch, bank as u64, victim, cell.bit);
                thresholds.push(cell.sample_threshold(&mut rng, cond, stored));
            }
            LaneThresholds::new(bits.clone(), thresholds)
        };
        let hammer = sample_set(&cond_hammer);
        let idle =
            (cond_idle.t_agg_on_ns != cond_hammer.t_agg_on_ns).then(|| sample_set(&cond_idle));

        Some(RowBatchProfile {
            epoch,
            bank,
            victim,
            below,
            above,
            outer_below,
            outer_above,
            victim_fill,
            aggressor_fill,
            hammer_t_on_ns,
            hammer,
            idle,
        })
    }

    /// Replays one double-sided hammer session against a prepared
    /// [`RowBatchProfile`], byte-identical in device state to the scalar
    /// init/hammer/read command sequence, and returns whether the read
    /// would have observed any (post-ECC) bitflip.
    ///
    /// Per-cell work collapses to one branch-free lane-compare pass over
    /// the profile's precomputed thresholds; everything else is counter
    /// and end-state bookkeeping.
    pub fn batch_hammer_session(&mut self, profile: &RowBatchProfile, hammer_count: u32) -> bool {
        debug_assert_eq!(
            self.keyed_session.map(|s| s.epoch),
            Some(profile.epoch),
            "batch sessions must run inside the profile's keyed epoch"
        );
        let hc = hammer_count;
        // Init activates victim and both aggressors once; the hammer
        // activates each aggressor `hc` times; the read activates the
        // victim once more.
        self.total_activations += 4 + 2 * u64::from(hc);

        // Both victim neighbors accumulate one init activation plus the
        // hammer count, so the read restore sees a balanced disturbance.
        let effective = 1.0 + f64::from(hc);
        let lanes = if hc == 0 {
            profile.idle.as_ref().unwrap_or(&profile.hammer)
        } else {
            &profile.hammer
        };
        let ecc = self.on_die_ecc_enabled;

        // Victim end state: freshly written fill, materialized flips,
        // disturbance consumed by the read restore. The victim's flip
        // buffer is reused across sessions, keeping the probe
        // allocation-free once its capacity settles.
        let state = self.banks[profile.bank].rows.get_mut(&profile.victim).expect("prepared");
        state.data = RowData::Uniform(profile.victim_fill);
        state.disturb = DisturbState::default();
        state.flipped.clear();
        lanes.flips_into(effective, &mut state.flipped);
        let flipped = if ecc {
            !visible_flips(&state.flipped, true).is_empty()
        } else {
            !state.flipped.is_empty()
        };

        // Aggressor end state: written fill, cleared flips, and exactly
        // one pending disturbance from the final read of the victim —
        // folded inline so each row is hashed once per session.
        for (row, from_below) in [(profile.below, false), (profile.above, true)] {
            let state = self.banks[profile.bank].rows.get_mut(&row).expect("prepared");
            state.data = RowData::Uniform(profile.aggressor_fill);
            state.flipped.clear();
            state.disturb = DisturbState::default();
            if !state.cells.is_empty() {
                if from_below {
                    state.disturb.below += 1.0;
                } else {
                    state.disturb.above += 1.0;
                }
                state.disturb.t_on_ns = state.disturb.t_on_ns.max(T_AGG_ON_MIN_TRAS_NS);
            }
        }
        // Outer rows are disturbed by the aggressors' init and hammer
        // activations and never restored within the session; the two
        // accumulations must stay separate f64 additions, in the scalar
        // path's order (init read at minimum on-time, then the hammer).
        for (outer, from_below) in [(profile.outer_below, false), (profile.outer_above, true)] {
            if let Some(row) = outer {
                self.ensure_row(profile.bank, row);
                let state = self.banks[profile.bank].rows.get_mut(&row).expect("ensured");
                if state.cells.is_empty() {
                    continue;
                }
                if from_below {
                    state.disturb.below += 1.0;
                } else {
                    state.disturb.above += 1.0;
                }
                state.disturb.t_on_ns = state.disturb.t_on_ns.max(T_AGG_ON_MIN_TRAS_NS);
                if hc > 0 {
                    if from_below {
                        state.disturb.below += f64::from(hc);
                    } else {
                        state.disturb.above += f64::from(hc);
                    }
                    state.disturb.t_on_ns = state.disturb.t_on_ns.max(profile.hammer_t_on_ns);
                }
            }
        }
        self.banks[profile.bank].open_row = None;
        flipped
    }
}

/// Classifies the Table-2 data pattern from victim/aggressor fill bytes.
///
/// Returns `None` when the fills match no standard pattern.
pub fn classify_pattern(victim: Option<u8>, aggressor: Option<u8>) -> Option<DataPattern> {
    let v = victim?;
    match (v, aggressor) {
        (0x00, _) => Some(DataPattern::Rowstripe0),
        (0xFF, _) => Some(DataPattern::Rowstripe1),
        (0x55, _) => Some(DataPattern::Checkered0),
        (0xAA, _) => Some(DataPattern::Checkered1),
        _ => None,
    }
}

/// Maps an arbitrary victim fill byte to the Table-2 pattern with the
/// nearest coupling behaviour: exact matches first, then by Hamming
/// distance of the fill to the four victim bytes (coupling is driven by
/// which victim bits sit against inverted aggressor bits, which the
/// Hamming distance captures to first order).
pub fn nearest_pattern(victim_fill: u8) -> DataPattern {
    DataPattern::ALL
        .into_iter()
        .min_by_key(|p| (victim_fill ^ p.victim_byte()).count_ones())
        .expect("four candidates")
}

fn visible_flips(flipped: &[u32], on_die_ecc: bool) -> Vec<u32> {
    if !on_die_ecc {
        return flipped.to_vec();
    }
    // On-die ECC corrects a single bit error per aligned 64-bit word.
    let mut per_word: HashMap<u32, Vec<u32>> = HashMap::new();
    for &bit in flipped {
        per_word.entry(bit / 64).or_default().push(bit);
    }
    let mut visible = Vec::new();
    for (_, bits) in per_word {
        if bits.len() > 1 {
            visible.extend(bits);
        }
    }
    visible.sort_unstable();
    visible
}

/// Steps a trap `n` times in one draw using the compound redraw
/// probability `1 - (1 - r)^n` (statistically identical to `n` single
/// steps for a redraw-style chain).
fn step_trap_n<R: Rng + ?Sized>(trap: &mut Trap, rng: &mut R, temperature_c: f64, n: u32) {
    if n == 0 {
        return;
    }
    if n == 1 {
        trap.step(rng, temperature_c);
        return;
    }
    let accel = 1.0 + 0.01 * (temperature_c - 50.0);
    let rate = (trap.mix_rate * accel).clamp(f64::MIN_POSITIVE, 1.0);
    let compound = 1.0 - (1.0 - rate).powi(n as i32);
    if rng.gen_bool(compound.clamp(0.0, 1.0)) {
        trap.occupied = rng.gen_bool(trap.occupancy);
    }
}

fn derive_row_seed(device_seed: u64, bank: u64, row: u64) -> u64 {
    let mut z = device_seed ^ bank.rotate_left(32) ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    // Knuth's method; lambda is small (≈ 1–2) everywhere we use it.
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 64 {
            return k; // guard against pathological lambda
        }
    }
}

fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> usize {
    let mut k = 0usize;
    while !rng.gen_bool(p) && k < 32 {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strong_config() -> DeviceConfig {
        // Dense weak cells with low thresholds so hammering reliably flips.
        let mut cfg = DeviceConfig::small_test();
        cfg.vrd.median_rdt = 3_000.0;
        cfg.vrd.weak_cells_per_row = 4.0;
        cfg
    }

    /// Finds a row whose weak-cell threshold is low enough to flip fast.
    fn find_vulnerable_row(dev: &mut DramDevice) -> u32 {
        let cond = TestConditions::foundational();
        for row in 2..4000 {
            if let Some(t) = dev.oracle_row_threshold(0, row, &cond) {
                if t < 20_000.0 {
                    return row;
                }
            }
        }
        panic!("no vulnerable row in test device");
    }

    #[test]
    fn construction_is_deterministic() {
        let mut a = DramDevice::new(DeviceConfig::small_test(), 7);
        let mut b = DramDevice::new(DeviceConfig::small_test(), 7);
        for row in 0..200 {
            assert_eq!(a.oracle_weak_cell_count(0, row), b.oracle_weak_cell_count(0, row));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DramDevice::new(DeviceConfig::small_test(), 1);
        let mut b = DramDevice::new(DeviceConfig::small_test(), 2);
        let counts_a: Vec<usize> = (0..100).map(|r| a.oracle_weak_cell_count(0, r)).collect();
        let counts_b: Vec<usize> = (0..100).map(|r| b.oracle_weak_cell_count(0, r)).collect();
        assert_ne!(counts_a, counts_b);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = DramDevice::new(DeviceConfig::small_test(), 0);
        assert!(matches!(dev.activate(9, 0), Err(DramError::BankOutOfRange { .. })));
        assert!(matches!(dev.activate(0, 1 << 30), Err(DramError::RowOutOfRange { .. })));
    }

    #[test]
    fn activate_requires_precharge_between_rows() {
        let mut dev = DramDevice::new(DeviceConfig::small_test(), 0);
        dev.activate(0, 10).unwrap();
        assert!(matches!(dev.activate(0, 11), Err(DramError::RowNotOpen { .. })));
        dev.precharge(0).unwrap();
        dev.activate(0, 11).unwrap();
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut dev = DramDevice::new(DeviceConfig::small_test(), 0);
        dev.write_row(0, 5, 0x55);
        dev.activate(0, 5).unwrap();
        let data = dev.read_open_row(0, 5).unwrap();
        assert!(data.iter().all(|&b| b == 0x55));
        dev.precharge(0).unwrap();
    }

    #[test]
    fn write_bytes_round_trips() {
        let mut dev = DramDevice::new(DeviceConfig::small_test(), 0);
        dev.activate(0, 7).unwrap();
        dev.write_open_row_bytes(0, 7, &[1, 2, 3]).unwrap();
        let data = dev.read_open_row(0, 7).unwrap();
        assert_eq!(&data[..3], &[1, 2, 3]);
        assert_eq!(data[3], 0);
    }

    #[test]
    fn heavy_hammer_flips_vulnerable_row() {
        let mut dev = DramDevice::new(strong_config(), 42);
        let victim = find_vulnerable_row(&mut dev);
        let p = DataPattern::Checkered0;
        dev.write_row(0, victim, p.victim_byte());
        dev.write_row(0, victim - 1, p.aggressor_byte());
        dev.write_row(0, victim + 1, p.aggressor_byte());
        dev.hammer_double_sided(0, victim, 500_000, 35.0);
        let flips = dev.read_and_compare(0, victim, p.victim_byte());
        assert!(!flips.is_empty(), "500k hammers must flip a vulnerable row");
    }

    #[test]
    fn light_hammer_does_not_flip() {
        let mut dev = DramDevice::new(strong_config(), 42);
        let victim = find_vulnerable_row(&mut dev);
        let p = DataPattern::Checkered0;
        dev.write_row(0, victim, p.victim_byte());
        dev.write_row(0, victim - 1, p.aggressor_byte());
        dev.write_row(0, victim + 1, p.aggressor_byte());
        dev.hammer_double_sided(0, victim, 5, 35.0);
        let flips = dev.read_and_compare(0, victim, p.victim_byte());
        assert!(flips.is_empty(), "5 hammers must not flip anything");
    }

    #[test]
    fn rewriting_clears_flips() {
        let mut dev = DramDevice::new(strong_config(), 42);
        let victim = find_vulnerable_row(&mut dev);
        let p = DataPattern::Checkered0;
        dev.write_row(0, victim, p.victim_byte());
        dev.write_row(0, victim - 1, p.aggressor_byte());
        dev.write_row(0, victim + 1, p.aggressor_byte());
        dev.hammer_double_sided(0, victim, 500_000, 35.0);
        assert!(!dev.read_and_compare(0, victim, p.victim_byte()).is_empty());
        // Re-initialize and read without hammering: clean.
        dev.write_row(0, victim, p.victim_byte());
        assert!(dev.read_and_compare(0, victim, p.victim_byte()).is_empty());
    }

    #[test]
    fn bulk_activation_equals_repeated_activation() {
        // Statistical equivalence of activate_n and n× activate on the
        // disturbance counters (trap RNG draws differ; counters must not).
        let mut a = DramDevice::new(strong_config(), 3);
        let mut b = DramDevice::new(strong_config(), 3);
        let victim = find_vulnerable_row(&mut a);
        let aggressor = victim + 1;
        a.activate_n(0, aggressor, 100, 35.0).unwrap();
        for _ in 0..100 {
            b.activate(0, aggressor).unwrap();
            b.precharge(0).unwrap();
        }
        let da = a.banks[0].rows[&victim].disturb;
        let db = b.banks[0].rows[&victim].disturb;
        assert_eq!(da.below, db.below);
        assert_eq!(da.above, db.above);
    }

    #[test]
    fn single_sided_is_weaker() {
        let s = DisturbState { below: 1000.0, above: 1000.0, t_on_ns: 35.0 };
        assert_eq!(s.effective_hammers(), 1000.0);
        let s = DisturbState { below: 1000.0, above: 0.0, t_on_ns: 35.0 };
        assert_eq!(s.effective_hammers(), 400.0);
    }

    #[test]
    fn refresh_resets_disturbance() {
        let mut cfg = strong_config();
        cfg.rows_per_refresh = cfg.rows_per_bank(); // refresh all rows at once
        let mut dev = DramDevice::new(cfg, 42);
        let victim = find_vulnerable_row(&mut dev);
        let p = DataPattern::Checkered0;
        dev.write_row(0, victim, p.victim_byte());
        dev.write_row(0, victim - 1, p.aggressor_byte());
        dev.write_row(0, victim + 1, p.aggressor_byte());
        // Hammer heavily but refresh before reading: refresh restores the
        // row, but flips already "occurred" during hammering, so restore
        // materializes them — hammering must flip regardless of whether
        // the read or the refresh performs the restore.
        dev.hammer_double_sided(0, victim, 500_000, 35.0);
        dev.refresh();
        let flips = dev.read_and_compare(0, victim, p.victim_byte());
        assert!(!flips.is_empty());

        // But split hammering with interleaved refreshes never crosses
        // the threshold: each refresh resets accumulation.
        dev.write_row(0, victim, p.victim_byte());
        for _ in 0..50 {
            dev.hammer_double_sided(0, victim, 100, 35.0);
            dev.refresh();
        }
        let flips = dev.read_and_compare(0, victim, p.victim_byte());
        assert!(flips.is_empty(), "interleaved refresh must prevent flips");
    }

    #[test]
    fn on_die_ecc_hides_single_flips() {
        let mut dev = DramDevice::new(strong_config(), 42);
        let victim = find_vulnerable_row(&mut dev);
        let p = DataPattern::Checkered0;
        dev.write_row(0, victim, p.victim_byte());
        dev.write_row(0, victim - 1, p.aggressor_byte());
        dev.write_row(0, victim + 1, p.aggressor_byte());
        dev.hammer_double_sided(0, victim, 500_000, 35.0);
        dev.set_on_die_ecc_enabled(true);
        let with_ecc = dev.read_and_compare(0, victim, p.victim_byte());
        dev.set_on_die_ecc_enabled(false);
        let without_ecc = dev.read_and_compare(0, victim, p.victim_byte());
        assert!(with_ecc.len() <= without_ecc.len());
    }

    #[test]
    fn classify_patterns() {
        assert_eq!(classify_pattern(Some(0x00), Some(0xFF)), Some(DataPattern::Rowstripe0));
        assert_eq!(classify_pattern(Some(0xAA), Some(0x55)), Some(DataPattern::Checkered1));
        assert_eq!(classify_pattern(Some(0x12), Some(0x34)), None);
        assert_eq!(classify_pattern(None, Some(0xFF)), None);
    }

    #[test]
    fn nearest_pattern_by_hamming_distance() {
        assert_eq!(nearest_pattern(0x00), DataPattern::Rowstripe0);
        assert_eq!(nearest_pattern(0xFF), DataPattern::Rowstripe1);
        assert_eq!(nearest_pattern(0x01), DataPattern::Rowstripe0);
        assert_eq!(nearest_pattern(0xFE), DataPattern::Rowstripe1);
        assert_eq!(nearest_pattern(0x54), DataPattern::Checkered0);
        assert_eq!(nearest_pattern(0xAB), DataPattern::Checkered1);
    }

    #[test]
    fn oracle_threshold_none_for_strong_rows() {
        let mut cfg = DeviceConfig::small_test();
        cfg.vrd.weak_cells_per_row = 0.0;
        let mut dev = DramDevice::new(cfg, 0);
        assert_eq!(dev.oracle_row_threshold(0, 100, &TestConditions::foundational()), None);
    }

    #[test]
    fn total_activations_counts_bulk() {
        let mut dev = DramDevice::new(DeviceConfig::small_test(), 0);
        dev.activate_n(0, 1, 500, 35.0).unwrap();
        dev.precharge(0).unwrap();
        dev.activate(0, 2).unwrap();
        assert_eq!(dev.total_activations(), 501);
    }
}
