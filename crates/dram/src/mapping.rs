//! Logical-to-physical row address mapping and its reverse engineering.
//!
//! DRAM manufacturers internally remap memory-controller-visible (logical)
//! row addresses to physical rows; identifying the aggressor rows that are
//! *physically* adjacent to a victim requires knowing the scheme. The paper
//! reverse-engineers the mapping following prior work (§3.1); this module
//! provides the common scheme families and a disturbance-based
//! reverse-engineering routine.

use serde::{Deserialize, Serialize};

/// A logical↔physical row remapping scheme.
///
/// All schemes are bijections on the row address space; the variants model
/// address swizzles observed in real DDR4 devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RowMapping {
    /// Identity: physical = logical.
    #[default]
    Direct,
    /// "Vendor A" swizzle: when bit 3 of the address is set, bits 1 and 2
    /// are inverted (a self-inverse XOR swizzle, similar to the scheme
    /// reverse-engineered for some Samsung parts).
    VendorA,
    /// "Vendor B" swizzle: bits 0 and 1 are swapped (models interleaved
    /// sub-wordline pairing).
    VendorB,
    /// "Vendor C" swizzle: XOR of bit 1 into bit 0 (models folded layouts
    /// where consecutive logical rows alternate physical sides).
    VendorC,
}

impl RowMapping {
    /// All known schemes, in the order the reverse-engineering routine
    /// tries them.
    pub const ALL: [RowMapping; 4] =
        [RowMapping::Direct, RowMapping::VendorA, RowMapping::VendorB, RowMapping::VendorC];

    /// Physical row for a logical row address.
    pub fn physical_of(self, logical: u32) -> u32 {
        match self {
            RowMapping::Direct => logical,
            RowMapping::VendorA => {
                if logical & 0b1000 != 0 {
                    logical ^ 0b0110
                } else {
                    logical
                }
            }
            RowMapping::VendorB => {
                let b0 = logical & 1;
                let b1 = (logical >> 1) & 1;
                (logical & !0b11) | (b0 << 1) | b1
            }
            RowMapping::VendorC => logical ^ ((logical >> 1) & 1),
        }
    }

    /// Logical row for a physical row address (inverse of
    /// [`physical_of`](Self::physical_of)).
    pub fn logical_of(self, physical: u32) -> u32 {
        match self {
            // Direct, VendorA and VendorB are self-inverse.
            RowMapping::Direct | RowMapping::VendorA | RowMapping::VendorB => {
                self.physical_of(physical)
            }
            // VendorC: bit 0 of physical = b0 ^ b1 with b1 unchanged, so
            // recovering b0 applies the same XOR again.
            RowMapping::VendorC => physical ^ ((physical >> 1) & 1),
        }
    }

    /// Logical addresses of the two physical neighbors of `logical`'s
    /// physical row, clamped to `0..rows`. Returns `(below, above)`, where
    /// either side is `None` at the edge of the bank.
    pub fn neighbors_of(self, logical: u32, rows: u32) -> (Option<u32>, Option<u32>) {
        let phys = self.physical_of(logical);
        let below =
            if phys == 0 { None } else { Some(self.logical_of(phys - 1)).filter(|&r| r < rows) };
        let above = if phys + 1 >= rows { None } else { Some(self.logical_of(phys + 1)) };
        (below, above.filter(|&r| r < rows))
    }
}

/// Reverse-engineers the row mapping of a device under test.
///
/// `neighbor_oracle(logical)` must return the logical addresses observed to
/// be disturbed when `logical` is hammered heavily single-sided — in a real
/// campaign this comes from scanning which rows develop bitflips (the
/// methodology of prior work the paper reuses); against the model it can
/// simply wrap [`crate::device::DramDevice`] probing. `probe_rows` selects
/// the logical rows to probe.
///
/// Returns the scheme matching the most probes, together with its match
/// count; ties resolve to the earlier scheme in [`RowMapping::ALL`].
pub fn reverse_engineer<F>(
    probe_rows: &[u32],
    rows: u32,
    mut neighbor_oracle: F,
) -> (RowMapping, usize)
where
    F: FnMut(u32) -> Vec<u32>,
{
    let mut best = (RowMapping::Direct, 0usize);
    let observations: Vec<(u32, Vec<u32>)> =
        probe_rows.iter().map(|&r| (r, neighbor_oracle(r))).collect();
    for scheme in RowMapping::ALL {
        let mut matches = 0;
        for (probe, observed) in &observations {
            let (below, above) = scheme.neighbors_of(*probe, rows);
            let predicted: Vec<u32> = [below, above].into_iter().flatten().collect();
            let mut pred_sorted = predicted.clone();
            pred_sorted.sort_unstable();
            let mut obs_sorted = observed.clone();
            obs_sorted.sort_unstable();
            if pred_sorted == obs_sorted {
                matches += 1;
            }
        }
        if matches > best.1 {
            best = (scheme, matches);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_are_bijections() {
        for scheme in RowMapping::ALL {
            for logical in 0..1024u32 {
                let phys = scheme.physical_of(logical);
                assert_eq!(scheme.logical_of(phys), logical, "{scheme:?} at {logical}");
            }
        }
    }

    #[test]
    fn all_schemes_are_permutations() {
        for scheme in RowMapping::ALL {
            let mut seen = vec![false; 256];
            for logical in 0..256u32 {
                let phys = scheme.physical_of(logical) as usize;
                assert!(phys < 256, "{scheme:?} escaped range");
                assert!(!seen[phys], "{scheme:?} collided at {phys}");
                seen[phys] = true;
            }
        }
    }

    #[test]
    fn direct_neighbors() {
        let (b, a) = RowMapping::Direct.neighbors_of(5, 100);
        assert_eq!(b, Some(4));
        assert_eq!(a, Some(6));
    }

    #[test]
    fn edge_rows_have_one_neighbor() {
        let (b, a) = RowMapping::Direct.neighbors_of(0, 100);
        assert_eq!(b, None);
        assert_eq!(a, Some(1));
        let (b, a) = RowMapping::Direct.neighbors_of(99, 100);
        assert_eq!(b, Some(98));
        assert_eq!(a, None);
    }

    #[test]
    fn vendor_a_swizzles_upper_half_only() {
        // Rows 0..8 unswizzled.
        for r in 0..8 {
            assert_eq!(RowMapping::VendorA.physical_of(r), r);
        }
        // Row 8 (0b1000) -> 0b1110 = 14.
        assert_eq!(RowMapping::VendorA.physical_of(8), 14);
    }

    #[test]
    fn vendor_b_swaps_low_bits() {
        assert_eq!(RowMapping::VendorB.physical_of(0b01), 0b10);
        assert_eq!(RowMapping::VendorB.physical_of(0b10), 0b01);
        assert_eq!(RowMapping::VendorB.physical_of(0b11), 0b11);
        assert_eq!(RowMapping::VendorB.physical_of(0b100), 0b100);
    }

    #[test]
    fn reverse_engineering_recovers_each_scheme() {
        let rows = 4096u32;
        let probes: Vec<u32> = (0..64).map(|i| i * 37 % rows).collect();
        for truth in RowMapping::ALL {
            let (found, matches) = reverse_engineer(&probes, rows, |logical| {
                let (b, a) = truth.neighbors_of(logical, rows);
                [b, a].into_iter().flatten().collect()
            });
            // Some schemes agree on many addresses (e.g. Direct and VendorA
            // below row 8); probes are spread widely enough to separate
            // them.
            assert_eq!(found, truth, "expected {truth:?}, got {found:?}");
            assert_eq!(matches, probes.len());
        }
    }

    #[test]
    fn reverse_engineering_tolerates_noisy_oracle() {
        let rows = 4096u32;
        let probes: Vec<u32> = (0..64).map(|i| i * 61 % rows).collect();
        let truth = RowMapping::VendorC;
        let (found, matches) = reverse_engineer(&probes, rows, |logical| {
            if logical % 10 == 0 {
                vec![] // probe failed: no bitflips observed
            } else {
                let (b, a) = truth.neighbors_of(logical, rows);
                [b, a].into_iter().flatten().collect()
            }
        });
        assert_eq!(found, truth);
        assert!(matches > probes.len() / 2);
    }
}
