//! Data-retention model with variable retention time (VRT).
//!
//! The paper repeatedly draws the analogy between VRD and the *variable
//! retention time* phenomenon (§4.2, §6.5): a DRAM cell's retention time
//! switches between discrete states as a metastable trap occupies and
//! vacates. This module provides that substrate — both because the
//! paper's methodology must control retention interference (§3.1: all
//! tests finish within one refresh window) and because retention-failure
//! profiling literature (§7) is the template for the online RDT
//! profiling this repository implements in `vrd-core`.
//!
//! Like the read-disturbance engine, only the tail cells matter: a row
//! owns a few *leaky cells* whose retention time can fall below the
//! refresh window; everything else retains data indefinitely at any
//! tested refresh interval.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A leaky cell with a two-state (VRT) retention time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakyCell {
    /// Bit position within the row.
    pub bit: u32,
    /// Retention time in the trap's *vacant* state (ms).
    pub retention_high_ms: f64,
    /// Retention time in the trap's *occupied* state (ms) — the VRT low
    /// state; `retention_low_ms <= retention_high_ms`.
    pub retention_low_ms: f64,
    /// Probability of being in the low state at any refresh.
    pub low_occupancy: f64,
    /// Per-refresh probability of redrawing the state.
    pub mix_rate: f64,
    /// Whether the cell currently sits in the low-retention state.
    pub in_low_state: bool,
}

impl LeakyCell {
    /// The current retention time (ms).
    pub fn retention_ms(&self) -> f64 {
        if self.in_low_state {
            self.retention_low_ms
        } else {
            self.retention_high_ms
        }
    }

    /// Steps the VRT state (one refresh event). Temperature halves
    /// retention every ~10 °C above 50 °C (the standard retention rule of
    /// thumb is applied by the caller via
    /// [`temperature_retention_factor`]).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if rng.gen_bool(self.mix_rate) {
            self.in_low_state = rng.gen_bool(self.low_occupancy);
        }
    }

    /// Whether the cell loses its charge if left unrefreshed for
    /// `interval_ms` at `temperature_c`.
    pub fn fails_at(&self, interval_ms: f64, temperature_c: f64) -> bool {
        self.retention_ms() * temperature_retention_factor(temperature_c) < interval_ms
    }
}

/// Relative retention at `temperature_c` versus the 50 °C reference:
/// retention halves every 10 °C of additional heat.
pub fn temperature_retention_factor(temperature_c: f64) -> f64 {
    0.5f64.powf((temperature_c - 50.0) / 10.0)
}

/// Parameters of the retention model for one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionParams {
    /// Expected leaky cells per row (Poisson rate; most rows have none).
    pub leaky_cells_per_row: f64,
    /// Median high-state retention (ms) of leaky cells.
    pub median_retention_ms: f64,
    /// Lognormal sigma of the high-state retention.
    pub sigma_ln: f64,
    /// Fraction of leaky cells subject to VRT (two-state behaviour).
    pub vrt_fraction: f64,
    /// Ratio low-state / high-state retention for VRT cells.
    pub vrt_ratio: f64,
}

impl Default for RetentionParams {
    fn default() -> Self {
        RetentionParams {
            leaky_cells_per_row: 0.02,
            median_retention_ms: 800.0,
            sigma_ln: 0.9,
            vrt_fraction: 0.3,
            vrt_ratio: 0.25,
        }
    }
}

/// Per-row retention state generator and failure oracle.
///
/// # Examples
///
/// ```
/// use vrd_dram::retention::{RetentionModel, RetentionParams};
///
/// let model = RetentionModel::new(RetentionParams::default(), 7);
/// // At the standard 64 ms refresh window and 50 °C almost nothing fails.
/// let failures = model.profile_rows(0..10_000, 64.0, 50.0, 1);
/// assert!(failures.len() < 100);
/// ```
#[derive(Debug, Clone)]
pub struct RetentionModel {
    params: RetentionParams,
    seed: u64,
}

/// A retention failure found by profiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionFailure {
    /// Failing row.
    pub row: u32,
    /// Failing bit.
    pub bit: u32,
    /// The retention time observed when the failure manifested (ms).
    pub retention_ms: f64,
}

impl RetentionModel {
    /// Creates a model, deterministic in `seed`.
    pub fn new(params: RetentionParams, seed: u64) -> Self {
        RetentionModel { params, seed }
    }

    /// The leaky cells of `row` (deterministic per row).
    pub fn cells_of(&self, row: u32) -> Vec<LeakyCell> {
        let mut rng = ChaCha12Rng::seed_from_u64(
            self.seed ^ u64::from(row).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let p = &self.params;
        // Poisson via Knuth (rate is tiny).
        let l = (-p.leaky_cells_per_row).exp();
        let mut k = 0usize;
        let mut acc = 1.0;
        loop {
            acc *= rng.gen::<f64>();
            if acc <= l {
                break;
            }
            k += 1;
            if k > 16 {
                break;
            }
        }
        (0..k)
            .map(|_| {
                let z = {
                    let u1: f64 = 1.0 - rng.gen::<f64>();
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                let high = (p.median_retention_ms.ln() + p.sigma_ln * z).exp();
                let vrt = rng.gen_bool(p.vrt_fraction);
                let low_occupancy = if vrt { 0.1 + 0.3 * rng.gen::<f64>() } else { 0.0 };
                LeakyCell {
                    bit: rng.gen_range(0..65_536),
                    retention_high_ms: high,
                    retention_low_ms: if vrt { high * p.vrt_ratio } else { high },
                    low_occupancy,
                    mix_rate: 0.05 + 0.2 * rng.gen::<f64>(),
                    in_low_state: vrt && rng.gen_bool(low_occupancy),
                }
            })
            .collect()
    }

    /// Profiles rows at a refresh `interval_ms` and `temperature_c`,
    /// repeating `rounds` times with VRT stepping between rounds (the
    /// REAPER-style profiling loop the paper's §7 cites). Returns every
    /// failure observed in any round.
    pub fn profile_rows(
        &self,
        rows: std::ops::Range<u32>,
        interval_ms: f64,
        temperature_c: f64,
        rounds: u32,
    ) -> Vec<RetentionFailure> {
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed ^ 0xF0F0);
        let mut failures = Vec::new();
        for row in rows {
            let mut cells = self.cells_of(row);
            if cells.is_empty() {
                continue;
            }
            let mut seen = std::collections::BTreeSet::new();
            for _ in 0..rounds {
                for cell in &mut cells {
                    if cell.fails_at(interval_ms, temperature_c) && seen.insert(cell.bit) {
                        failures.push(RetentionFailure {
                            row,
                            bit: cell.bit,
                            retention_ms: cell.retention_ms(),
                        });
                    }
                    cell.step(&mut rng);
                }
            }
        }
        failures
    }

    /// Fraction of failures at `interval_ms` that a single profiling
    /// round *misses* because the VRT cell sat in its high state — the
    /// exact analogue of the paper's "few RDT measurements miss the
    /// minimum RDT".
    pub fn single_round_miss_fraction(
        &self,
        rows: std::ops::Range<u32>,
        interval_ms: f64,
        temperature_c: f64,
        exhaustive_rounds: u32,
    ) -> f64 {
        let one = self.profile_rows(rows.clone(), interval_ms, temperature_c, 1).len();
        let many = self.profile_rows(rows, interval_ms, temperature_c, exhaustive_rounds).len();
        if many == 0 {
            0.0
        } else {
            1.0 - one as f64 / many as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic_per_row() {
        let model = RetentionModel::new(RetentionParams::default(), 1);
        assert_eq!(model.cells_of(42), model.cells_of(42));
        // Distinct rows differ somewhere in 1000 rows.
        let differs = (0..1000).any(|r| model.cells_of(r) != model.cells_of(r + 1000));
        assert!(differs);
    }

    #[test]
    fn standard_window_is_nearly_failure_free() {
        let model = RetentionModel::new(RetentionParams::default(), 2);
        let failures = model.profile_rows(0..20_000, 64.0, 50.0, 1);
        let rate = failures.len() as f64 / 20_000.0;
        assert!(rate < 0.01, "64 ms @ 50 °C must be nearly clean, rate {rate}");
    }

    #[test]
    fn longer_intervals_fail_more() {
        let model = RetentionModel::new(RetentionParams::default(), 3);
        let short = model.profile_rows(0..20_000, 64.0, 50.0, 1).len();
        let long = model.profile_rows(0..20_000, 2_000.0, 50.0, 1).len();
        assert!(long > short, "2 s interval must fail more ({long} vs {short})");
    }

    #[test]
    fn heat_reduces_retention() {
        assert!((temperature_retention_factor(50.0) - 1.0).abs() < 1e-12);
        assert!((temperature_retention_factor(60.0) - 0.5).abs() < 1e-12);
        assert!(temperature_retention_factor(85.0) < 0.1);
        let model = RetentionModel::new(RetentionParams::default(), 4);
        let cool = model.profile_rows(0..20_000, 500.0, 50.0, 1).len();
        let hot = model.profile_rows(0..20_000, 500.0, 85.0, 1).len();
        assert!(hot >= cool);
    }

    #[test]
    fn vrt_makes_single_round_profiling_incomplete() {
        // The VRT phenomenon: one profiling round misses failures that
        // only manifest when the trap occupies — the retention analogue
        // of the paper's Takeaway 2.
        let params = RetentionParams {
            leaky_cells_per_row: 0.05,
            vrt_fraction: 0.9,
            vrt_ratio: 0.15,
            ..RetentionParams::default()
        };
        let model = RetentionModel::new(params, 5);
        // Pick an interval between the low and high states of typical
        // VRT cells so state matters.
        let miss = model.single_round_miss_fraction(0..30_000, 300.0, 50.0, 64);
        assert!(miss > 0.05, "one round must miss VRT failures, missed {miss}");
    }

    #[test]
    fn vrt_cell_switches_states() {
        let mut cell = LeakyCell {
            bit: 0,
            retention_high_ms: 1000.0,
            retention_low_ms: 100.0,
            low_occupancy: 0.5,
            mix_rate: 0.5,
            in_low_state: false,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let mut visited_low = false;
        let mut visited_high = false;
        for _ in 0..200 {
            cell.step(&mut rng);
            if cell.in_low_state {
                visited_low = true;
            } else {
                visited_high = true;
            }
        }
        assert!(visited_low && visited_high);
        assert!(cell.fails_at(500.0, 50.0) == cell.in_low_state);
    }

    #[test]
    fn repeated_rounds_find_superset() {
        let model = RetentionModel::new(RetentionParams::default(), 7);
        let one = model.profile_rows(0..10_000, 400.0, 50.0, 1).len();
        let many = model.profile_rows(0..10_000, 400.0, 50.0, 32).len();
        assert!(many >= one);
    }
}
