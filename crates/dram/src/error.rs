//! Error type for DRAM device operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible DRAM device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// The bank index was outside the device's bank count.
    BankOutOfRange { bank: usize, banks: usize },
    /// The row address was outside the bank's row count.
    RowOutOfRange { row: u32, rows: u32 },
    /// A row access was issued while the bank had a different row open
    /// (a real chip would corrupt data; the model rejects the command).
    RowNotOpen { bank: usize, row: u32 },
    /// The module name was not recognized by the fleet.
    UnknownModule(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (device has {banks} banks)")
            }
            DramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (bank has {rows} rows)")
            }
            DramError::RowNotOpen { bank, row } => {
                write!(f, "row {row} is not open in bank {bank}")
            }
            DramError::UnknownModule(name) => write!(f, "unknown module {name:?}"),
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DramError::BankOutOfRange { bank: 9, banks: 8 };
        assert!(e.to_string().contains("bank 9"));
        let e = DramError::UnknownModule("Z9".into());
        assert!(e.to_string().contains("Z9"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
