//! The tested DRAM modules and chips (paper Tables 1 and 7) and the VRD
//! model parameters calibrated from them.
//!
//! The paper characterizes 21 DDR4 modules (160 chips) and 4 HBM2 chips
//! from the three major manufacturers. [`ModuleSpec::table1`] reproduces
//! that roster; each spec carries the Table-7 calibration anchors (minimum
//! observed RDT at `t_AggOn = t_RAS` and `t_REFI`, and the median/maximum
//! expected normalized minimum RDT at N = 1) from which the stochastic
//! device-model parameters ([`VrdModelParams`]) are derived.

use serde::{Deserialize, Serialize};

use crate::family::DeviceFamily;

/// DRAM manufacturer (anonymized as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Manufacturer {
    /// Mfr. H (SK Hynix).
    H,
    /// Mfr. M (Micron).
    M,
    /// Mfr. S (Samsung).
    S,
}

impl Manufacturer {
    /// Single-letter label used in module names and figures.
    pub fn letter(self) -> char {
        match self {
            Manufacturer::H => 'H',
            Manufacturer::M => 'M',
            Manufacturer::S => 'S',
        }
    }
}

impl std::fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mfr. {}", self.letter())
    }
}

/// DRAM standard of the tested part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramStandard {
    /// DDR4 SDRAM (JESD79-4C).
    Ddr4,
    /// High Bandwidth Memory 2 (JESD235D).
    Hbm2,
}

/// Die density of a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DieDensity {
    /// 4 Gbit die.
    Gb4,
    /// 8 Gbit die.
    Gb8,
    /// 16 Gbit die.
    Gb16,
    /// Density not discernible (HBM2 chips).
    Unknown,
}

impl DieDensity {
    /// Gigabits per die, if known.
    pub fn gigabits(self) -> Option<u32> {
        match self {
            DieDensity::Gb4 => Some(4),
            DieDensity::Gb8 => Some(8),
            DieDensity::Gb16 => Some(16),
            DieDensity::Unknown => None,
        }
    }

    /// Relative VRD severity scaling with density (Finding 11: higher
    /// density ⇒ worse VRD profile).
    fn severity(self) -> f64 {
        match self {
            DieDensity::Gb4 => 0.90,
            DieDensity::Gb8 => 1.00,
            DieDensity::Gb16 => 1.15,
            DieDensity::Unknown => 1.00,
        }
    }
}

/// Calibration anchors taken from the paper's Table 7 for one module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table7Anchor {
    /// Minimum observed RDT across all measurements/rows/conditions at
    /// `t_AggOn = t_RAS`.
    pub min_rdt_tras: u32,
    /// Minimum observed RDT at `t_AggOn = t_REFI` (7.8 µs).
    pub min_rdt_trefi: u32,
    /// Median expected normalized value of the minimum RDT at N = 1.
    pub median_norm_n1: f64,
    /// Maximum (worst-row) expected normalized value at N = 1.
    pub max_norm_n1: f64,
}

/// Specification of one tested DDR4 module or HBM2 chip (Table 1 + Table 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Module name as used in the paper (`H0`..`H6`, `M0`..`M6`,
    /// `S0`..`S6`, `Chip0`..`Chip3`).
    pub name: String,
    /// Manufacturer.
    pub manufacturer: Manufacturer,
    /// DRAM standard.
    pub standard: DramStandard,
    /// Number of DRAM chips on the module.
    pub chips: u32,
    /// Die density.
    pub density: DieDensity,
    /// Die revision letter, if discernible.
    pub die_revision: Option<char>,
    /// Data width per chip (8 or 16 bits; 2048 for HBM2 pseudo-channels).
    pub chip_width: u32,
    /// Table-7 calibration anchors.
    pub anchor: Table7Anchor,
}

impl ModuleSpec {
    /// All 21 DDR4 modules and 4 HBM2 chips tested in the paper, with
    /// Table-7 anchors.
    pub fn table1() -> Vec<ModuleSpec> {
        use DieDensity::*;
        use DramStandard::*;
        use Manufacturer::*;
        let ddr4 = |name: &str,
                    mfr: Manufacturer,
                    chips: u32,
                    density: DieDensity,
                    rev: char,
                    width: u32,
                    anchor: (u32, u32, f64, f64)| ModuleSpec {
            name: name.to_owned(),
            manufacturer: mfr,
            standard: Ddr4,
            chips,
            density,
            die_revision: Some(rev),
            chip_width: width,
            anchor: Table7Anchor {
                min_rdt_tras: anchor.0,
                min_rdt_trefi: anchor.1,
                median_norm_n1: anchor.2,
                max_norm_n1: anchor.3,
            },
        };
        let hbm2 = |name: &str, anchor: (u32, u32, f64, f64)| ModuleSpec {
            name: name.to_owned(),
            manufacturer: S,
            standard: Hbm2,
            chips: 1,
            density: Unknown,
            die_revision: None,
            chip_width: 2048,
            anchor: Table7Anchor {
                min_rdt_tras: anchor.0,
                min_rdt_trefi: anchor.1,
                median_norm_n1: anchor.2,
                max_norm_n1: anchor.3,
            },
        };
        vec![
            ddr4("H0", H, 8, Gb8, 'J', 8, (23_238, 9_436, 1.04, 1.59)),
            ddr4("H1", H, 8, Gb16, 'C', 8, (7_835, 1_941, 1.07, 1.51)),
            ddr4("H2", H, 8, Gb8, 'A', 8, (25_606, 12_143, 1.05, 1.35)),
            ddr4("H3", H, 8, Gb8, 'D', 8, (9_804, 4_185, 1.05, 1.54)),
            ddr4("H4", H, 8, Gb8, 'D', 8, (10_750, 2_941, 1.05, 1.63)),
            ddr4("H5", H, 8, Gb8, 'D', 8, (13_572, 3_185, 1.05, 1.56)),
            ddr4("H6", H, 8, Gb8, 'D', 8, (9_680, 3_770, 1.05, 1.70)),
            ddr4("M0", M, 4, Gb16, 'E', 16, (4_980, 2_025, 1.06, 1.45)),
            ddr4("M1", M, 8, Gb16, 'F', 8, (4_250, 1_796, 1.08, 1.78)),
            ddr4("M2", M, 8, Gb16, 'F', 8, (4_741, 1_620, 1.08, 1.47)),
            ddr4("M3", M, 8, Gb8, 'R', 8, (4_691, 1_788, 1.08, 1.46)),
            ddr4("M4", M, 8, Gb8, 'R', 8, (3_686, 2_320, 1.08, 1.84)),
            ddr4("M5", M, 8, Gb8, 'R', 8, (4_675, 2_177, 1.08, 1.83)),
            ddr4("M6", M, 8, Gb16, 'F', 8, (4_340, 1_916, 1.09, 1.63)),
            ddr4("S0", S, 8, Gb8, 'C', 8, (12_152, 1_965, 1.04, 3.21)),
            ddr4("S1", S, 8, Gb8, 'B', 8, (31_248, 3_326, 1.04, 1.85)),
            ddr4("S2", S, 8, Gb8, 'D', 8, (6_230, 1_664, 1.05, 1.85)),
            ddr4("S3", S, 8, Gb16, 'A', 8, (8_390, 4_355, 1.05, 1.60)),
            ddr4("S4", S, 4, Gb4, 'C', 16, (12_418, 1_780, 1.04, 1.73)),
            ddr4("S5", S, 8, Gb16, 'B', 16, (6_685, 2_150, 1.05, 1.50)),
            ddr4("S6", S, 8, Gb16, 'B', 16, (7_575, 3_400, 1.05, 1.90)),
            hbm2("Chip0", (45_136, 1_244, 1.05, 1.73)),
            hbm2("Chip1", (41_664, 2_218, 1.05, 1.82)),
            hbm2("Chip2", (34_720, 1_520, 1.05, 1.72)),
            hbm2("Chip3", (55_553, 1_664, 1.05, 1.89)),
        ]
    }

    /// Looks up a spec by its paper name.
    pub fn by_name(name: &str) -> Option<ModuleSpec> {
        Self::table1().into_iter().find(|s| s.name == name)
    }

    /// Die-revision ordinal (A = 0, B = 1, …); 0 when unknown. For a given
    /// manufacturer and density, a later revision indicates a more
    /// advanced technology node (paper footnote 12).
    pub fn revision_ordinal(&self) -> u32 {
        self.die_revision.map_or(0, |c| c as u32 - 'A' as u32)
    }

    /// The family descriptor this roster entry instantiates: topology,
    /// timings, row-mapping/cell-layout policy, chip mapping, and
    /// per-bank variation all live there (see [`DeviceFamily`]). This is
    /// the single source of geometry; `ModuleSpec` itself carries only
    /// roster identity and calibration anchors.
    pub fn family(&self) -> DeviceFamily {
        DeviceFamily::for_module(
            self.standard,
            self.manufacturer,
            self.density,
            self.chips,
            self.chip_width,
        )
    }

    /// The VRD model parameters calibrated from this spec's Table-7
    /// anchors (see [`VrdModelParams`]).
    pub fn vrd_params(&self) -> VrdModelParams {
        VrdModelParams::from_anchor(self)
    }
}

/// Stochastic parameters of the device model's VRD engine for one module.
///
/// Derived from the paper's Table 7: the minimum observed RDT sets the
/// threshold scale and the RowPress exponent; the median and maximum
/// expected-normalized-minimum values at N = 1 set the typical and tail
/// trap strengths. A severity factor grows with die density and revision
/// so Finding 11's monotonicity holds by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VrdModelParams {
    /// Median of the lognormal base-threshold distribution for weak cells.
    pub median_rdt: f64,
    /// Sigma (in ln units) of the base-threshold distribution.
    pub sigma_ln: f64,
    /// Expected number of weak cells per row (Poisson rate).
    pub weak_cells_per_row: f64,
    /// Typical per-trap assist strength (relative threshold reduction).
    pub typical_assist: f64,
    /// Assist strength of a rare dominant trap (the VRD tail).
    pub tail_assist: f64,
    /// Probability that a weak cell carries a dominant trap.
    pub tail_probability: f64,
    /// Range of per-restore-event trap redraw probabilities.
    pub mix_rate_range: (f64, f64),
    /// Range of per-session lognormal threshold-jitter sigmas (the
    /// near-normal bulk of the measured RDT distribution).
    pub jitter_sigma_range: (f64, f64),
    /// Range of stationary occupancies for dominant traps. Low occupancy
    /// makes the minimum RDT a rare event (Findings 7–9).
    pub tail_occupancy_range: (f64, f64),
    /// Mean RowPress exponent (threshold ∝ `t_AggOn^-press`).
    pub press_coeff: f64,
    /// Mean relative threshold change per °C (typically negative).
    pub temp_coeff_mean: f64,
    /// Spread of the per-cell temperature coefficient.
    pub temp_coeff_spread: f64,
    /// Sigma (ln units) of per-cell, per-pattern coupling factors.
    pub pattern_spread: f64,
    /// When set, every weak cell receives exactly one dominant trap,
    /// yielding a bimodal RDT histogram (HBM2 Chip1 in Fig. 4).
    pub bimodal: bool,
}

impl VrdModelParams {
    /// Derives parameters from a module's Table-7 anchors.
    pub fn from_anchor(spec: &ModuleSpec) -> Self {
        let a = &spec.anchor;
        // RowPress exponent from the ratio of min observed RDT at tRAS vs
        // tREFI: ratio = (7.8 µs / tRAS)^press, with the family's own
        // tRAS as the lower anchor (the paper's Table 7 measures every
        // part at t_AggOn = 7.8 µs for the upper one).
        let on_ratio: f64 = 7_800.0 / spec.family().timings.t_ras_ns;
        let rdt_ratio = f64::from(a.min_rdt_tras) / f64::from(a.min_rdt_trefi);
        let press_coeff = rdt_ratio.ln() / on_ratio.ln();

        // Severity grows with density and revision (Finding 11).
        let severity =
            spec.density.severity() * (1.0 + 0.03 * f64::from(spec.revision_ordinal().min(10)));

        // The expected-normalized-minimum median at N=1 relates to the
        // total per-measurement spread: for near-normal noise the minimum
        // of 1,000 draws sits ≈ 3.2σ below the mean, so
        // median_norm_n1 ≈ 1 / (1 − 3.2σ) ⇒ σ ≈ (1 − 1/m) / 3.2.
        // (The 4.6 divisor includes the first-crossing bias of the
        // ascending sweep, which deepens the observed minimum.)
        let sigma_total = ((1.0 - 1.0 / a.median_norm_n1) / 3.7 * severity).clamp(0.003, 0.045);
        // Jitter carries ~2/3 of the spread, small traps the rest.
        let jitter_mid = sigma_total * 0.8;
        let typical_assist = (sigma_total * 1.3).clamp(0.004, 0.1);
        // Tail assist from the worst-row normalized value: the dominant
        // trap must be able to cut the threshold to 1/max_norm_n1.
        let tail_assist = (1.0 - 1.0 / a.max_norm_n1).clamp(0.05, 0.75);

        VrdModelParams {
            // Weak-cell thresholds spread above the observed minimum; the
            // ×2.4 median puts the low tail of ~150 selected rows near the
            // anchor minimum.
            median_rdt: f64::from(a.min_rdt_tras) * 2.4,
            sigma_ln: 0.55,
            weak_cells_per_row: 1.3,
            typical_assist,
            tail_assist,
            tail_probability: 0.08,
            mix_rate_range: (0.015, 0.05),
            jitter_sigma_range: (jitter_mid * 0.6, jitter_mid * 1.6),
            tail_occupancy_range: (0.003, 0.15),
            press_coeff,
            temp_coeff_mean: -0.0035,
            temp_coeff_spread: 0.002,
            pattern_spread: 0.05,
            bimodal: spec.name == "Chip1",
        }
    }

    /// Parameters convenient for fast unit tests: low thresholds, dense
    /// weak cells, strong traps.
    pub fn small_test() -> Self {
        VrdModelParams {
            median_rdt: 8_000.0,
            sigma_ln: 0.5,
            weak_cells_per_row: 2.0,
            typical_assist: 0.06,
            tail_assist: 0.4,
            tail_probability: 0.1,
            mix_rate_range: (0.005, 0.05),
            jitter_sigma_range: (0.01, 0.03),
            tail_occupancy_range: (0.02, 0.3),
            press_coeff: 0.2,
            temp_coeff_mean: -0.0035,
            temp_coeff_spread: 0.002,
            pattern_spread: 0.05,
            bimodal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_25_entries() {
        let specs = ModuleSpec::table1();
        assert_eq!(specs.len(), 25);
        assert_eq!(specs.iter().filter(|s| s.standard == DramStandard::Ddr4).count(), 21);
        assert_eq!(specs.iter().filter(|s| s.standard == DramStandard::Hbm2).count(), 4);
    }

    #[test]
    fn ddr4_chip_counts_match_table1() {
        // 160 DDR4 chips across 21 modules.
        let total: u32 = ModuleSpec::table1()
            .iter()
            .filter(|s| s.standard == DramStandard::Ddr4)
            .map(|s| s.chips)
            .sum();
        assert_eq!(total, 160);
    }

    #[test]
    fn by_name_finds_modules() {
        assert!(ModuleSpec::by_name("M1").is_some());
        assert!(ModuleSpec::by_name("Chip3").is_some());
        assert!(ModuleSpec::by_name("X9").is_none());
    }

    #[test]
    fn revision_ordinals() {
        let h2 = ModuleSpec::by_name("H2").unwrap();
        assert_eq!(h2.revision_ordinal(), 0); // rev A
        let m3 = ModuleSpec::by_name("M3").unwrap();
        assert_eq!(m3.revision_ordinal(), 17); // rev R
    }

    #[test]
    fn chip_of_bit_interleaves_bytes() {
        let m = ModuleSpec::by_name("H0").unwrap().family().chip_mapping; // 8 chips, x8
        assert_eq!(m.chip_of_bit(0), 0);
        assert_eq!(m.chip_of_bit(7), 0);
        assert_eq!(m.chip_of_bit(8), 1);
        assert_eq!(m.chip_of_bit(63), 7);
        assert_eq!(m.chip_of_bit(64), 0);
    }

    #[test]
    fn chip_of_bit_x16() {
        let m = ModuleSpec::by_name("M0").unwrap().family().chip_mapping; // 4 chips, x16
        assert_eq!(m.chip_of_bit(15), 0);
        assert_eq!(m.chip_of_bit(16), 1);
        assert_eq!(m.chip_of_bit(64), 0);
    }

    #[test]
    fn family_geometry_matches_table1() {
        use crate::family::ChipMapping;
        let m0 = ModuleSpec::by_name("M0").unwrap().family();
        assert_eq!(m0.topology.banks(), 16);
        assert_eq!(m0.topology.rows_per_bank, 128 * 1024);
        assert_eq!(m0.chip_mapping, ChipMapping::ByteInterleaved { chips: 4, chip_width: 16 });
        let chip0 = ModuleSpec::by_name("Chip0").unwrap().family();
        assert_eq!(chip0.topology.banks(), 32);
        assert_eq!(chip0.topology.rows_per_bank, 16 * 1024);
        assert!(matches!(chip0.chip_mapping, ChipMapping::PseudoChannel { .. }));
    }

    #[test]
    fn press_coeff_reflects_rowpress_strength() {
        // Chip0's min RDT collapses from 45k to 1.2k with tREFI on-time,
        // so its press exponent must exceed a mild module like H2.
        let chip0 = ModuleSpec::by_name("Chip0").unwrap().vrd_params();
        let h2 = ModuleSpec::by_name("H2").unwrap().vrd_params();
        assert!(chip0.press_coeff > 0.5);
        assert!(h2.press_coeff < 0.2);
        assert!(chip0.press_coeff > h2.press_coeff);
    }

    #[test]
    fn severity_monotone_in_density_for_same_mfr_rev() {
        // M1 (16Gb, F) vs M3 (8Gb, R): density pushes severity up, but
        // revision also matters; compare within identical revision instead.
        let h2 = ModuleSpec::by_name("H2").unwrap(); // 8Gb rev A
        let h1 = ModuleSpec::by_name("H1").unwrap(); // 16Gb rev C
        let p2 = h2.vrd_params();
        let p1 = h1.vrd_params();
        assert!(
            p1.typical_assist > p2.typical_assist,
            "16Gb rev C must have stronger VRD than 8Gb rev A"
        );
    }

    #[test]
    fn only_chip1_is_bimodal() {
        for spec in ModuleSpec::table1() {
            assert_eq!(spec.vrd_params().bimodal, spec.name == "Chip1", "{}", spec.name);
        }
    }

    #[test]
    fn tail_assist_tracks_worst_row() {
        // S0's worst row reaches 3.21x, the strongest tail in Table 7.
        let s0 = ModuleSpec::by_name("S0").unwrap().vrd_params();
        let h2 = ModuleSpec::by_name("H2").unwrap().vrd_params();
        assert!(s0.tail_assist > h2.tail_assist);
        assert!(s0.tail_assist > 0.6);
    }

    #[test]
    fn anchors_are_positive() {
        for spec in ModuleSpec::table1() {
            assert!(spec.anchor.min_rdt_tras > 0);
            assert!(spec.anchor.min_rdt_trefi > 0);
            assert!(spec.anchor.min_rdt_trefi < spec.anchor.min_rdt_tras);
            assert!(spec.anchor.median_norm_n1 >= 1.0);
            assert!(spec.anchor.max_norm_n1 >= spec.anchor.median_norm_n1);
        }
    }
}
