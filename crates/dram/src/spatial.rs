//! Spatial variation of read-disturbance vulnerability.
//!
//! The paper's row-selection methodology (§5: scan the *first, middle,
//! and last* 1,024 rows of a bank) exists because RDT varies spatially
//! across a bank in an unpredictable way (the paper's reference \[134\],
//! "Spatial Variation-Aware Read Disturbance Defenses"). Two spatial
//! structures dominate: DRAM banks are tiled into *subarrays* of a few
//! hundred rows, and rows near a subarray boundary sit next to the
//! sense-amplifier stripe, giving them systematically different (usually
//! lower) disturbance thresholds, on top of random row-to-row variation.
//!
//! [`SpatialProfile`] captures both: a per-subarray lognormal factor and
//! a deterministic edge-row weakening. The device model multiplies weak
//! cells' base thresholds by [`SpatialProfile::factor`].

use serde::{Deserialize, Serialize};

/// Spatial threshold structure of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialProfile {
    /// Rows per subarray tile.
    pub subarray_rows: u32,
    /// Threshold multiplier for rows adjacent to the subarray edge
    /// (typically < 1: edge rows are weaker).
    pub edge_factor: f64,
    /// How many rows at each subarray boundary count as "edge".
    pub edge_rows: u32,
    /// Sigma (ln units) of the per-subarray random factor.
    pub subarray_sigma: f64,
}

impl SpatialProfile {
    /// A typical DDR4 layout: 512-row subarrays whose two boundary rows
    /// are ~12% weaker, with ±5% subarray-to-subarray variation.
    pub fn ddr4_default() -> Self {
        SpatialProfile { subarray_rows: 512, edge_factor: 0.88, edge_rows: 2, subarray_sigma: 0.05 }
    }

    /// A flat profile (no spatial structure).
    pub fn flat() -> Self {
        SpatialProfile {
            subarray_rows: u32::MAX,
            edge_factor: 1.0,
            edge_rows: 0,
            subarray_sigma: 0.0,
        }
    }

    /// A wide spatial spread: the order-of-magnitude row-to-row
    /// disturbance-threshold variation that spatial-variation studies
    /// report across a bank (the paper's reference \[134\]), versus the
    /// mild ±5% of [`ddr4_default`](Self::ddr4_default). Used by the
    /// spatial-aware-defense evaluation, where the gap between the
    /// weakest and strongest subarrays is what a profile-driven
    /// mitigation exploits.
    pub fn wide() -> Self {
        SpatialProfile { subarray_rows: 512, edge_factor: 0.5, edge_rows: 2, subarray_sigma: 0.45 }
    }

    /// The smallest spatial factor over a physical-row range — the
    /// worst case a defense covering those rows must be configured for.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn min_factor_in(&self, rows: std::ops::Range<u32>, device_seed: u64) -> f64 {
        assert!(!rows.is_empty(), "need at least one row");
        rows.map(|r| self.factor(r, device_seed)).fold(f64::INFINITY, f64::min)
    }

    /// The physical row with the smallest spatial factor in a range,
    /// with its factor — the most vulnerable row a spatial-aware
    /// attacker would target in that region. Ties resolve to the lowest
    /// row.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn min_factor_row_in(&self, rows: std::ops::Range<u32>, device_seed: u64) -> (u32, f64) {
        assert!(!rows.is_empty(), "need at least one row");
        let mut best = (rows.start, f64::INFINITY);
        for row in rows {
            let f = self.factor(row, device_seed);
            if f < best.1 {
                best = (row, f);
            }
        }
        best
    }

    /// The subarray index of a physical row.
    pub fn subarray_of(&self, physical_row: u32) -> u32 {
        physical_row / self.subarray_rows.max(1)
    }

    /// Whether a physical row sits at a subarray edge.
    pub fn is_edge_row(&self, physical_row: u32) -> bool {
        if self.edge_rows == 0 || self.subarray_rows == u32::MAX {
            return false;
        }
        let offset = physical_row % self.subarray_rows;
        offset < self.edge_rows || offset >= self.subarray_rows - self.edge_rows
    }

    /// Deterministic spatial threshold factor for a physical row, given
    /// the device seed: subarray lognormal × edge weakening.
    pub fn factor(&self, physical_row: u32, device_seed: u64) -> f64 {
        let mut f = 1.0;
        if self.is_edge_row(physical_row) {
            f *= self.edge_factor;
        }
        if self.subarray_sigma > 0.0 && self.subarray_rows != u32::MAX {
            // Hash the subarray index into a unit normal via a SplitMix
            // finalizer + Box–Muller on the derived uniforms.
            let sub = u64::from(self.subarray_of(physical_row));
            let mut z = device_seed ^ sub.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x50A7_1A11;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let u1 = ((z >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-12, 1.0);
            let u2 = ((z.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64)
                .clamp(0.0, 1.0);
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            f *= (self.subarray_sigma * n).exp();
        }
        f
    }
}

impl Default for SpatialProfile {
    fn default() -> Self {
        SpatialProfile::ddr4_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_rows_detected() {
        let p = SpatialProfile::ddr4_default();
        assert!(p.is_edge_row(0));
        assert!(p.is_edge_row(1));
        assert!(!p.is_edge_row(2));
        assert!(!p.is_edge_row(509));
        assert!(p.is_edge_row(510));
        assert!(p.is_edge_row(511));
        assert!(p.is_edge_row(512));
    }

    #[test]
    fn flat_profile_is_identity() {
        let p = SpatialProfile::flat();
        for row in [0u32, 1, 511, 512, 100_000] {
            assert_eq!(p.factor(row, 42), 1.0);
            assert!(!p.is_edge_row(row));
        }
    }

    #[test]
    fn edge_rows_are_weaker() {
        let p = SpatialProfile::ddr4_default();
        let edge = p.factor(512, 7);
        let inner = p.factor(512 + 100, 7);
        // Same subarray factor; the edge row additionally weakened.
        assert!((edge / inner - p.edge_factor).abs() < 1e-12);
    }

    #[test]
    fn subarray_factor_is_deterministic_and_varies() {
        let p = SpatialProfile::ddr4_default();
        assert_eq!(p.factor(100, 3), p.factor(100, 3));
        // Rows in the same subarray share the factor.
        assert_eq!(p.factor(100, 3), p.factor(200, 3));
        // Across many subarrays the factors differ.
        let distinct: std::collections::BTreeSet<u64> =
            (0..50u32).map(|s| p.factor(s * 512 + 100, 3).to_bits()).collect();
        assert!(distinct.len() > 30, "subarray factors must vary");
    }

    #[test]
    fn subarray_factor_centered_near_one() {
        let p = SpatialProfile::ddr4_default();
        let mean: f64 = (0..400u32).map(|s| p.factor(s * 512 + 100, 11)).sum::<f64>() / 400.0;
        assert!((mean - 1.0).abs() < 0.05, "mean subarray factor {mean}");
    }

    #[test]
    fn different_seeds_reshuffle_subarrays() {
        let p = SpatialProfile::ddr4_default();
        let a: Vec<u64> = (0..20u32).map(|s| p.factor(s * 512 + 9, 1).to_bits()).collect();
        let b: Vec<u64> = (0..20u32).map(|s| p.factor(s * 512 + 9, 2).to_bits()).collect();
        assert_ne!(a, b);
    }
}
