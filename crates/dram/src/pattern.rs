//! The four data patterns of the paper's Table 2.
//!
//! | Rows             | Rowstripe0 | Rowstripe1 | Checkered0 | Checkered1 |
//! |------------------|-----------|-----------|-----------|-----------|
//! | Victim (V)       | 0x00      | 0xFF      | 0x55      | 0xAA      |
//! | Aggressors (V±1) | 0xFF      | 0x00      | 0xAA      | 0x55      |
//! | V ± [2..8]       | 0x00      | 0xFF      | 0x55      | 0xAA      |
//!
//! Every byte of a given row is filled with the same value, so a row's
//! content under these patterns is fully described by one byte.

use serde::{Deserialize, Serialize};

/// One of the four standard memory-test data patterns (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataPattern {
    /// Victim all-zeros, aggressors all-ones.
    Rowstripe0,
    /// Victim all-ones, aggressors all-zeros.
    Rowstripe1,
    /// Victim `0x55`, aggressors `0xAA`.
    Checkered0,
    /// Victim `0xAA`, aggressors `0x55`.
    Checkered1,
}

impl DataPattern {
    /// All four patterns, in Table-2 order.
    pub const ALL: [DataPattern; 4] = [
        DataPattern::Rowstripe0,
        DataPattern::Rowstripe1,
        DataPattern::Checkered0,
        DataPattern::Checkered1,
    ];

    /// The byte written to every byte of the victim row.
    #[inline]
    pub fn victim_byte(self) -> u8 {
        match self {
            DataPattern::Rowstripe0 => 0x00,
            DataPattern::Rowstripe1 => 0xFF,
            DataPattern::Checkered0 => 0x55,
            DataPattern::Checkered1 => 0xAA,
        }
    }

    /// The byte written to the two aggressor rows (V ± 1).
    pub fn aggressor_byte(self) -> u8 {
        !self.victim_byte()
    }

    /// The byte written to the surrounding rows (V ± \[2..8\]).
    pub fn outer_byte(self) -> u8 {
        self.victim_byte()
    }

    /// Dense index in `0..4`, for parameter tables indexed by pattern.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            DataPattern::Rowstripe0 => 0,
            DataPattern::Rowstripe1 => 1,
            DataPattern::Checkered0 => 2,
            DataPattern::Checkered1 => 3,
        }
    }

    /// Value of bit `bit` (0 = LSB of byte 0) in a row filled with this
    /// pattern's victim byte.
    pub fn victim_bit(self, bit: usize) -> bool {
        (self.victim_byte() >> (bit % 8)) & 1 == 1
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DataPattern::Rowstripe0 => "Rowstripe0",
            DataPattern::Rowstripe1 => "Rowstripe1",
            DataPattern::Checkered0 => "Checkered0",
            DataPattern::Checkered1 => "Checkered1",
        }
    }
}

impl std::fmt::Display for DataPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bytes() {
        assert_eq!(DataPattern::Rowstripe0.victim_byte(), 0x00);
        assert_eq!(DataPattern::Rowstripe0.aggressor_byte(), 0xFF);
        assert_eq!(DataPattern::Rowstripe1.victim_byte(), 0xFF);
        assert_eq!(DataPattern::Rowstripe1.aggressor_byte(), 0x00);
        assert_eq!(DataPattern::Checkered0.victim_byte(), 0x55);
        assert_eq!(DataPattern::Checkered0.aggressor_byte(), 0xAA);
        assert_eq!(DataPattern::Checkered1.victim_byte(), 0xAA);
        assert_eq!(DataPattern::Checkered1.aggressor_byte(), 0x55);
    }

    #[test]
    fn outer_matches_victim() {
        for p in DataPattern::ALL {
            assert_eq!(p.outer_byte(), p.victim_byte());
        }
    }

    #[test]
    fn aggressor_is_complement() {
        for p in DataPattern::ALL {
            assert_eq!(p.victim_byte() ^ p.aggressor_byte(), 0xFF);
        }
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 4];
        for p in DataPattern::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn victim_bit_checkered() {
        // 0x55 = 0b01010101: even bit positions are 1.
        assert!(DataPattern::Checkered0.victim_bit(0));
        assert!(!DataPattern::Checkered0.victim_bit(1));
        assert!(DataPattern::Checkered0.victim_bit(10));
        assert!(!DataPattern::Checkered0.victim_bit(11));
    }

    #[test]
    fn display_names() {
        assert_eq!(DataPattern::Checkered0.to_string(), "Checkered0");
    }
}
