//! A textual assembly format for DRAM test programs.
//!
//! DRAM Bender exposes an instruction set that test authors program
//! directly; this module provides the software analogue: a small
//! assembler from a readable text format to [`Program`], so test
//! routines can be written, stored, and replayed as files.
//!
//! # Syntax
//!
//! One instruction per line; `#` starts a comment. Instructions:
//!
//! ```text
//! ACT <bank> <row>        # activate
//! PRE <bank>              # precharge
//! WR  <bank> <fill-byte>  # write burst (fill in decimal or 0xHH)
//! RD  <bank>              # read burst
//! REF                     # refresh
//! WAIT <ns>               # idle (fractional ns allowed)
//! LOOP <count>            # repeat the block until ENDLOOP
//! ENDLOOP
//! ```
//!
//! # Examples
//!
//! ```
//! let program = vrd_bender::asm::assemble(
//!     "ACT 0 100\n\
//!      LOOP 128\n\
//!        WR 0 0x55\n\
//!      ENDLOOP\n\
//!      PRE 0\n",
//! ).unwrap();
//! assert_eq!(program.instrs().len(), 3);
//! ```

use std::error::Error;
use std::fmt;

use crate::command::DramCommand;
use crate::program::{Instr, Program};

/// Error produced by the assembler, with the offending 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

fn parse_u32(token: &str, line: usize, what: &str) -> Result<u32, AsmError> {
    let parsed = if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        token.parse()
    };
    parsed.map_err(|_| err(line, format!("invalid {what} {token:?}")))
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for unknown
/// mnemonics, malformed operands, and unbalanced `LOOP`/`ENDLOOP`.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Stack of (loop count, body) for nested loops; the bottom entry is
    // the top-level program body.
    let mut stack: Vec<(u32, Vec<Instr>)> = vec![(1, Vec::new())];
    let mut loop_open_lines: Vec<usize> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut tokens = text.split_whitespace();
        let mnemonic = tokens.next().expect("non-empty line").to_ascii_uppercase();
        let mut operand = |what: &str| -> Result<&str, AsmError> {
            tokens.next().ok_or_else(|| err(line, format!("{mnemonic} needs {what}")))
        };
        let instr = match mnemonic.as_str() {
            "ACT" => {
                let bank = parse_u32(operand("a bank")?, line, "bank")? as usize;
                let row = parse_u32(operand("a row")?, line, "row")?;
                Some(Instr::Cmd(DramCommand::Act { bank, row }))
            }
            "PRE" => {
                let bank = parse_u32(operand("a bank")?, line, "bank")? as usize;
                Some(Instr::Cmd(DramCommand::Pre { bank }))
            }
            "WR" => {
                let bank = parse_u32(operand("a bank")?, line, "bank")? as usize;
                let fill = parse_u32(operand("a fill byte")?, line, "fill byte")?;
                if fill > 0xFF {
                    return Err(err(line, format!("fill byte {fill:#x} exceeds 0xFF")));
                }
                Some(Instr::Cmd(DramCommand::Wr { bank, fill: fill as u8 }))
            }
            "RD" => {
                let bank = parse_u32(operand("a bank")?, line, "bank")? as usize;
                Some(Instr::Cmd(DramCommand::Rd { bank }))
            }
            "REF" => Some(Instr::Cmd(DramCommand::Ref)),
            "WAIT" => {
                let token = operand("a duration in ns")?;
                let ns: f64 =
                    token.parse().map_err(|_| err(line, format!("invalid duration {token:?}")))?;
                if ns.is_nan() || ns < 0.0 {
                    return Err(err(line, "duration must be non-negative"));
                }
                Some(Instr::WaitNs(ns))
            }
            "LOOP" => {
                let count = parse_u32(operand("a count")?, line, "count")?;
                stack.push((count, Vec::new()));
                loop_open_lines.push(line);
                None
            }
            "ENDLOOP" => {
                if stack.len() == 1 {
                    return Err(err(line, "ENDLOOP without LOOP"));
                }
                let (count, body) = stack.pop().expect("len > 1");
                loop_open_lines.pop();
                stack
                    .last_mut()
                    .expect("bottom frame exists")
                    .1
                    .push(Instr::Repeat { count, body });
                None
            }
            other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
        };
        if let Some(instr) = instr {
            stack.last_mut().expect("bottom frame exists").1.push(instr);
        }
        // Extra operands are an error (catches typos early).
        if let Some(extra) = tokens.next() {
            return Err(err(line, format!("unexpected operand {extra:?}")));
        }
    }
    if stack.len() != 1 {
        let open = loop_open_lines.last().copied().unwrap_or(0);
        return Err(err(open, "LOOP without ENDLOOP"));
    }
    let (_, body) = stack.pop().expect("bottom frame");
    let mut program = Program::new();
    for instr in body {
        match instr {
            Instr::Cmd(cmd) => {
                program.cmd(cmd);
            }
            Instr::WaitNs(ns) => {
                program.wait_ns(ns);
            }
            Instr::Repeat { count, body } => {
                program.repeat(count, body);
            }
        }
    }
    Ok(program)
}

/// Disassembles a [`Program`] back into the textual format (round-trips
/// with [`assemble`]).
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    fn emit(instrs: &[Instr], depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        for instr in instrs {
            match instr {
                Instr::Cmd(DramCommand::Act { bank, row }) => {
                    out.push_str(&format!("{pad}ACT {bank} {row}\n"));
                }
                Instr::Cmd(DramCommand::Pre { bank }) => {
                    out.push_str(&format!("{pad}PRE {bank}\n"));
                }
                Instr::Cmd(DramCommand::Wr { bank, fill }) => {
                    out.push_str(&format!("{pad}WR {bank} 0x{fill:02X}\n"));
                }
                Instr::Cmd(DramCommand::Rd { bank }) => {
                    out.push_str(&format!("{pad}RD {bank}\n"));
                }
                Instr::Cmd(DramCommand::Ref) => out.push_str(&format!("{pad}REF\n")),
                Instr::WaitNs(ns) => out.push_str(&format!("{pad}WAIT {ns}\n")),
                Instr::Repeat { count, body } => {
                    out.push_str(&format!("{pad}LOOP {count}\n"));
                    emit(body, depth + 1, out);
                    out.push_str(&format!("{pad}ENDLOOP\n"));
                }
            }
        }
    }
    emit(program.instrs(), 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_program() {
        let p = assemble("ACT 0 5\nWR 0 0xAA\nPRE 0\nREF\nWAIT 7.5\n").unwrap();
        assert_eq!(p.instrs().len(), 5);
        assert_eq!(p.instrs()[1], Instr::Cmd(DramCommand::Wr { bank: 0, fill: 0xAA }));
        assert_eq!(p.instrs()[4], Instr::WaitNs(7.5));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# setup\n\nACT 1 2  # open row\n").unwrap();
        assert_eq!(p.instrs().len(), 1);
    }

    #[test]
    fn loops_nest() {
        let p = assemble("LOOP 10\n  ACT 0 1\n  LOOP 3\n    WR 0 0\n  ENDLOOP\n  PRE 0\nENDLOOP\n")
            .unwrap();
        assert_eq!(p.instrs().len(), 1);
        match &p.instrs()[0] {
            Instr::Repeat { count: 10, body } => {
                assert_eq!(body.len(), 3);
                assert!(matches!(body[1], Instr::Repeat { count: 3, .. }));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn hammer_loop_round_trips_and_executes() {
        let src =
            "LOOP 1000\n  ACT 0 99\n  WAIT 35\n  PRE 0\n  ACT 0 101\n  WAIT 35\n  PRE 0\nENDLOOP\n";
        let p = assemble(src).unwrap();
        assert_eq!(assemble(&disassemble(&p)).unwrap(), p);

        let mut dev = vrd_dram::DramDevice::new(vrd_dram::device::DeviceConfig::small_test(), 1);
        let stats = crate::program::execute(&mut dev, &crate::timing::TimingParams::ddr4(), &p)
            .expect("valid program");
        assert_eq!(stats.activations, 2000);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble("ACT 0 1\nBOGUS\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("BOGUS"));
    }

    #[test]
    fn missing_operands_error() {
        assert!(assemble("ACT 0\n").is_err());
        assert!(assemble("WR 0\n").is_err());
        assert!(assemble("WAIT\n").is_err());
    }

    #[test]
    fn extra_operands_error() {
        let e = assemble("PRE 0 1\n").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn fill_byte_range_checked() {
        assert!(assemble("WR 0 0x100\n").is_err());
        assert!(assemble("WR 0 255\n").is_ok());
    }

    #[test]
    fn unbalanced_loops_error() {
        assert!(assemble("LOOP 5\nACT 0 1\n").is_err());
        let e = assemble("ENDLOOP\n").unwrap_err();
        assert!(e.message.contains("without LOOP"));
    }

    #[test]
    fn hex_and_decimal_operands() {
        let p = assemble("ACT 0x1 0x10\n").unwrap();
        assert_eq!(p.instrs()[0], Instr::Cmd(DramCommand::Act { bank: 1, row: 16 }));
    }

    #[test]
    fn disassemble_of_builder_program() {
        let p = Program::double_sided_hammer(0, 9, 11, 50, 35.0);
        let text = disassemble(&p);
        assert!(text.contains("LOOP 50"));
        assert_eq!(assemble(&text).unwrap(), p);
    }
}
