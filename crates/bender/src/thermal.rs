//! Heater-pad + PID temperature controller (paper §3).
//!
//! The paper presses heater pads against the DRAM chips and regulates them
//! with a MaxWell FT200 PID controller to ±0.5 °C. [`ThermalController`]
//! reproduces that loop: a first-order thermal plant (chip + pad thermal
//! mass cooling toward ambient) driven by a PID-controlled heater.

use serde::{Deserialize, Serialize};

/// PID-regulated thermal rig with a first-order plant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalController {
    /// Current chip temperature (°C).
    temperature_c: f64,
    /// Regulation target (°C).
    target_c: f64,
    /// Ambient temperature (°C).
    ambient_c: f64,
    /// Plant time constant (s).
    tau_s: f64,
    /// Maximum heater temperature rise at full power (°C).
    heater_gain_c: f64,
    // PID state
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    prev_error: f64,
}

impl ThermalController {
    /// Guaranteed regulation precision once settled (°C), matching the
    /// paper's FT200 setup.
    pub const PRECISION_C: f64 = 0.5;

    /// Creates a controller at ambient temperature with the given target.
    pub fn new(ambient_c: f64, target_c: f64) -> Self {
        ThermalController {
            temperature_c: ambient_c,
            target_c,
            ambient_c,
            tau_s: 20.0,
            heater_gain_c: 120.0,
            kp: 0.02,
            ki: 0.002,
            kd: 0.05,
            integral: 0.0,
            prev_error: target_c - ambient_c,
        }
    }

    /// Current chip temperature (°C).
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Regulation target (°C).
    pub fn target_c(&self) -> f64 {
        self.target_c
    }

    /// Changes the regulation target.
    pub fn set_target_c(&mut self, target_c: f64) {
        self.target_c = target_c;
    }

    /// Advances the loop by `dt_s` seconds (one control step).
    ///
    /// The controller combines a feedforward term (the duty cycle whose
    /// plant equilibrium is the target) with a PID correction and
    /// conditional anti-windup, the structure used by bench-top PID
    /// temperature controllers like the FT200.
    pub fn step(&mut self, dt_s: f64) {
        assert!(dt_s > 0.0, "time step must be positive");
        let error = self.target_c - self.temperature_c;
        let derivative = (error - self.prev_error) / dt_s;
        self.prev_error = error;
        let feedforward = ((self.target_c - self.ambient_c) / self.heater_gain_c).clamp(0.0, 1.0);
        let raw = feedforward + self.kp * error + self.ki * self.integral + self.kd * derivative;
        let duty = raw.clamp(0.0, 1.0);
        // Conditional anti-windup: only integrate while the actuator is
        // not saturated against the error direction.
        let saturated = (raw > 1.0 && error > 0.0) || (raw < 0.0 && error < 0.0);
        if !saturated {
            self.integral = (self.integral + error * dt_s).clamp(-20.0, 20.0);
        }
        // First-order plant: cooling toward ambient, heating toward
        // ambient + heater_gain × duty.
        let equilibrium = self.ambient_c + self.heater_gain_c * duty;
        let alpha = 1.0 - (-dt_s / self.tau_s).exp();
        self.temperature_c += alpha * (equilibrium - self.temperature_c);
    }

    /// Steps the loop until the temperature settles within
    /// [`PRECISION_C`](Self::PRECISION_C) of the target (or a step budget
    /// is exhausted). Returns the simulated settling time in seconds.
    pub fn settle(&mut self) -> f64 {
        let dt = 0.5;
        let mut elapsed = 0.0;
        let mut in_band = 0u32;
        for _ in 0..100_000 {
            self.step(dt);
            elapsed += dt;
            if (self.temperature_c - self.target_c).abs() <= Self::PRECISION_C {
                in_band += 1;
                if in_band >= 20 {
                    return elapsed;
                }
            } else {
                in_band = 0;
            }
        }
        elapsed
    }

    /// Whether the temperature is currently within the guaranteed band.
    pub fn is_settled(&self) -> bool {
        (self.temperature_c - self.target_c).abs() <= Self::PRECISION_C
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settles_to_target() {
        for target in [50.0, 65.0, 80.0] {
            let mut ctl = ThermalController::new(25.0, target);
            ctl.settle();
            assert!(ctl.is_settled(), "failed to settle to {target}: at {}", ctl.temperature_c());
        }
    }

    #[test]
    fn holds_band_after_settling() {
        let mut ctl = ThermalController::new(25.0, 80.0);
        ctl.settle();
        for _ in 0..1000 {
            ctl.step(0.5);
            assert!(ctl.is_settled(), "left the ±0.5 °C band at {}", ctl.temperature_c());
        }
    }

    #[test]
    fn retarget_resettles() {
        let mut ctl = ThermalController::new(25.0, 50.0);
        ctl.settle();
        ctl.set_target_c(80.0);
        assert!(!ctl.is_settled());
        ctl.settle();
        assert!(ctl.is_settled());
        assert!((ctl.temperature_c() - 80.0).abs() <= 0.5);
    }

    #[test]
    fn cooling_works_downward() {
        let mut ctl = ThermalController::new(25.0, 80.0);
        ctl.settle();
        ctl.set_target_c(50.0);
        let t = ctl.settle();
        assert!(ctl.is_settled());
        assert!(t > 0.0);
    }

    #[test]
    fn settling_time_is_reported() {
        let mut ctl = ThermalController::new(25.0, 65.0);
        let t = ctl.settle();
        assert!(t > 1.0, "settling takes nonzero time, got {t}");
        assert!(t < 3600.0, "settling must finish within an hour, got {t}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        ThermalController::new(25.0, 50.0).step(0.0);
    }
}
