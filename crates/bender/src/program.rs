//! Test programs: command sequences with waits and hardware repeat loops,
//! and their timed executor.
//!
//! DRAM Bender exposes an instruction set with loop support so hammering
//! loops run at line rate on the FPGA. [`Program`] mirrors that: a list of
//! [`Instr`] (commands, waits, repeats). The executor charges JEDEC
//! timings per command and recognizes pure ACT/PRE hammer loops, applying
//! them through the device's bulk-activation fast path so paper-scale
//! campaigns (10⁵ measurements × 10³–10⁵ hammers each) remain tractable.

use serde::{Deserialize, Serialize};

use vrd_dram::{DramDevice, DramError};

use crate::command::DramCommand;
use crate::timing::TimingParams;

/// One test-program instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Issue a DRAM command.
    Cmd(DramCommand),
    /// Idle for the given number of nanoseconds.
    WaitNs(f64),
    /// Repeat a body `count` times (hardware loop).
    Repeat {
        /// Loop trip count.
        count: u32,
        /// Loop body.
        body: Vec<Instr>,
    },
}

/// A DRAM test program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a command.
    pub fn cmd(&mut self, cmd: DramCommand) -> &mut Self {
        self.instrs.push(Instr::Cmd(cmd));
        self
    }

    /// Appends an idle wait.
    pub fn wait_ns(&mut self, ns: f64) -> &mut Self {
        self.instrs.push(Instr::WaitNs(ns));
        self
    }

    /// Appends a repeat loop.
    pub fn repeat(&mut self, count: u32, body: Vec<Instr>) -> &mut Self {
        self.instrs.push(Instr::Repeat { count, body });
        self
    }

    /// The instruction list.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Builds the canonical double-sided hammer loop: `count` iterations
    /// of ACT/wait/PRE on each of the two aggressors, holding each open
    /// `t_on_ns` (a wait beyond `t_RAS` turns RowHammer into RowPress).
    pub fn double_sided_hammer(
        bank: usize,
        aggr1: u32,
        aggr2: u32,
        count: u32,
        t_on_ns: f64,
    ) -> Self {
        let mut p = Program::new();
        p.repeat(
            count,
            vec![
                Instr::Cmd(DramCommand::Act { bank, row: aggr1 }),
                Instr::WaitNs(t_on_ns),
                Instr::Cmd(DramCommand::Pre { bank }),
                Instr::Cmd(DramCommand::Act { bank, row: aggr2 }),
                Instr::WaitNs(t_on_ns),
                Instr::Cmd(DramCommand::Pre { bank }),
            ],
        );
        p
    }

    /// Builds a row-initialization sequence: ACT, 128 write bursts, PRE.
    pub fn init_row(bank: usize, row: u32, fill: u8, bursts: u32) -> Self {
        let mut p = Program::new();
        p.cmd(DramCommand::Act { bank, row });
        p.repeat(bursts, vec![Instr::Cmd(DramCommand::Wr { bank, fill })]);
        p.cmd(DramCommand::Pre { bank });
        p
    }
}

/// Cache key for a memoizable test program. Hammer programs embed the
/// on-time as raw bits so the key stays `Eq + Hash` (`f64` is not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramKey {
    /// A [`Program::double_sided_hammer`] build.
    Hammer {
        /// Bank index.
        bank: usize,
        /// First aggressor row.
        aggr1: u32,
        /// Second aggressor row.
        aggr2: u32,
        /// Hammer count per aggressor.
        count: u32,
        /// `t_AggOn` in nanoseconds, as `f64::to_bits`.
        t_on_bits: u64,
    },
    /// A [`Program::init_row`] build.
    Init {
        /// Bank index.
        bank: usize,
        /// Row to initialize.
        row: u32,
        /// Fill byte.
        fill: u8,
        /// Write bursts to fill the row.
        bursts: u32,
    },
}

impl ProgramKey {
    /// Builds the program this key describes.
    pub fn build(&self) -> Program {
        match *self {
            ProgramKey::Hammer { bank, aggr1, aggr2, count, t_on_bits } => {
                Program::double_sided_hammer(bank, aggr1, aggr2, count, f64::from_bits(t_on_bits))
            }
            ProgramKey::Init { bank, row, fill, bursts } => {
                Program::init_row(bank, row, fill, bursts)
            }
        }
    }
}

/// Memoizes built command programs per [`ProgramKey`].
///
/// An RDT campaign re-issues the same few hundred programs (one init per
/// row fill, one hammer per grid point) tens of thousands of times;
/// caching skips re-building the instruction vectors. Entries are shared
/// [`std::sync::Arc`]s, so a cached program can be executed while the
/// cache itself stays borrowed mutably elsewhere.
#[derive(Debug, Default)]
pub struct ProgramCache {
    map: vrd_dram::hashing::FxHashMap<ProgramKey, std::sync::Arc<Program>>,
    hits: u64,
    builds: u64,
    /// Bumped on every wholesale clear; lets callers that memoize "this
    /// key is cached" invalidate their note when the cache resets.
    generation: u64,
}

/// A campaign's working set is a few hundred programs; past this the
/// cache is dropped wholesale (simpler than LRU, and refilling costs one
/// build per key).
const PROGRAM_CACHE_CAP: usize = 1024;

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// The cached program for `key`, building and inserting it on miss.
    pub fn get_or_build(&mut self, key: ProgramKey) -> std::sync::Arc<Program> {
        if let Some(p) = self.map.get(&key) {
            self.hits += 1;
            return std::sync::Arc::clone(p);
        }
        if self.map.len() >= PROGRAM_CACHE_CAP {
            self.map.clear();
            self.generation += 1;
        }
        self.builds += 1;
        let p = std::sync::Arc::new(key.build());
        self.map.insert(key, std::sync::Arc::clone(&p));
        p
    }

    /// Records a fetch of `key` without handing out the program: the
    /// hit/build counters and the cache contents advance exactly as
    /// [`get_or_build`](Self::get_or_build) would advance them. For
    /// callers that replay cache traffic but execute nothing.
    pub fn touch(&mut self, key: ProgramKey) {
        if self.map.contains_key(&key) {
            self.hits += 1;
            return;
        }
        if self.map.len() >= PROGRAM_CACHE_CAP {
            self.map.clear();
            self.generation += 1;
        }
        self.builds += 1;
        self.map.insert(key, std::sync::Arc::new(key.build()));
    }

    /// Records `n` fetches of keys the caller has proven cached (see
    /// [`generation`](Self::generation)).
    pub(crate) fn note_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// The current clear generation; unchanged means every key fetched
    /// since the last observation is still cached.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `(hits, builds)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.builds)
    }
}

/// Outcome of executing a [`Program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Simulated elapsed time in nanoseconds.
    pub elapsed_ns: f64,
    /// Number of ACT commands issued (including unrolled loops).
    pub activations: u64,
    /// Number of column bursts issued (reads + writes).
    pub column_bursts: u64,
    /// Number of refresh commands issued.
    pub refreshes: u64,
}

impl ExecStats {
    fn add(&mut self, other: &ExecStats) {
        self.elapsed_ns += other.elapsed_ns;
        self.activations += other.activations;
        self.column_bursts += other.column_bursts;
        self.refreshes += other.refreshes;
    }

    /// Multiplies all statistics by `count` (loop projection).
    pub fn scaled(&self, count: u32) -> ExecStats {
        ExecStats {
            elapsed_ns: self.elapsed_ns * f64::from(count),
            activations: self.activations * u64::from(count),
            column_bursts: self.column_bursts * u64::from(count),
            refreshes: self.refreshes * u64::from(count),
        }
    }
}

/// Executes `program` against `device` with `timing`, returning timing and
/// command statistics.
///
/// Pure ACT/wait/PRE repeat loops (hammer loops) execute through the
/// device's bulk-activation fast path; all other instructions execute one
/// by one.
///
/// # Errors
///
/// Propagates device command errors (bad addresses, activate without
/// precharge).
pub fn execute(
    device: &mut DramDevice,
    timing: &TimingParams,
    program: &Program,
) -> Result<ExecStats, DramError> {
    let mut stats = ExecStats::default();
    exec_instrs(device, timing, program.instrs(), &mut stats)?;
    Ok(stats)
}

fn exec_instrs(
    device: &mut DramDevice,
    timing: &TimingParams,
    instrs: &[Instr],
    stats: &mut ExecStats,
) -> Result<(), DramError> {
    for instr in instrs {
        match instr {
            Instr::Cmd(cmd) => exec_cmd(device, timing, *cmd, stats)?,
            Instr::WaitNs(ns) => stats.elapsed_ns += ns,
            Instr::Repeat { count, body } => {
                if *count == 0 {
                    continue;
                }
                if let Some(loop_stats) = try_hammer_fast_path(device, timing, *count, body)? {
                    stats.add(&loop_stats);
                } else if let Some(burst) = try_burst_fast_path(body) {
                    // Pure column-burst loop on the open row: one device
                    // write/read carries the data; remaining bursts only
                    // cost time.
                    exec_cmd(device, timing, burst, stats)?;
                    let per = burst_time(timing, &burst);
                    stats.elapsed_ns += per * f64::from(count - 1);
                    stats.column_bursts += u64::from(count - 1);
                } else {
                    let mut once = ExecStats::default();
                    exec_instrs(device, timing, body, &mut once)?;
                    // Re-execute remaining iterations (stateful); loops
                    // that matter for performance hit the fast paths.
                    stats.add(&once);
                    for _ in 1..*count {
                        let mut iter = ExecStats::default();
                        exec_instrs(device, timing, body, &mut iter)?;
                        stats.add(&iter);
                    }
                }
            }
        }
    }
    Ok(())
}

fn burst_time(timing: &TimingParams, cmd: &DramCommand) -> f64 {
    match cmd {
        DramCommand::Wr { .. } => timing.t_ccd_l_wr,
        DramCommand::Rd { .. } => timing.t_ccd_l,
        _ => 0.0,
    }
}

fn exec_cmd(
    device: &mut DramDevice,
    timing: &TimingParams,
    cmd: DramCommand,
    stats: &mut ExecStats,
) -> Result<(), DramError> {
    match cmd {
        DramCommand::Act { bank, row } => {
            device.activate(bank, row)?;
            stats.elapsed_ns += timing.t_rcd;
            stats.activations += 1;
        }
        DramCommand::Pre { bank } => {
            device.precharge(bank)?;
            stats.elapsed_ns += timing.t_rp;
        }
        DramCommand::Wr { bank, fill } => {
            // A burst covers 64 bytes; the init routines repeat bursts to
            // fill the row — the model's fill write is row-wide, so the
            // burst repetition only affects timing.
            let row = open_row(device, bank)?;
            device.write_open_row(bank, row, fill)?;
            stats.elapsed_ns += timing.t_ccd_l_wr;
            stats.column_bursts += 1;
        }
        DramCommand::Rd { bank } => {
            let row = open_row(device, bank)?;
            let _ = device.read_open_row(bank, row)?;
            stats.elapsed_ns += timing.t_ccd_l;
            stats.column_bursts += 1;
        }
        DramCommand::Ref => {
            device.refresh();
            stats.elapsed_ns += timing.t_rfc;
            stats.refreshes += 1;
        }
    }
    Ok(())
}

fn open_row(device: &DramDevice, bank: usize) -> Result<u32, DramError> {
    if bank >= device.config().banks() as usize {
        return Err(DramError::BankOutOfRange { bank, banks: device.config().banks() as usize });
    }
    device.open_row(bank).ok_or(DramError::RowNotOpen { bank, row: u32::MAX })
}

/// Recognizes the canonical hammer loop
/// `[ACT a1, wait t, PRE, ACT a2, wait t, PRE]` (or the single-sided
/// 3-instruction variant) and applies it via bulk activation.
fn try_hammer_fast_path(
    device: &mut DramDevice,
    timing: &TimingParams,
    count: u32,
    body: &[Instr],
) -> Result<Option<ExecStats>, DramError> {
    let parse_side = |chunk: &[Instr]| -> Option<(usize, u32, f64)> {
        match chunk {
            [Instr::Cmd(DramCommand::Act { bank, row }), Instr::WaitNs(t), Instr::Cmd(DramCommand::Pre { bank: pb })]
                if pb == bank =>
            {
                Some((*bank, *row, *t))
            }
            _ => None,
        }
    };
    let sides: Option<Vec<(usize, u32, f64)>> = match body.len() {
        3 => parse_side(body).map(|s| vec![s]),
        6 => match (parse_side(&body[..3]), parse_side(&body[3..])) {
            (Some(a), Some(b)) if a.0 == b.0 => Some(vec![a, b]),
            _ => None,
        },
        _ => None,
    };
    let Some(sides) = sides else {
        return Ok(None);
    };
    let mut stats = ExecStats::default();
    for &(bank, row, t_on) in &sides {
        device.precharge(bank)?;
        device.activate_n(bank, row, count, t_on.max(timing.t_ras))?;
        device.precharge(bank)?;
        stats.activations += u64::from(count);
        // Per iteration: tRCD-equivalent issue latency is hidden inside
        // the on-time; the loop costs (on_time + tRP) per activation.
        stats.elapsed_ns += f64::from(count) * (t_on.max(timing.t_ras) + timing.t_rp);
    }
    Ok(Some(stats))
}

/// Recognizes a pure single-command column-burst loop.
fn try_burst_fast_path(body: &[Instr]) -> Option<DramCommand> {
    match body {
        [Instr::Cmd(cmd @ (DramCommand::Wr { .. } | DramCommand::Rd { .. }))] => Some(*cmd),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_dram::device::DeviceConfig;

    fn device() -> DramDevice {
        DramDevice::new(DeviceConfig::small_test(), 11)
    }

    #[test]
    fn empty_program_is_free() {
        let mut dev = device();
        let stats = execute(&mut dev, &TimingParams::ddr4(), &Program::new()).unwrap();
        assert_eq!(stats.elapsed_ns, 0.0);
        assert_eq!(stats.activations, 0);
    }

    #[test]
    fn init_row_program_writes_data() {
        let mut dev = device();
        let p = Program::init_row(0, 42, 0xAA, 128);
        let stats = execute(&mut dev, &TimingParams::ddr4(), &p).unwrap();
        assert_eq!(stats.activations, 1);
        assert_eq!(stats.column_bursts, 128);
        dev.activate(0, 42).unwrap();
        assert!(dev.read_open_row(0, 42).unwrap().iter().all(|&b| b == 0xAA));
        dev.precharge(0).unwrap();
    }

    #[test]
    fn hammer_program_uses_fast_path_and_disturbs() {
        let mut dev = device();
        let p = Program::double_sided_hammer(0, 99, 101, 50_000, 35.0);
        let stats = execute(&mut dev, &TimingParams::ddr4(), &p).unwrap();
        assert_eq!(stats.activations, 100_000);
        assert_eq!(dev.total_activations(), 100_000);
        // Elapsed: 100k × (tRAS + tRP) = 100k × 48.75 ns.
        let expected = 100_000.0 * (35.0 + 13.75);
        assert!((stats.elapsed_ns - expected).abs() < 1e-6);
    }

    #[test]
    fn hammer_time_scales_with_on_time() {
        let mut dev = device();
        let short = execute(
            &mut dev,
            &TimingParams::ddr4(),
            &Program::double_sided_hammer(0, 9, 11, 100, 35.0),
        )
        .unwrap();
        let mut dev = device();
        let long = execute(
            &mut dev,
            &TimingParams::ddr4(),
            &Program::double_sided_hammer(0, 9, 11, 100, 7_800.0),
        )
        .unwrap();
        assert!(long.elapsed_ns > short.elapsed_ns * 100.0);
    }

    #[test]
    fn general_repeat_falls_back_to_iteration() {
        let mut dev = device();
        let mut p = Program::new();
        p.repeat(
            3,
            vec![
                Instr::Cmd(DramCommand::Act { bank: 0, row: 1 }),
                Instr::Cmd(DramCommand::Rd { bank: 0 }),
                Instr::Cmd(DramCommand::Pre { bank: 0 }),
            ],
        );
        let stats = execute(&mut dev, &TimingParams::ddr4(), &p).unwrap();
        assert_eq!(stats.activations, 3);
        assert_eq!(stats.column_bursts, 3);
    }

    #[test]
    fn read_requires_open_row() {
        let mut dev = device();
        let mut p = Program::new();
        p.cmd(DramCommand::Rd { bank: 0 });
        assert!(matches!(
            execute(&mut dev, &TimingParams::ddr4(), &p),
            Err(DramError::RowNotOpen { .. })
        ));
    }

    #[test]
    fn refresh_command_counts() {
        let mut dev = device();
        let mut p = Program::new();
        p.cmd(DramCommand::Ref).cmd(DramCommand::Ref);
        let stats = execute(&mut dev, &TimingParams::ddr4(), &p).unwrap();
        assert_eq!(stats.refreshes, 2);
        assert!((stats.elapsed_ns - 700.0).abs() < 1e-9);
    }

    #[test]
    fn wait_adds_time_only() {
        let mut dev = device();
        let mut p = Program::new();
        p.wait_ns(123.0);
        let stats = execute(&mut dev, &TimingParams::ddr4(), &p).unwrap();
        assert_eq!(stats.elapsed_ns, 123.0);
        assert_eq!(dev.total_activations(), 0);
    }

    #[test]
    fn burst_loop_fast_path_charges_time() {
        let mut dev = device();
        dev.activate(0, 5).unwrap();
        let mut p = Program::new();
        p.repeat(127, vec![Instr::Cmd(DramCommand::Wr { bank: 0, fill: 0x55 })]);
        let stats = execute(&mut dev, &TimingParams::ddr4(), &p).unwrap();
        assert_eq!(stats.column_bursts, 127);
        assert!((stats.elapsed_ns - 127.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn program_cache_returns_identical_programs() {
        let mut cache = ProgramCache::new();
        let key = ProgramKey::Hammer {
            bank: 0,
            aggr1: 9,
            aggr2: 11,
            count: 500,
            t_on_bits: 35.0f64.to_bits(),
        };
        let a = cache.get_or_build(key);
        let b = cache.get_or_build(key);
        assert_eq!(*a, Program::double_sided_hammer(0, 9, 11, 500, 35.0));
        assert_eq!(*a, *b);
        assert_eq!(cache.stats(), (1, 1), "second lookup must hit");
        let init =
            cache.get_or_build(ProgramKey::Init { bank: 0, row: 3, fill: 0xAA, bursts: 128 });
        assert_eq!(*init, Program::init_row(0, 3, 0xAA, 128));
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn program_cache_bounds_its_size() {
        let mut cache = ProgramCache::new();
        for count in 0..3_000u32 {
            let _ = cache.get_or_build(ProgramKey::Hammer {
                bank: 0,
                aggr1: 1,
                aggr2: 3,
                count,
                t_on_bits: 35.0f64.to_bits(),
            });
        }
        assert!(cache.map.len() <= super::PROGRAM_CACHE_CAP);
        let (hits, builds) = cache.stats();
        assert_eq!(hits, 0);
        assert_eq!(builds, 3_000);
    }

    #[test]
    fn scaled_stats() {
        let s = ExecStats { elapsed_ns: 2.0, activations: 3, column_bursts: 1, refreshes: 0 };
        let t = s.scaled(4);
        assert_eq!(t.elapsed_ns, 8.0);
        assert_eq!(t.activations, 12);
    }
}
