//! Gallop + bisect search over a monotone predicate.
//!
//! The RDT measurement loop asks "what is the first hammer count on the
//! sweep grid that flips the victim?". Under keyed per-measurement
//! dynamics ([`vrd_dram::keyed`]) the flip predicate is monotone in the
//! hammer count, so the first flipping grid point can be found with
//! O(log n) sessions instead of a linear scan. This module holds the one
//! shared primitive; `vrd_core::algorithm` drives it over [`SweepSpec`]
//! grids and [`crate::routines::guess_rdt`] over its coarse bracket.
//!
//! [`SweepSpec`]: https://docs.rs/vrd-core

/// Returns the smallest index in `[0, n)` for which `probe` is true, or
/// `None` when no index satisfies it — exactly what a linear
/// `(0..n).find(|&i| probe(i))` returns, assuming `probe` is monotone
/// (false…false, true…true).
///
/// Probes index 0 first (the min edge), then gallops through indices
/// `1, 3, 7, …, 2^k − 1` (clamped to `n − 1`, so censored searches
/// always probe the last grid point before giving up), then bisects the
/// bracket. Worst case `2·log2(n) + 2` probes.
pub fn first_true(n: usize, mut probe: impl FnMut(usize) -> bool) -> Option<usize> {
    if n == 0 {
        return None;
    }
    if probe(0) {
        return Some(0);
    }
    // Gallop: maintain probe(lo) == false, find a true index or run off
    // the end.
    let mut lo = 0usize;
    let mut hi;
    let mut next = 1usize;
    loop {
        let idx = next.min(n - 1);
        if probe(idx) {
            hi = idx;
            break;
        }
        if idx == n - 1 {
            return None;
        }
        lo = idx;
        next = idx * 2 + 1;
    }
    // Bisect (lo, hi]: probe(lo) == false, probe(hi) == true.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: linear scan. Also counts probes for both.
    fn check(n: usize, first: Option<usize>) {
        let predicate = |i: usize| match first {
            Some(f) => i >= f,
            None => false,
        };
        let linear = (0..n).find(|&i| predicate(i));
        assert_eq!(first_true(n, predicate), linear, "n={n}, first={first:?}");
    }

    #[test]
    fn matches_linear_scan_everywhere() {
        for n in 0..40 {
            check(n, None);
            for f in 0..n {
                check(n, Some(f));
            }
        }
        check(1_000, Some(0));
        check(1_000, Some(999));
        check(1_000, Some(137));
        check(1_000, None);
    }

    #[test]
    fn censored_search_is_logarithmic() {
        let mut probes = 0usize;
        assert_eq!(
            first_true(250, |_| {
                probes += 1;
                false
            }),
            None
        );
        assert!(probes <= 10, "censored search used {probes} probes on a 250-point grid");
    }

    #[test]
    fn typical_search_beats_linear_by_4x() {
        // The foundational sweep has ~250 points with the first flip
        // around index 50 (guess ≈ RDT, min = guess/2, step = guess/100).
        let mut probes = 0usize;
        assert_eq!(
            first_true(250, |i| {
                probes += 1;
                i >= 50
            }),
            Some(50)
        );
        assert!(probes * 4 <= 51, "adaptive used {probes} probes where linear uses 51");
    }
}
