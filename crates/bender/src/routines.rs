//! The building blocks of the paper's Algorithm 1: row initialization,
//! double-sided hammering/pressing, read-and-compare, and RDT guessing.
//!
//! These are the `initialize_rows` / `hammer_doublesided` / `compare_data`
//! primitives of Alg. 1, expressed as DRAM-Bender test programs executed
//! on a [`TestPlatform`]. The RDT measurement loop itself lives in
//! `vrd-core` (it is the paper's contribution).

use vrd_dram::{Bitflip, DataPattern, TestConditions};

use crate::platform::TestPlatform;
use crate::program::Program;
use crate::search::first_true;

/// Write bursts needed to fill one row (the Appendix-A tables use 128
/// bursts of 64 bytes for an 8 KiB row).
pub const BURSTS_PER_ROW: u32 = 128;

/// Initializes the victim row, the two aggressors, and — when
/// `include_outer` — the surrounding rows V ± \[2..8\] with the pattern's
/// bytes (Table 2).
///
/// Returns the simulated time spent (ns).
///
/// # Panics
///
/// Panics if the addresses are invalid for the platform's device (the
/// campaign code validates row selection beforehand).
pub fn initialize_rows(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    pattern: DataPattern,
    include_outer: bool,
) -> f64 {
    let rows = platform.device().config().rows_per_bank();
    let mut elapsed = 0.0;
    let mut init = |platform: &mut TestPlatform, row: u32, fill: u8| {
        elapsed += platform
            .run_init_row(bank, row, fill, BURSTS_PER_ROW)
            .expect("valid init program")
            .elapsed_ns;
    };

    init(platform, victim, pattern.victim_byte());
    let (below, above) = platform.device().config().mapping.neighbors_of(victim, rows);
    for aggressor in [below, above].into_iter().flatten() {
        init(platform, aggressor, pattern.aggressor_byte());
    }
    if include_outer {
        for dist in 2..=8u32 {
            for row in [victim.checked_sub(dist), victim.checked_add(dist)]
                .into_iter()
                .flatten()
                .filter(|&r| r < rows)
            {
                init(platform, row, pattern.outer_byte());
            }
        }
    }
    elapsed
}

/// Performs the paper's double-sided access pattern: `hammer_count`
/// activations of each physical neighbor of `victim`, holding each open
/// for `conditions.t_agg_on_ns` (RowHammer at min `t_RAS`, RowPress
/// beyond).
///
/// Returns the simulated time spent (ns).
pub fn hammer_double_sided(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    hammer_count: u32,
    conditions: &TestConditions,
) -> f64 {
    let rows = platform.device().config().rows_per_bank();
    let (below, above) = platform.device().config().mapping.neighbors_of(victim, rows);
    let (a1, a2) = match (below, above) {
        (Some(a1), Some(a2)) => (a1, a2),
        (Some(a), None) | (None, Some(a)) => (a, a),
        (None, None) => return 0.0,
    };
    platform
        .run_double_sided_hammer(bank, a1, a2, hammer_count, conditions.t_agg_on_ns)
        .expect("valid hammer program")
        .elapsed_ns
}

/// Reads the victim row and compares against the pattern's victim byte,
/// returning the observed bitflips (Alg. 1's `compare_data`).
pub fn read_compare(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    pattern: DataPattern,
) -> Vec<Bitflip> {
    platform.device_mut().read_and_compare(bank, victim, pattern.victim_byte())
}

/// One complete hammer *session*: initialize, hammer with `hammer_count`,
/// read and compare. Returns the bitflips.
pub fn hammer_session(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    hammer_count: u32,
    conditions: &TestConditions,
) -> Vec<Bitflip> {
    platform.note_hammer_session();
    initialize_rows(platform, bank, victim, conditions.pattern, false);
    hammer_double_sided(platform, bank, victim, hammer_count, conditions);
    read_compare(platform, bank, victim, conditions.pattern)
}

/// Hammers `victim` through an arbitrary [`AccessPattern`](vrd_dram::access::AccessPattern): each
/// aggressor receives its weight share of `2 × hammer_count` total
/// activations (so double-sided matches
/// [`hammer_double_sided`]'s per-aggressor count). Returns the simulated
/// time spent (ns).
pub fn hammer_pattern(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    access: vrd_dram::access::AccessPattern,
    hammer_count: u32,
    conditions: &TestConditions,
) -> f64 {
    let rows = platform.device().config().rows_per_bank();
    let mapping = platform.device().config().mapping;
    let mut elapsed = 0.0;
    for (aggressor, weight) in access.aggressors_of(mapping, victim, rows) {
        let acts = ((f64::from(hammer_count) * 2.0) * weight).round() as u32;
        if acts == 0 {
            continue;
        }
        let prog = Program::double_sided_hammer(
            bank,
            aggressor,
            aggressor,
            acts.div_ceil(2),
            conditions.t_agg_on_ns,
        );
        elapsed += platform.run(&prog).expect("valid hammer program").elapsed_ns;
    }
    elapsed
}

/// Estimates a row's RDT by exponential search followed by bisection
/// (Alg. 1's `guess_RDT` primitive). Returns `None` when the row does not
/// flip within `max_hammer_count`.
///
/// The returned estimate is a single noisy sample of the row's RDT; the
/// paper averages several (`vrd-core` does that too).
pub fn guess_rdt(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    max_hammer_count: u32,
) -> Option<u32> {
    if max_hammer_count == 0 {
        return None;
    }
    // Exponential probe upward, starting no higher than the cap (so caps
    // below the historical 512 start still get probed) and always ending
    // on the cap itself before declaring the row non-flipping.
    let mut lo = 0u32;
    let mut hc = 512u32.min(max_hammer_count);
    let hi = loop {
        if !hammer_session(platform, bank, victim, hc, conditions).is_empty() {
            break hc;
        }
        if hc >= max_hammer_count {
            return None;
        }
        lo = hc;
        hc = hc.saturating_mul(2).min(max_hammer_count);
    };
    // Refine to ~3% precision over a uniform grid of counts in (lo, hi]
    // with the shared gallop+bisect primitive. The per-session threshold
    // is noisy, so the probe is not strictly monotone; when the search
    // finds no flip at all, `hi` (which did flip above) is the estimate.
    let step = ((hi - lo) / 32).max(1);
    let n = ((hi - lo) / step) as usize;
    let first = first_true(n, |i| {
        let count = lo + (i as u32 + 1) * step;
        !hammer_session(platform, bank, victim, count, conditions).is_empty()
    });
    Some(first.map_or(hi, |i| lo + (i as u32 + 1) * step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_dram::TestConditions;

    /// Finds a row with a usable weak cell for routine tests.
    fn vulnerable_row(platform: &mut TestPlatform) -> u32 {
        let cond = TestConditions::foundational();
        for row in 2..4000 {
            if let Some(t) = platform.device_mut().oracle_row_threshold(0, row, &cond) {
                if t < 15_000.0 {
                    return row;
                }
            }
        }
        panic!("no vulnerable row found");
    }

    #[test]
    fn initialize_rows_writes_all_three() {
        let mut p = TestPlatform::small_test(5);
        let elapsed = initialize_rows(&mut p, 0, 100, DataPattern::Checkered0, false);
        assert!(elapsed > 0.0);
        let dev = p.device_mut();
        dev.activate(0, 100).unwrap();
        assert!(dev.read_open_row(0, 100).unwrap().iter().all(|&b| b == 0x55));
        dev.precharge(0).unwrap();
        dev.activate(0, 99).unwrap();
        assert!(dev.read_open_row(0, 99).unwrap().iter().all(|&b| b == 0xAA));
        dev.precharge(0).unwrap();
    }

    #[test]
    fn initialize_with_outer_rows_costs_more() {
        let mut a = TestPlatform::small_test(5);
        let without = initialize_rows(&mut a, 0, 100, DataPattern::Rowstripe0, false);
        let mut b = TestPlatform::small_test(5);
        let with = initialize_rows(&mut b, 0, 100, DataPattern::Rowstripe0, true);
        assert!(with > without * 4.0);
    }

    #[test]
    fn session_with_huge_count_flips_vulnerable_row() {
        let mut p = TestPlatform::small_test(5);
        let victim = vulnerable_row(&mut p);
        let cond = TestConditions::foundational();
        let flips = hammer_session(&mut p, 0, victim, 400_000, &cond);
        assert!(!flips.is_empty());
    }

    #[test]
    fn session_with_tiny_count_is_clean() {
        let mut p = TestPlatform::small_test(5);
        let victim = vulnerable_row(&mut p);
        let cond = TestConditions::foundational();
        let flips = hammer_session(&mut p, 0, victim, 3, &cond);
        assert!(flips.is_empty());
    }

    #[test]
    fn guess_rdt_brackets_oracle_threshold() {
        let mut p = TestPlatform::small_test(5);
        let victim = vulnerable_row(&mut p);
        let cond = TestConditions::foundational();
        let guess = guess_rdt(&mut p, 0, victim, &cond, 1 << 20).expect("row flips");
        let oracle = p.device_mut().oracle_row_threshold(0, victim, &cond).unwrap();
        // The threshold fluctuates between sessions (that is the point of
        // the paper); the guess lands within a generous band around the
        // oracle value.
        assert!(
            f64::from(guess) > oracle * 0.3 && f64::from(guess) < oracle * 3.0,
            "guess {guess} vs oracle {oracle}"
        );
    }

    #[test]
    fn guess_rdt_none_for_strong_row() {
        let mut p = TestPlatform::small_test(5);
        // Find a row without weak cells.
        let cond = TestConditions::foundational();
        let strong = (2..4000)
            .find(|&r| p.device_mut().oracle_row_threshold(0, r, &cond).is_none())
            .expect("some row has no weak cell");
        assert_eq!(guess_rdt(&mut p, 0, strong, &cond, 1 << 16), None);
    }

    #[test]
    fn guess_rdt_works_below_old_gallop_start() {
        // Regression: the gallop used to start at a hard-coded 512, so a
        // cap below 512 (or a module whose RDTs sit below it) returned
        // `None` without a single probe.
        use vrd_dram::device::{DeviceConfig, DramDevice};
        let mut cfg = DeviceConfig::small_test();
        cfg.vrd.median_rdt = 100.0;
        cfg.vrd.weak_cells_per_row = 3.0;
        let mut p = TestPlatform::new(DramDevice::new(cfg, 9), crate::timing::TimingParams::ddr4());
        let victim = vulnerable_row(&mut p);
        let guess =
            guess_rdt(&mut p, 0, victim, &TestConditions::foundational(), 450).expect("flips");
        assert!(guess <= 450, "estimate {guess} must respect the cap");
    }

    #[test]
    fn guess_rdt_probes_the_cap_before_censoring() {
        // Regression: the gallop used to overstep the cap without ever
        // probing the cap itself, censoring rows whose RDT lies between
        // the last power-of-two probe and the cap. On a never-flipping
        // row the probe sequence is deterministic: 512, 1024, …, 65536
        // and then the cap itself — 9 sessions, where the old code
        // stopped at 8 without testing 100 000.
        let mut p = TestPlatform::small_test(5);
        let cond = TestConditions::foundational();
        let strong = (2..4000)
            .find(|&r| p.device_mut().oracle_row_threshold(0, r, &cond).is_none())
            .expect("some row has no weak cell");
        assert_eq!(guess_rdt(&mut p, 0, strong, &cond, 100_000), None);
        assert_eq!(p.hammer_sessions(), 9, "the cap must be probed before censoring");
    }

    #[test]
    fn guess_rdt_terminates_at_u32_max_cap() {
        // Regression: with `max_hammer_count == u32::MAX` the saturating
        // doubling used to pin `hc` at the cap and loop forever on a row
        // that never flips.
        let mut p = TestPlatform::small_test(5);
        let cond = TestConditions::foundational();
        let strong = (2..4000)
            .find(|&r| p.device_mut().oracle_row_threshold(0, r, &cond).is_none())
            .expect("some row has no weak cell");
        assert_eq!(guess_rdt(&mut p, 0, strong, &cond, u32::MAX), None);
    }

    #[test]
    fn hammer_sessions_are_counted() {
        let mut p = TestPlatform::small_test(5);
        let cond = TestConditions::foundational();
        assert_eq!(p.hammer_sessions(), 0);
        hammer_session(&mut p, 0, 100, 50, &cond);
        hammer_session(&mut p, 0, 100, 50, &cond);
        assert_eq!(p.hammer_sessions(), 2);
    }

    #[test]
    fn repeated_sessions_hit_the_program_cache() {
        let mut p = TestPlatform::small_test(5);
        let cond = TestConditions::foundational();
        for _ in 0..4 {
            hammer_session(&mut p, 0, 100, 1_000, &cond);
        }
        let (hits, builds) = p.program_cache_stats();
        assert!(builds <= 4, "4 identical sessions need at most 4 distinct programs");
        assert!(hits >= 12, "repeat sessions must reuse cached programs (hits={hits})");
    }

    #[test]
    fn pattern_hammer_double_sided_flips_like_the_builtin() {
        use vrd_dram::access::AccessPattern;
        let mut p = TestPlatform::small_test(5);
        let victim = vulnerable_row(&mut p);
        let cond = TestConditions::foundational();
        initialize_rows(&mut p, 0, victim, cond.pattern, false);
        hammer_pattern(&mut p, 0, victim, AccessPattern::DoubleSided, 400_000, &cond);
        let flips = read_compare(&mut p, 0, victim, cond.pattern);
        assert!(!flips.is_empty(), "double-sided pattern hammer must flip");
    }

    #[test]
    fn single_sided_needs_more_hammers_than_double() {
        use vrd_dram::access::AccessPattern;
        // At a budget where double-sided flips, single-sided (same total
        // activations, one aggressor, weaker coupling) often does not.
        let mut p = TestPlatform::small_test(5);
        let victim = vulnerable_row(&mut p);
        let cond = TestConditions::foundational();
        let budget = {
            let g = guess_rdt(&mut p, 0, victim, &cond, 1 << 20).expect("flips");
            g + g / 4
        };
        initialize_rows(&mut p, 0, victim, cond.pattern, false);
        hammer_pattern(&mut p, 0, victim, AccessPattern::SingleSided, budget, &cond);
        let single = read_compare(&mut p, 0, victim, cond.pattern).len();
        initialize_rows(&mut p, 0, victim, cond.pattern, false);
        hammer_pattern(&mut p, 0, victim, AccessPattern::DoubleSided, budget, &cond);
        let double = read_compare(&mut p, 0, victim, cond.pattern).len();
        assert!(double >= single, "double-sided at least as effective ({double} vs {single})");
        assert!(double > 0, "double-sided just above the threshold must flip");
    }

    #[test]
    fn hammering_accrues_platform_time() {
        let mut p = TestPlatform::small_test(5);
        let cond = TestConditions::foundational();
        let t = hammer_double_sided(&mut p, 0, 100, 10_000, &cond);
        assert!(t > 0.0);
        assert_eq!(p.elapsed_ns(), t);
    }
}
