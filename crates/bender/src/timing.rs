//! JEDEC DRAM timing parameter tables.
//!
//! The DDR5 values are exactly the paper's Table 6 (used by the
//! Appendix-A time/energy estimation at 8800 MT/s); DDR4 and HBM2 values
//! follow the respective JEDEC standards at common speed bins.

use serde::{Deserialize, Serialize};

/// DRAM timing parameters in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT-to-ACT delay, different bank group.
    pub t_rrd_s: f64,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: f64,
    /// Column-to-column delay, same bank group (reads).
    pub t_ccd_l: f64,
    /// Column-to-column delay, same bank group (writes).
    pub t_ccd_l_wr: f64,
    /// ACT-to-column delay.
    pub t_rcd: f64,
    /// Precharge latency.
    pub t_rp: f64,
    /// Minimum row-open time (charge restoration latency).
    pub t_ras: f64,
    /// Read-to-precharge delay.
    pub t_rtp: f64,
    /// Write recovery time.
    pub t_wr: f64,
    /// Average refresh command interval.
    pub t_refi: f64,
    /// Refresh window (every row refreshed once per window).
    pub t_refw: f64,
    /// Refresh command latency.
    pub t_rfc: f64,
}

impl TimingParams {
    /// DDR5 timings from the paper's Table 6 (JESD79-5C, 8800 MT/s).
    pub fn ddr5() -> Self {
        TimingParams {
            t_rrd_s: 1.816,
            t_ccd_s: 1.816,
            t_ccd_l: 5.0,
            t_ccd_l_wr: 20.0,
            t_rcd: 14.090,
            t_rp: 14.090,
            t_ras: 32.0,
            t_rtp: 7.5,
            t_wr: 30.0,
            t_refi: 3_900.0,
            t_refw: 32_000_000.0,
            t_rfc: 295.0,
        }
    }

    /// DDR4 timings (JESD79-4C, 3200 MT/s bin).
    pub fn ddr4() -> Self {
        TimingParams {
            t_rrd_s: 5.3,
            t_ccd_s: 5.0,
            t_ccd_l: 6.25,
            t_ccd_l_wr: 10.0,
            t_rcd: 13.75,
            t_rp: 13.75,
            t_ras: 35.0,
            t_rtp: 7.5,
            t_wr: 15.0,
            t_refi: 7_800.0,
            t_refw: 64_000_000.0,
            t_rfc: 350.0,
        }
    }

    /// HBM2 timings (JESD235D).
    pub fn hbm2() -> Self {
        TimingParams {
            t_rrd_s: 4.0,
            t_ccd_s: 2.0,
            t_ccd_l: 4.0,
            t_ccd_l_wr: 8.0,
            t_rcd: 14.0,
            t_rp: 14.0,
            t_ras: 33.0,
            t_rtp: 7.5,
            t_wr: 16.0,
            t_refi: 3_900.0,
            t_refw: 32_000_000.0,
            t_rfc: 260.0,
        }
    }

    /// Timing table for a DRAM standard at its default speed bin.
    pub fn for_standard(standard: vrd_dram::DramStandard) -> Self {
        match standard {
            vrd_dram::DramStandard::Ddr4 => Self::ddr4(),
            vrd_dram::DramStandard::Hbm2 => Self::hbm2(),
        }
    }

    /// Timing table for a device family: the standard's speed bin,
    /// with the disturbance-relevant parameters (tRAS/tRC/tREFI) taken
    /// from the family descriptor so platform and device model cannot
    /// disagree on them.
    pub fn for_family(family: &vrd_dram::DeviceFamily) -> Self {
        let mut t = Self::for_standard(family.standard);
        t.t_ras = family.timings.t_ras_ns;
        t.t_refi = family.timings.t_refi_ns;
        t.t_rp = family.timings.t_rc_ns - family.timings.t_ras_ns;
        t
    }

    /// Row cycle time tRC (ACT-to-ACT on the same bank).
    pub fn t_rc(&self) -> f64 {
        self.t_ras + self.t_rp
    }

    /// Number of refresh commands needed to cover a full refresh window.
    pub fn refs_per_window(&self) -> u32 {
        (self.t_refw / self.t_refi).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr5_matches_table6() {
        let t = TimingParams::ddr5();
        assert_eq!(t.t_rrd_s, 1.816);
        assert_eq!(t.t_ccd_s, 1.816);
        assert_eq!(t.t_ccd_l, 5.0);
        assert_eq!(t.t_ccd_l_wr, 20.0);
        assert_eq!(t.t_rcd, 14.090);
        assert_eq!(t.t_rp, 14.090);
        assert_eq!(t.t_ras, 32.0);
        assert_eq!(t.t_rtp, 7.5);
        assert_eq!(t.t_wr, 30.0);
    }

    #[test]
    fn ddr4_refresh_parameters() {
        let t = TimingParams::ddr4();
        // 64 ms window / 7.8 µs interval = 8192 refreshes.
        assert_eq!(t.refs_per_window(), 8205);
        assert!(t.t_refw / t.t_refi > 8000.0);
    }

    #[test]
    fn standards_dispatch() {
        assert_eq!(TimingParams::for_standard(vrd_dram::DramStandard::Ddr4), TimingParams::ddr4());
        assert_eq!(TimingParams::for_standard(vrd_dram::DramStandard::Hbm2), TimingParams::hbm2());
    }

    #[test]
    fn family_timings_agree_with_speed_bins() {
        // The family descriptors and the JEDEC bins here must name the
        // same tRAS/tREFI/tRC, so `for_family` is a no-op override for
        // every Table-1 roster entry.
        for spec in vrd_dram::ModuleSpec::table1() {
            let family = spec.family();
            let bin = TimingParams::for_standard(family.standard);
            let t = TimingParams::for_family(&family);
            assert_eq!(t, bin, "{}: family timings must match the bin", spec.name);
            assert_eq!(t.t_rc(), family.timings.t_rc_ns, "{}", spec.name);
        }
    }

    #[test]
    fn all_params_positive() {
        for t in [TimingParams::ddr4(), TimingParams::ddr5(), TimingParams::hbm2()] {
            for v in [
                t.t_rrd_s,
                t.t_ccd_s,
                t.t_ccd_l,
                t.t_ccd_l_wr,
                t.t_rcd,
                t.t_rp,
                t.t_ras,
                t.t_rtp,
                t.t_wr,
                t.t_refi,
                t.t_refw,
                t.t_rfc,
            ] {
                assert!(v > 0.0);
            }
        }
    }
}
