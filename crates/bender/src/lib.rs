//! Software reimplementation of a DRAM-Bender-style testing infrastructure.
//!
//! The paper builds its characterization on DRAM Bender, an FPGA-based
//! platform that executes DRAM command sequences with precise timing and a
//! PID-controlled thermal rig. This crate reproduces that stack in
//! software against the [`vrd_dram`] device model:
//!
//! - [`command`] — the DRAM command set (ACT/PRE/RD/WR/REF).
//! - [`timing`] — JEDEC timing parameter tables (DDR4, DDR5 per the
//!   paper's Table 6, HBM2).
//! - [`program`] — test programs (command sequences with waits and
//!   hardware-style repeat loops) and their executor.
//! - [`routines`] — the building blocks of Algorithm 1: row
//!   initialization, double-sided hammering/pressing, read-and-compare.
//! - [`thermal`] — the heater-pad + PID temperature controller
//!   (±0.5 °C, like the paper's MaxWell FT200 setup).
//! - [`platform`] — the assembled test platform with interference
//!   controls (refresh, TRR, on-die ECC) per the paper's §3.1.
//! - [`estimate`] — the Appendix-A RDT test time and energy estimation
//!   methodology (Tables 4–6, Figs. 17–24).
//!
//! # Examples
//!
//! ```
//! use vrd_bender::platform::TestPlatform;
//! use vrd_dram::{DataPattern, TestConditions};
//!
//! let mut platform = TestPlatform::small_test(7);
//! let conditions = TestConditions::foundational();
//! vrd_bender::routines::initialize_rows(&mut platform, 0, 100, conditions.pattern, true);
//! vrd_bender::routines::hammer_double_sided(&mut platform, 0, 100, 10_000, &conditions);
//! let flips = vrd_bender::routines::read_compare(&mut platform, 0, 100, conditions.pattern);
//! println!("{} flips after 10k hammers", flips.len());
//! ```

pub mod asm;
pub mod command;
pub mod estimate;
pub mod platform;
pub mod program;
pub mod routines;
pub mod search;
pub mod thermal;
pub mod timing;

pub use command::DramCommand;
pub use platform::{BatchMeasurement, TestPlatform};
pub use program::{Instr, Program};
pub use thermal::ThermalController;
pub use timing::TimingParams;
