//! Appendix-A RDT test time and energy estimation (Tables 4–6,
//! Figs. 17–24).
//!
//! The paper estimates how long (and how much energy) exhaustive RDT
//! testing takes by tightly scheduling the DRAM commands of one test
//! iteration — initialize three rows, double-sided hammer, read the
//! victim — under DDR5 timing (Table 6), for one bank (Table 4) or for
//! several banks tested simultaneously while obeying `t_RRD_S`/`t_CCD_S`
//! (Table 5). This module reproduces those formulas and the derived
//! campaign-scale projections.

use serde::{Deserialize, Serialize};

use crate::timing::TimingParams;

/// Per-command energy constants derived from Micron 16Gb DDR5 IDD values
/// (the paper's reference \[243\]): an ACT/PRE pair, one column burst, and one hammer-hold
/// nanosecond of an open row (IDD1-class background while pressing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one ACT + PRE pair (nJ).
    pub act_pre_nj: f64,
    /// Energy of one write burst (nJ).
    pub write_nj: f64,
    /// Energy of one read burst (nJ).
    pub read_nj: f64,
    /// Active-standby power while a row is held open (mW), charged per
    /// nanosecond of hold time (RowPress dominates through this term).
    pub open_row_mw: f64,
    /// Idle background power of the device (mW).
    pub background_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // VDD 1.1 V; IDD0 ≈ 65 mA over a tRC window ⇒ ~2 nJ per ACT/PRE;
        // IDD4W/IDD4R bursts ⇒ ~1.5/1.2 nJ; IDD3N ≈ 45 mA ⇒ ~50 mW.
        EnergyModel {
            act_pre_nj: 2.0,
            write_nj: 1.5,
            read_nj: 1.2,
            open_row_mw: 50.0,
            background_mw: 55.0,
        }
    }
}

/// Command counts of one RDT measurement for one victim row (Table 4
/// shape), scaled by the number of simultaneously tested banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandCounts {
    /// Row activations (init + hammer + read).
    pub acts: u64,
    /// Write bursts.
    pub writes: u64,
    /// Read bursts.
    pub reads: u64,
    /// Precharges.
    pub pres: u64,
}

/// Parameters of one RDT measurement, Appendix-A style.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSpec {
    /// Activations per aggressor row (the hammer count).
    pub hammer_count: u64,
    /// Aggressor on-time in ns (`t_RAS` for RowHammer, 7.8 µs for the
    /// paper's RowPress projection).
    pub t_agg_on_ns: f64,
    /// Number of banks tested simultaneously (1 uses the Table-4
    /// schedule; more uses the Table-5 schedule).
    pub banks: u32,
}

impl MeasurementSpec {
    /// RowHammer at min `t_RAS` on one bank with the given hammer count.
    pub fn rowhammer(hammer_count: u64) -> Self {
        MeasurementSpec { hammer_count, t_agg_on_ns: TimingParams::ddr5().t_ras, banks: 1 }
    }

    /// RowPress at `t_AggOn` = 7.8 µs on one bank.
    pub fn rowpress(hammer_count: u64) -> Self {
        MeasurementSpec { hammer_count, t_agg_on_ns: 7_800.0, banks: 1 }
    }

    /// Tests `banks` banks simultaneously.
    pub fn with_banks(mut self, banks: u32) -> Self {
        assert!(banks > 0, "banks must be nonzero");
        self.banks = banks;
        self
    }
}

/// Command counts for one measurement of one victim row *per bank*
/// (Tables 4 and 5 both issue the same commands; parallelism changes the
/// schedule, not the counts).
pub fn commands_per_measurement(spec: &MeasurementSpec) -> CommandCounts {
    let b = u64::from(spec.banks);
    CommandCounts {
        // 3 row inits + read ACT per bank, plus 2 aggressors × hammers.
        acts: (3 + 1) * b + 2 * spec.hammer_count * b,
        writes: 128 * 3 * b,
        reads: 128 * b,
        pres: (3 + 1) * b + 2 * spec.hammer_count * b,
    }
}

/// Time of one RDT measurement (ns) under `timing`, per Tables 4 and 5.
///
/// For `banks > 1` the schedule overlaps across banks: activations are
/// spaced `t_RRD_S`, write bursts `t_CCD_S`, and the hammer ACT interval
/// is `max(t_AggOn + t_RP, t_RRD_S × banks)` (Table 5's
/// `Max(t_AggOn, t_RRD_S·16)` row, plus the precharge).
pub fn one_measurement_time_ns(timing: &TimingParams, spec: &MeasurementSpec) -> f64 {
    let b = f64::from(spec.banks);
    let hc = spec.hammer_count as f64;
    let t_on = spec.t_agg_on_ns.max(timing.t_ras);
    if spec.banks == 1 {
        // Table 4: three inits, hammer loop, read.
        let init_one_row = timing.t_rcd + 127.0 * timing.t_ccd_l_wr + timing.t_wr + timing.t_rp;
        let hammer = hc * 2.0 * (t_on + timing.t_rp);
        let read = timing.t_rcd + 127.0 * timing.t_ccd_l + timing.t_rtp;
        3.0 * init_one_row + hammer + read
    } else {
        // Table 5: B banks in lockstep.
        let init_one_row_group =
            b * timing.t_rrd_s + (128.0 * b - 1.0) * timing.t_ccd_s + timing.t_wr + timing.t_rp;
        let hammer_interval = (t_on + timing.t_rp).max(timing.t_rrd_s * b + timing.t_rp);
        let hammer = hc * 2.0 * hammer_interval;
        let read =
            timing.t_rcd + (128.0 * b - 1.0) * timing.t_ccd_l.min(timing.t_ccd_s) + timing.t_rtp;
        3.0 * init_one_row_group + hammer + read
    }
}

/// Energy of one RDT measurement (nJ).
pub fn one_measurement_energy_nj(
    timing: &TimingParams,
    spec: &MeasurementSpec,
    energy: &EnergyModel,
) -> f64 {
    let counts = commands_per_measurement(spec);
    let time_ns = one_measurement_time_ns(timing, spec);
    let hold_ns =
        spec.hammer_count as f64 * 2.0 * spec.t_agg_on_ns.max(timing.t_ras) * f64::from(spec.banks);
    counts.acts as f64 * energy.act_pre_nj
        + counts.writes as f64 * energy.write_nj
        + counts.reads as f64 * energy.read_nj
        + hold_ns * energy.open_row_mw * 1e-3 * 1e-9 * 1e9 // mW × ns = pJ·10³ → nJ: mW·ns = 1e-3 J/s × 1e-9 s = 1e-12 J = 1e-3 nJ
        * 1e-3
        + time_ns * energy.background_mw * 1e-6
}

/// A campaign-scale projection: `measurements` RDT measurements for each
/// of `rows` victim rows, testing `spec.banks` banks in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Per-measurement parameters.
    pub measurement: MeasurementSpec,
    /// Victim rows to test (total across the device).
    pub rows: u64,
    /// RDT measurements per row.
    pub measurements: u64,
}

impl CampaignSpec {
    /// Total campaign time in nanoseconds.
    pub fn total_time_ns(&self, timing: &TimingParams) -> f64 {
        let per = one_measurement_time_ns(timing, &self.measurement);
        // Banks in parallel test `banks` rows at once.
        let groups = (self.rows as f64 / f64::from(self.measurement.banks)).ceil();
        per * groups * self.measurements as f64
    }

    /// Total campaign time in days.
    pub fn total_time_days(&self, timing: &TimingParams) -> f64 {
        self.total_time_ns(timing) / 1e9 / 86_400.0
    }

    /// Total campaign energy in joules.
    pub fn total_energy_j(&self, timing: &TimingParams, energy: &EnergyModel) -> f64 {
        let per = one_measurement_energy_nj(timing, &self.measurement, energy);
        let groups = (self.rows as f64 / f64::from(self.measurement.banks)).ceil();
        per * groups * self.measurements as f64 * 1e-9
    }
}

/// The paper's headline projection (§1): testing one row's RDT 94,467
/// times with an average RDT of 1,000 takes ≈ 9.5 s; this helper returns
/// the model's figure for any measurement count / mean RDT.
pub fn single_row_test_time_s(measurements: u64, mean_rdt: u64) -> f64 {
    // The Appendix-A methodology charges one Table-4 iteration
    // (initialize three rows, hammer at the mean RDT, read the victim)
    // per RDT measurement.
    let timing = TimingParams::ddr5();
    let spec = MeasurementSpec::rowhammer(mean_rdt);
    one_measurement_time_ns(&timing, &spec) * measurements as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_counts_match_table4_shape() {
        let c = commands_per_measurement(&MeasurementSpec::rowhammer(1000));
        assert_eq!(c.writes, 384); // 3 rows × 128 bursts
        assert_eq!(c.reads, 128);
        assert_eq!(c.acts, 4 + 2000);
        assert_eq!(c.pres, c.acts);
    }

    #[test]
    fn counts_scale_with_banks() {
        let one = commands_per_measurement(&MeasurementSpec::rowhammer(1000));
        let sixteen = commands_per_measurement(&MeasurementSpec::rowhammer(1000).with_banks(16));
        assert_eq!(sixteen.acts, one.acts * 16);
        assert_eq!(sixteen.writes, one.writes * 16);
    }

    #[test]
    fn hammer_dominates_time_at_high_counts() {
        let timing = TimingParams::ddr5();
        let small = one_measurement_time_ns(&timing, &MeasurementSpec::rowhammer(100));
        let large = one_measurement_time_ns(&timing, &MeasurementSpec::rowhammer(100_000));
        assert!(large > small * 100.0);
    }

    #[test]
    fn rowpress_is_much_slower() {
        let timing = TimingParams::ddr5();
        let rh = one_measurement_time_ns(&timing, &MeasurementSpec::rowhammer(1000));
        let rp = one_measurement_time_ns(&timing, &MeasurementSpec::rowpress(1000));
        // 7.8 µs vs 32 ns on-time: two orders of magnitude.
        assert!(rp / rh > 50.0, "ratio {}", rp / rh);
    }

    #[test]
    fn bank_parallelism_amortizes_time() {
        let timing = TimingParams::ddr5();
        let spec1 = CampaignSpec {
            measurement: MeasurementSpec::rowhammer(1000),
            rows: 1024,
            measurements: 10,
        };
        let spec16 = CampaignSpec {
            measurement: MeasurementSpec::rowhammer(1000).with_banks(16),
            rows: 1024,
            measurements: 10,
        };
        let t1 = spec1.total_time_ns(&timing);
        let t16 = spec16.total_time_ns(&timing);
        assert!(t16 < t1, "16-bank parallel testing must be faster overall");
        assert!(t16 > t1 / 16.0, "but not a free 16× (tRRD_S throttles)");
    }

    #[test]
    fn paper_scale_100k_measurements_takes_weeks() {
        // §1/Appendix: 100K measurements of each row of a 32-bank chip at
        // hammer count 1K lands in the tens of days.
        let timing = TimingParams::ddr5();
        let spec = CampaignSpec {
            measurement: MeasurementSpec::rowhammer(1000).with_banks(32),
            rows: 32 * 256 * 1024,
            measurements: 100_000,
        };
        let days = spec.total_time_days(&timing);
        assert!(days > 20.0 && days < 200.0, "got {days} days");
    }

    #[test]
    fn paper_scale_1k_measurements_takes_hours() {
        // Appendix: 1K measurements of a 32-bank chip ⇒ ~15 hours.
        let timing = TimingParams::ddr5();
        let spec = CampaignSpec {
            measurement: MeasurementSpec::rowhammer(1000).with_banks(32),
            rows: 32 * 256 * 1024,
            measurements: 1_000,
        };
        let hours = spec.total_time_days(&timing) * 24.0;
        assert!(hours > 5.0 && hours < 50.0, "got {hours} hours");
    }

    #[test]
    fn rowpress_campaign_takes_years() {
        // Appendix: RowPress at 7.8 µs for 100K measurements ⇒ years.
        let timing = TimingParams::ddr5();
        let spec = CampaignSpec {
            measurement: MeasurementSpec::rowpress(1000).with_banks(32),
            rows: 32 * 256 * 1024,
            measurements: 100_000,
        };
        let years = spec.total_time_days(&timing) / 365.0;
        assert!(years > 3.0, "got {years} years");
    }

    #[test]
    fn energy_scales_with_hammers() {
        let timing = TimingParams::ddr5();
        let e = EnergyModel::default();
        let small = one_measurement_energy_nj(&timing, &MeasurementSpec::rowhammer(100), &e);
        let large = one_measurement_energy_nj(&timing, &MeasurementSpec::rowhammer(10_000), &e);
        assert!(large > small * 20.0);
    }

    #[test]
    fn single_row_headline_projection() {
        // The paper: 94,467 measurements at mean RDT 1,000 ≈ 9.5 s.
        let s = single_row_test_time_s(94_467, 1_000);
        assert!(s > 5.0 && s < 20.0, "got {s} s (paper: ~9.5 s)");
    }

    #[test]
    fn campaign_energy_is_positive_and_scales() {
        let timing = TimingParams::ddr5();
        let e = EnergyModel::default();
        let base = CampaignSpec {
            measurement: MeasurementSpec::rowhammer(1000).with_banks(32),
            rows: 1024,
            measurements: 100,
        };
        let double = CampaignSpec { measurements: 200, ..base };
        assert!(base.total_energy_j(&timing, &e) > 0.0);
        assert!(
            (double.total_energy_j(&timing, &e) / base.total_energy_j(&timing, &e) - 2.0).abs()
                < 1e-9
        );
    }
}
