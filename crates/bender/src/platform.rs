//! The assembled test platform: device + timing + thermal rig +
//! interference controls (paper §3).
//!
//! A [`TestPlatform`] is the software analogue of the paper's
//! host-machine + FPGA + heater setup: it owns one device under test,
//! executes programs with JEDEC timing, regulates temperature, and
//! implements the §3.1 methodology of disabling interference sources
//! (periodic refresh → TRR, on-die ECC).

use vrd_dram::device::{DeviceConfig, DramDevice};
use vrd_dram::spec::ModuleSpec;
use vrd_dram::{DramError, RowBatchProfile, TestConditions};

use crate::estimate::EnergyModel;
use crate::program::{execute, ExecStats, Program, ProgramCache, ProgramKey};
use crate::routines::BURSTS_PER_ROW;
use crate::thermal::ThermalController;
use crate::timing::TimingParams;

/// One measurement epoch prepared for batched hammer sessions.
///
/// Wraps the device-side [`RowBatchProfile`] together with the
/// platform-side constants a session charges: the cached program keys the
/// scalar path would have fetched and the pre-folded per-program
/// time/energy figures, accumulated in the same `f64` operation order as
/// [`crate::program::execute`] so batched bookkeeping stays bitwise
/// identical to running the programs.
#[derive(Debug, Clone)]
pub struct BatchMeasurement {
    profile: RowBatchProfile,
    /// Init keys in session order: victim, below aggressor, above.
    init_keys: [ProgramKey; 3],
    /// Raw (unclamped) `t_AggOn` bits embedded in the hammer keys.
    hammer_t_on_bits: u64,
    /// Elapsed time of one init program (Act + 128 write bursts + Pre).
    init_elapsed_ns: f64,
    /// Energy of one init program.
    init_energy_nj: f64,
    /// Elapsed time per hammer activation (`max(t_AggOn, t_RAS) + t_RP`).
    hammer_per_act_ns: f64,
    /// Program-cache generation at which all three init keys were last
    /// proven cached; `None` (or a stale generation) means the next
    /// session must replay the init fetches in full.
    primed_generation: Option<u64>,
}

impl BatchMeasurement {
    /// The prepared device-side row profile.
    pub fn profile(&self) -> &RowBatchProfile {
        &self.profile
    }

    /// Measurement epoch the batch was prepared for.
    pub fn epoch(&self) -> u64 {
        self.profile.epoch()
    }
}

/// A DRAM module under test, with timing, thermal control, and
/// interference configuration.
#[derive(Debug)]
pub struct TestPlatform {
    device: DramDevice,
    spec: Option<ModuleSpec>,
    timing: TimingParams,
    thermal: ThermalController,
    refresh_enabled: bool,
    elapsed_ns: f64,
    next_refresh_ns: f64,
    energy: EnergyModel,
    energy_nj: f64,
    programs: ProgramCache,
    hammer_sessions: u64,
    measurement_epoch: u64,
}

impl TestPlatform {
    /// Assembles a platform around an existing device.
    pub fn new(device: DramDevice, timing: TimingParams) -> Self {
        let ambient = 25.0;
        TestPlatform {
            thermal: ThermalController::new(ambient, device.temperature_c()),
            device,
            spec: None,
            timing,
            refresh_enabled: false,
            elapsed_ns: 0.0,
            next_refresh_ns: 0.0,
            energy: EnergyModel::default(),
            energy_nj: 0.0,
            programs: ProgramCache::new(),
            hammer_sessions: 0,
            measurement_epoch: 0,
        }
    }

    /// Instantiates the platform for one of the paper's Table-1 modules.
    pub fn for_module(spec: ModuleSpec, seed: u64) -> Self {
        let module = vrd_dram::Module::new(spec.clone(), seed);
        let timing = TimingParams::for_family(&spec.family());
        let mut p = Self::new(module_into_device(module), timing);
        p.spec = Some(spec);
        p
    }

    /// Like [`for_module`](Self::for_module) with a reduced row size for
    /// fast tests and campaigns.
    pub fn for_module_with_row_bytes(spec: ModuleSpec, seed: u64, row_bytes: u32) -> Self {
        let module = vrd_dram::Module::new_with_row_bytes(spec.clone(), seed, row_bytes);
        let timing = TimingParams::for_family(&spec.family());
        let mut p = Self::new(module_into_device(module), timing);
        p.spec = Some(spec);
        p
    }

    /// A small self-contained platform for unit tests.
    pub fn small_test(seed: u64) -> Self {
        let mut cfg = DeviceConfig::small_test();
        cfg.vrd.median_rdt = 4_000.0;
        cfg.vrd.weak_cells_per_row = 3.0;
        Self::new(DramDevice::new(cfg, seed), TimingParams::ddr4())
    }

    /// The device under test.
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Mutable access to the device under test.
    pub fn device_mut(&mut self) -> &mut DramDevice {
        &mut self.device
    }

    /// The module spec, when the platform was built from Table 1.
    pub fn spec(&self) -> Option<&ModuleSpec> {
        self.spec.as_ref()
    }

    /// Reseeds the device's dynamics RNG (see
    /// [`DramDevice::reseed_dynamics`]). The weak-cell layout is
    /// unaffected; only the stochastic measurement dynamics restart from
    /// the given seed.
    pub fn reseed_dynamics(&mut self, seed: u64) {
        self.device.reseed_dynamics(seed);
    }

    /// The active timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Total simulated test time so far (ns).
    pub fn elapsed_ns(&self) -> f64 {
        self.elapsed_ns
    }

    /// Total simulated test energy so far (joules), from the Appendix-A
    /// per-command energy model plus background power over the elapsed
    /// time.
    pub fn energy_j(&self) -> f64 {
        (self.energy_nj + self.elapsed_ns * self.energy.background_mw * 1e-6) * 1e-9
    }

    /// Enables or disables periodic refresh. The paper's methodology
    /// disables it, which also disables on-die TRR (§3.1); enabling it
    /// here re-enables the TRR emulation as a real chip would.
    pub fn set_refresh_enabled(&mut self, enabled: bool) {
        self.refresh_enabled = enabled;
        self.device.set_trr_enabled(enabled);
        if enabled {
            self.next_refresh_ns = self.elapsed_ns + self.timing.t_refi;
        }
    }

    /// Whether periodic refresh is currently issued.
    pub fn refresh_enabled(&self) -> bool {
        self.refresh_enabled
    }

    /// Sets the target temperature and blocks until the thermal rig
    /// settles within ±0.5 °C (the settling time is *not* charged to the
    /// DRAM test time, matching how the paper heats before testing).
    pub fn set_temperature_c(&mut self, target_c: f64) {
        self.thermal.set_target_c(target_c);
        self.thermal.settle();
        self.device.set_temperature_c(self.thermal.temperature_c());
    }

    /// The chip temperature as reported by the thermal rig.
    pub fn temperature_c(&self) -> f64 {
        self.thermal.temperature_c()
    }

    /// Executes a program, charging its time to the platform clock and
    /// issuing any periodic refreshes that became due (when enabled).
    ///
    /// # Errors
    ///
    /// Propagates device command errors.
    pub fn run(&mut self, program: &Program) -> Result<ExecStats, DramError> {
        let stats = execute(&mut self.device, &self.timing, program)?;
        self.elapsed_ns += stats.elapsed_ns;
        self.energy_nj += stats.activations as f64 * self.energy.act_pre_nj
            + stats.column_bursts as f64 * self.energy.write_nj;
        if self.refresh_enabled {
            // Issue overdue refreshes (coarse: after the program, which
            // is accurate enough for programs shorter than tREFI and
            // conservative for longer ones).
            while self.next_refresh_ns <= self.elapsed_ns {
                self.device.refresh();
                self.elapsed_ns += self.timing.t_rfc;
                self.next_refresh_ns += self.timing.t_refi;
            }
        }
        Ok(stats)
    }

    /// Runs a row-initialization program through the program cache, so
    /// repeated measurements with identical parameters reuse the compiled
    /// command stream instead of rebuilding it.
    ///
    /// # Errors
    ///
    /// Propagates device command errors.
    pub fn run_init_row(
        &mut self,
        bank: usize,
        row: u32,
        fill: u8,
        bursts: u32,
    ) -> Result<ExecStats, DramError> {
        let program = self.programs.get_or_build(ProgramKey::Init { bank, row, fill, bursts });
        self.run(&program)
    }

    /// Runs a double-sided hammer program through the program cache (see
    /// [`run_init_row`](Self::run_init_row)).
    ///
    /// # Errors
    ///
    /// Propagates device command errors.
    pub fn run_double_sided_hammer(
        &mut self,
        bank: usize,
        aggr1: u32,
        aggr2: u32,
        count: u32,
        t_on_ns: f64,
    ) -> Result<ExecStats, DramError> {
        let key = ProgramKey::Hammer { bank, aggr1, aggr2, count, t_on_bits: t_on_ns.to_bits() };
        let program = self.programs.get_or_build(key);
        self.run(&program)
    }

    /// `(hits, builds)` counters of the internal program cache.
    pub fn program_cache_stats(&self) -> (u64, u64) {
        self.programs.stats()
    }

    /// Records one completed hammer session (init + hammer + read of a
    /// victim). The RDT search layers use this to compare how many
    /// sessions each search strategy spends per measurement.
    pub fn note_hammer_session(&mut self) {
        self.hammer_sessions += 1;
    }

    /// Total hammer sessions recorded on this platform.
    pub fn hammer_sessions(&self) -> u64 {
        self.hammer_sessions
    }

    /// Starts a new measurement epoch and returns its number (1-based).
    ///
    /// Epochs number the RDT measurements on this platform in order; the
    /// keyed dynamics mode draws per-measurement thresholds and trap
    /// catch-up steps from the epoch number, which is identical no matter
    /// which search strategy performs the measurement. The counter is
    /// *not* reset by [`reseed_dynamics`](Self::reseed_dynamics): a
    /// campaign reseeds per unit but epochs keep advancing, and the
    /// keyed draws depend on (seed, epoch) jointly.
    pub fn begin_measurement(&mut self) -> u64 {
        self.measurement_epoch += 1;
        self.measurement_epoch
    }

    /// Total measurement epochs begun on this platform.
    pub fn measurement_epochs(&self) -> u64 {
        self.measurement_epoch
    }

    /// Enters keyed-dynamics mode on the device for one hammer session of
    /// the given measurement epoch (see
    /// [`DramDevice::begin_keyed_session`]).
    pub fn begin_keyed_session(&mut self, epoch: u64, session: u64) {
        self.device.begin_keyed_session(epoch, session);
    }

    /// Prepares one measurement epoch for batched hammer sessions (see
    /// [`DramDevice::prepare_batch_epoch`]).
    ///
    /// On success the platform is left in keyed-dynamics mode for
    /// `epoch` and the returned [`BatchMeasurement`] drives
    /// [`run_batched_session`](Self::run_batched_session); callers end
    /// the keyed session when the measurement completes, exactly as on
    /// the scalar path. Returns `None` — leaving keyed mode untouched —
    /// whenever the scalar command path must be used instead (refresh
    /// interference enabled, or any device-side gate).
    pub fn prepare_batch_epoch(
        &mut self,
        epoch: u64,
        bank: usize,
        victim: u32,
        conditions: &TestConditions,
    ) -> Option<BatchMeasurement> {
        if self.refresh_enabled {
            return None;
        }
        self.begin_keyed_session(epoch, 0);
        let t_eff = conditions.t_agg_on_ns.max(self.timing.t_ras);
        let Some(profile) =
            self.device.prepare_batch_epoch(bank, victim, conditions.pattern, t_eff)
        else {
            self.end_keyed_session();
            return None;
        };
        // Fold one init program's stats in execute()'s exact `f64` order:
        // Act, first write burst, remaining bursts, Pre.
        let mut init_elapsed_ns = 0.0;
        init_elapsed_ns += self.timing.t_rcd;
        init_elapsed_ns += self.timing.t_ccd_l_wr;
        init_elapsed_ns += self.timing.t_ccd_l_wr * f64::from(BURSTS_PER_ROW - 1);
        init_elapsed_ns += self.timing.t_rp;
        let init_energy_nj =
            1.0 * self.energy.act_pre_nj + f64::from(BURSTS_PER_ROW) * self.energy.write_nj;
        let init_keys = [
            ProgramKey::Init {
                bank,
                row: profile.victim(),
                fill: profile.victim_fill(),
                bursts: BURSTS_PER_ROW,
            },
            ProgramKey::Init {
                bank,
                row: profile.below(),
                fill: profile.aggressor_fill(),
                bursts: BURSTS_PER_ROW,
            },
            ProgramKey::Init {
                bank,
                row: profile.above(),
                fill: profile.aggressor_fill(),
                bursts: BURSTS_PER_ROW,
            },
        ];
        Some(BatchMeasurement {
            profile,
            init_keys,
            hammer_t_on_bits: conditions.t_agg_on_ns.to_bits(),
            init_elapsed_ns,
            init_energy_nj,
            hammer_per_act_ns: t_eff + self.timing.t_rp,
            primed_generation: None,
        })
    }

    /// Runs one double-sided hammer session of a prepared batch epoch:
    /// counters, program-cache traffic, time, and energy advance exactly
    /// as the scalar init/hammer/read sequence would advance them, and
    /// the device replays the session's end state in one lane-compare
    /// pass. Returns whether the read observed any (post-ECC) bitflip.
    pub fn run_batched_session(&mut self, batch: &mut BatchMeasurement, hammer_count: u32) -> bool {
        self.note_hammer_session();
        // The init programs never change within an epoch; once all three
        // keys are proven cached (and no wholesale clear has happened
        // since), the fetches collapse to a hit-counter bump.
        if batch.primed_generation == Some(self.programs.generation()) {
            self.programs.note_hits(3);
        } else {
            let generation = self.programs.generation();
            for key in batch.init_keys {
                self.programs.touch(key);
            }
            batch.primed_generation =
                (self.programs.generation() == generation).then_some(generation);
        }
        for _ in 0..batch.init_keys.len() {
            self.elapsed_ns += batch.init_elapsed_ns;
            self.energy_nj += batch.init_energy_nj;
        }
        // The scalar path fetches the hammer program even for zero
        // hammers (the program is an empty loop), so the cache counters
        // only match if the batch path does too.
        self.programs.touch(ProgramKey::Hammer {
            bank: batch.profile.bank(),
            aggr1: batch.profile.below(),
            aggr2: batch.profile.above(),
            count: hammer_count,
            t_on_bits: batch.hammer_t_on_bits,
        });
        if hammer_count > 0 {
            let per_side = f64::from(hammer_count) * batch.hammer_per_act_ns;
            self.elapsed_ns += per_side + per_side;
            self.energy_nj += (2 * u64::from(hammer_count)) as f64 * self.energy.act_pre_nj;
        }
        self.device.batch_hammer_session(&batch.profile, hammer_count)
    }

    /// Leaves keyed-dynamics mode (see [`DramDevice::end_keyed_session`]).
    pub fn end_keyed_session(&mut self) {
        self.device.end_keyed_session();
    }

    /// Verifies the §3.1 preconditions for interference-free RDT
    /// measurement: refresh (and thus TRR) disabled and a test budget
    /// within one refresh window so no retention failures occur.
    pub fn interference_free(&self, planned_test_ns: f64) -> bool {
        !self.refresh_enabled && planned_test_ns <= self.timing.t_refw
    }
}

fn module_into_device(module: vrd_dram::Module) -> DramDevice {
    // Module exposes owned access through its parts.
    module.into_device()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_dram::{DataPattern, ModuleSpec};

    #[test]
    fn small_platform_runs_program() {
        let mut p = TestPlatform::small_test(1);
        let prog = Program::init_row(0, 10, 0x55, 128);
        let stats = p.run(&prog).unwrap();
        assert!(stats.elapsed_ns > 0.0);
        assert_eq!(p.elapsed_ns(), stats.elapsed_ns);
        assert!(p.energy_j() > 0.0);
    }

    #[test]
    fn energy_grows_with_hammering() {
        let mut p = TestPlatform::small_test(1);
        p.run(&Program::double_sided_hammer(0, 50, 52, 1_000, 35.0)).unwrap();
        let after_1k = p.energy_j();
        p.run(&Program::double_sided_hammer(0, 50, 52, 10_000, 35.0)).unwrap();
        assert!(p.energy_j() > after_1k * 5.0);
    }

    #[test]
    fn for_module_uses_standard_timing() {
        let spec = ModuleSpec::by_name("Chip0").unwrap();
        let p = TestPlatform::for_module_with_row_bytes(spec, 1, 256);
        assert_eq!(*p.timing(), TimingParams::hbm2());
        assert!(p.spec().is_some());
    }

    #[test]
    fn temperature_control_settles() {
        let mut p = TestPlatform::small_test(1);
        p.set_temperature_c(80.0);
        assert!((p.temperature_c() - 80.0).abs() <= 0.5);
        assert!((p.device().temperature_c() - 80.0).abs() <= 0.5);
    }

    #[test]
    fn refresh_fires_when_enabled() {
        let mut p = TestPlatform::small_test(1);
        p.set_refresh_enabled(true);
        // A hammer long enough to cross several tREFI intervals.
        let prog = Program::double_sided_hammer(0, 50, 52, 2_000, 35.0);
        p.run(&prog).unwrap();
        // 2000 hammers × 2 × ~48.75ns ≈ 195 µs → ~25 refreshes at 7.8 µs.
        assert!(p.elapsed_ns() > 150_000.0);
    }

    #[test]
    fn interference_free_requires_refresh_off() {
        let mut p = TestPlatform::small_test(1);
        assert!(p.interference_free(1_000_000.0));
        p.set_refresh_enabled(true);
        assert!(!p.interference_free(1_000_000.0));
        p.set_refresh_enabled(false);
        // Longer than a refresh window: retention failures possible.
        assert!(!p.interference_free(100_000_000_000.0));
    }

    #[test]
    fn refresh_prevents_flips_like_a_real_chip() {
        // With refresh enabled, a slow hammer (interrupted by refreshes)
        // must not flip; with refresh disabled it may.
        let spec = ModuleSpec::by_name("M1").unwrap();
        let mut p = TestPlatform::for_module_with_row_bytes(spec, 3, 256);
        p.set_refresh_enabled(true);
        let pattern = DataPattern::Checkered0;
        let victim = 1000u32;
        p.device_mut().write_row(0, victim, pattern.victim_byte());
        // Hammer in small chunks so refresh interleaves.
        for _ in 0..200 {
            let prog = Program::double_sided_hammer(0, victim - 1, victim + 1, 500, 35.0);
            p.run(&prog).unwrap();
        }
        let flips = p.device_mut().read_and_compare(0, victim, pattern.victim_byte());
        assert!(flips.is_empty(), "refresh must prevent slow-hammer flips");
    }
}
