//! The DRAM command set issued by the testing platform (paper §2.2).

use serde::{Deserialize, Serialize};

/// One DRAM command, addressed at bank/row granularity (column accesses
/// operate on the open row; the byte payload of a write is a uniform fill,
/// matching the Table-2 data patterns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DramCommand {
    /// Row activation: opens `row` in `bank`.
    Act {
        /// Target bank.
        bank: usize,
        /// Target row.
        row: u32,
    },
    /// Bank precharge: closes the open row of `bank`.
    Pre {
        /// Target bank.
        bank: usize,
    },
    /// Column write burst filling the open row of `bank` with `fill`.
    Wr {
        /// Target bank.
        bank: usize,
        /// Fill byte written to the whole burst.
        fill: u8,
    },
    /// Column read burst from the open row of `bank`.
    Rd {
        /// Target bank.
        bank: usize,
    },
    /// Refresh command (all banks).
    Ref,
}

impl DramCommand {
    /// Short mnemonic, as printed in command traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Act { .. } => "ACT",
            DramCommand::Pre { .. } => "PRE",
            DramCommand::Wr { .. } => "WR",
            DramCommand::Rd { .. } => "RD",
            DramCommand::Ref => "REF",
        }
    }
}

impl std::fmt::Display for DramCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramCommand::Act { bank, row } => write!(f, "ACT b{bank} r{row}"),
            DramCommand::Pre { bank } => write!(f, "PRE b{bank}"),
            DramCommand::Wr { bank, fill } => write!(f, "WR b{bank} 0x{fill:02X}"),
            DramCommand::Rd { bank } => write!(f, "RD b{bank}"),
            DramCommand::Ref => write!(f, "REF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(DramCommand::Act { bank: 0, row: 1 }.mnemonic(), "ACT");
        assert_eq!(DramCommand::Ref.mnemonic(), "REF");
    }

    #[test]
    fn display_format() {
        let c = DramCommand::Wr { bank: 2, fill: 0xAA };
        assert_eq!(c.to_string(), "WR b2 0xAA");
        assert_eq!(DramCommand::Act { bank: 1, row: 37 }.to_string(), "ACT b1 r37");
    }
}
