//! Synthetic memory-intensive workloads.
//!
//! The paper builds 15 four-core "highly memory intensive" mixes (LLC
//! MPKI ≥ 20) from SPEC CPU2006/2017, TPC, MediaBench, and YCSB. We have
//! no SPEC traces, so each core runs a synthetic address stream with the
//! knobs that determine mitigation overhead: memory intensity (MPKI),
//! row-buffer locality, bank spread, and a hot-row skew (high-activation
//! rows are what trip read-disturbance trackers).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Parameters of one core's synthetic access stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Last-level-cache misses per kilo-instruction.
    pub mpki: f64,
    /// Probability that the next access targets the same row as the
    /// previous access to that bank (row-buffer locality).
    pub row_locality: f64,
    /// Number of distinct rows in the working set per bank.
    pub rows_per_bank: u32,
    /// Zipf-like skew: fraction of misses hitting the hottest few rows.
    pub hot_fraction: f64,
    /// Number of hot rows per bank.
    pub hot_rows: u32,
}

impl WorkloadParams {
    /// A highly memory intensive profile (LLC MPKI ≥ 20), the paper's
    /// selection criterion.
    pub fn memory_intensive(mpki: f64) -> Self {
        WorkloadParams {
            mpki,
            row_locality: 0.4,
            rows_per_bank: 512,
            hot_fraction: 0.5,
            hot_rows: 4,
        }
    }

    /// The paper's 15 four-core mixes, approximated as parameter
    /// quadruples with varying intensity and locality.
    pub fn paper_mixes() -> Vec<[WorkloadParams; 4]> {
        let mut mixes = Vec::with_capacity(15);
        for i in 0..15u32 {
            let base = 20.0 + f64::from(i % 5) * 8.0;
            let locality = 0.25 + f64::from(i % 3) * 0.2;
            let mk = |mpki: f64, loc: f64| WorkloadParams {
                mpki,
                row_locality: loc,
                rows_per_bank: 256 + (i % 4) * 256,
                hot_fraction: 0.35 + f64::from(i % 4) * 0.1,
                hot_rows: 2 + i % 6,
            };
            mixes.push([
                mk(base, locality),
                mk(base + 10.0, locality * 0.8),
                mk(base + 5.0, (locality * 1.2).min(0.9)),
                mk(base + 15.0, locality),
            ]);
        }
        mixes
    }
}

/// One memory request address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Target bank.
    pub bank: usize,
    /// Target row.
    pub row: u32,
}

/// Stateful generator of one core's access stream.
#[derive(Debug, Clone)]
pub struct AccessStream {
    params: WorkloadParams,
    banks: usize,
    rng: ChaCha12Rng,
    last_row: Vec<Option<u32>>,
}

impl AccessStream {
    /// Creates a stream over `banks` banks, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or the parameters are out of range.
    pub fn new(params: WorkloadParams, banks: usize, seed: u64) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(params.mpki > 0.0, "mpki must be positive");
        assert!((0.0..=1.0).contains(&params.row_locality), "locality is a probability");
        assert!(params.rows_per_bank > 0 && params.hot_rows > 0, "row counts must be nonzero");
        AccessStream {
            params,
            banks,
            rng: ChaCha12Rng::seed_from_u64(seed),
            last_row: vec![None; banks],
        }
    }

    /// Instructions between memory requests (`1000 / mpki`).
    pub fn instructions_per_miss(&self) -> u64 {
        (1000.0 / self.params.mpki).round().max(1.0) as u64
    }

    /// Draws the next access.
    pub fn next_access(&mut self) -> Access {
        let bank = self.rng.gen_range(0..self.banks);
        if let Some(last) = self.last_row[bank] {
            if self.rng.gen_bool(self.params.row_locality) {
                return Access { bank, row: last };
            }
        }
        let row = if self.rng.gen_bool(self.params.hot_fraction) {
            self.rng.gen_range(0..self.params.hot_rows)
        } else {
            self.rng.gen_range(0..self.params.rows_per_bank)
        };
        self.last_row[bank] = Some(row);
        Access { bank, row }
    }
}

/// Picks one representative victim row per profile region for a spatial
/// attack workload: the physical row with the smallest spatial factor in
/// each region — the row a spatial-aware attacker targets, and the row
/// that constrains a defense configured for that region.
///
/// Covers `min(regions * region_rows, rows_covered)` rows and returns
/// `(row, spatial factor)` pairs in region order.
///
/// # Panics
///
/// Panics when `region_rows` or `rows_covered` is zero.
pub fn region_victim_rows(
    spatial: &vrd_dram::spatial::SpatialProfile,
    device_seed: u64,
    rows_covered: u32,
    region_rows: u32,
) -> Vec<(u32, f64)> {
    assert!(region_rows >= 1, "regions must hold at least one row");
    assert!(rows_covered >= 1, "need at least one covered row");
    (0..rows_covered.div_ceil(region_rows))
        .map(|region| {
            let start = region * region_rows;
            let end = start.saturating_add(region_rows).min(rows_covered);
            spatial.min_factor_row_in(start..end, device_seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let p = WorkloadParams::memory_intensive(30.0);
        let mut a = AccessStream::new(p, 8, 5);
        let mut b = AccessStream::new(p, 8, 5);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn instructions_per_miss_inverse_of_mpki() {
        let s = AccessStream::new(WorkloadParams::memory_intensive(40.0), 4, 0);
        assert_eq!(s.instructions_per_miss(), 25);
    }

    #[test]
    fn addresses_stay_in_range() {
        let p = WorkloadParams::memory_intensive(25.0);
        let mut s = AccessStream::new(p, 16, 1);
        for _ in 0..1000 {
            let a = s.next_access();
            assert!(a.bank < 16);
            assert!(a.row < p.rows_per_bank);
        }
    }

    #[test]
    fn hot_rows_dominate_with_full_skew() {
        let p = WorkloadParams {
            mpki: 30.0,
            row_locality: 0.0,
            rows_per_bank: 1000,
            hot_fraction: 1.0,
            hot_rows: 2,
        };
        let mut s = AccessStream::new(p, 2, 3);
        for _ in 0..500 {
            assert!(s.next_access().row < 2);
        }
    }

    #[test]
    fn locality_repeats_rows() {
        let p = WorkloadParams {
            mpki: 30.0,
            row_locality: 1.0,
            rows_per_bank: 1000,
            hot_fraction: 0.0,
            hot_rows: 1,
        };
        let mut s = AccessStream::new(p, 1, 9);
        let first = s.next_access();
        for _ in 0..100 {
            assert_eq!(s.next_access().row, first.row);
        }
    }

    #[test]
    fn region_victims_are_regional_minima() {
        let spatial = vrd_dram::spatial::SpatialProfile::wide();
        let victims = region_victim_rows(&spatial, 7, 4096, 512);
        assert_eq!(victims.len(), 8);
        for (i, &(row, factor)) in victims.iter().enumerate() {
            let start = i as u32 * 512;
            assert!((start..start + 512).contains(&row), "victim {row} outside region {i}");
            let region_min = spatial.min_factor_in(start..start + 512, 7);
            assert!((factor - region_min).abs() < 1e-15);
        }
        // A wide profile must produce spatially distinct regions.
        let factors: Vec<u64> = victims.iter().map(|&(_, f)| f.to_bits()).collect();
        let distinct: std::collections::BTreeSet<u64> = factors.iter().copied().collect();
        assert!(distinct.len() > 4, "regions must vary spatially");
    }

    #[test]
    fn paper_mixes_shape() {
        let mixes = WorkloadParams::paper_mixes();
        assert_eq!(mixes.len(), 15);
        for mix in &mixes {
            for core in mix {
                assert!(core.mpki >= 20.0, "mixes must be highly memory intensive");
            }
        }
    }
}
