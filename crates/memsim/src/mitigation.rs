//! Read-disturbance mitigation mechanisms (paper §6.3, Fig. 14).
//!
//! Four mechanisms, configured by an effective read-disturbance
//! threshold (the RDT minus any guardband):
//!
//! - [`Graphene`] — memory-controller-side Misra–Gries counter table;
//!   preventively refreshes an aggressor's neighbors when its counter
//!   reaches `RDT/4` \[Park et al., MICRO'20\].
//! - [`Para`] — stateless probabilistic refresh: every activation
//!   triggers a neighbor refresh with probability `∝ 1/RDT`
//!   \[Kim et al., ISCA'14\].
//! - [`Prac`] — in-DRAM per-row activation counters with back-off: when
//!   a row's counter crosses the alert threshold the DRAM raises ABO and
//!   the controller issues RFMs, blocking the channel
//!   \[JEDEC JESD79-5C\].
//! - [`Mint`] — minimalist in-DRAM tracker: one mitigation per tREFI
//!   suffices when the RDT exceeds the activations-per-tREFI bound;
//!   below it, periodic RFMs are inserted every `RDT/2` activations
//!   \[Qureshi et al., 2024\].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Action requested by a mitigation in response to an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationAction {
    /// Refresh the two neighbors of `(bank, row)` — blocks that bank for
    /// one RFM duration.
    RefreshNeighbors {
        /// Bank of the aggressor.
        bank: usize,
        /// Aggressor row.
        row: u32,
    },
    /// Block one bank for the given duration in nanoseconds (a per-bank
    /// RFM slot).
    BlockBank {
        /// Bank to block.
        bank: usize,
        /// Block duration (ns).
        duration: u64,
    },
    /// Block the whole channel (ABO back-off / RFM-all) for the given
    /// duration in nanoseconds.
    BlockChannel {
        /// Block duration (ns).
        duration: u64,
    },
}

/// A read-disturbance mitigation mechanism.
pub trait Mitigation: std::fmt::Debug {
    /// Called on every row activation; returns preventive actions.
    fn on_activate(&mut self, bank: usize, row: u32, now: u64) -> Vec<MitigationAction>;

    /// Called on every periodic refresh; returns preventive actions
    /// (counters may also be maintained here).
    fn on_refresh(&mut self, now: u64) -> Vec<MitigationAction> {
        let _ = now;
        Vec::new()
    }

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Which mitigation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationKind {
    /// No mitigation (the baseline system).
    None,
    /// Graphene counter tables.
    Graphene,
    /// PARA probabilistic refresh.
    Para,
    /// PRAC per-row counters with back-off.
    Prac,
    /// MINT minimalist in-DRAM tracker.
    Mint,
    /// BlockHammer-style throttling of rapidly activated rows (an
    /// extension beyond the paper's Fig. 14 set; the paper cites
    /// throttling defenses in §2.3).
    BlockHammer,
}

impl MitigationKind {
    /// All mitigations evaluated in Fig. 14 (excluding the baseline).
    pub const EVALUATED: [MitigationKind; 4] = [
        MitigationKind::Graphene,
        MitigationKind::Prac,
        MitigationKind::Para,
        MitigationKind::Mint,
    ];

    /// The extended set including throttling (BlockHammer).
    pub const EXTENDED: [MitigationKind; 5] = [
        MitigationKind::Graphene,
        MitigationKind::Prac,
        MitigationKind::Para,
        MitigationKind::Mint,
        MitigationKind::BlockHammer,
    ];

    /// Instantiates the mechanism for an effective threshold.
    pub fn build(self, threshold: u32, banks: usize, seed: u64) -> Box<dyn Mitigation> {
        match self {
            MitigationKind::None => Box::new(NoMitigation),
            MitigationKind::Graphene => Box::new(Graphene::new(threshold, banks)),
            MitigationKind::Para => Box::new(Para::new(threshold, seed)),
            MitigationKind::Prac => Box::new(Prac::new(threshold)),
            MitigationKind::Mint => Box::new(Mint::new(threshold)),
            MitigationKind::BlockHammer => Box::new(BlockHammer::new(threshold)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MitigationKind::None => "Baseline",
            MitigationKind::Graphene => "Graphene",
            MitigationKind::Para => "PARA",
            MitigationKind::Prac => "PRAC",
            MitigationKind::Mint => "MINT",
            MitigationKind::BlockHammer => "BlockHammer",
        }
    }
}

/// The baseline: never acts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMitigation;

impl Mitigation for NoMitigation {
    fn on_activate(&mut self, _bank: usize, _row: u32, _now: u64) -> Vec<MitigationAction> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Baseline"
    }
}

/// Graphene: per-bank Misra–Gries tables.
#[derive(Debug)]
pub struct Graphene {
    /// Preventive-refresh trigger count (`RDT / 4`).
    trigger: u32,
    /// Counter table capacity per bank.
    capacity: usize,
    tables: Vec<HashMap<u32, u32>>,
    /// Misra–Gries spillover counters.
    spill: Vec<u32>,
}

impl Graphene {
    /// Builds tables sized for the activation budget of one refresh
    /// window (`tREFW / tRC` activations) divided by the trigger count.
    pub fn new(threshold: u32, banks: usize) -> Self {
        let trigger = (threshold / 4).max(1);
        let acts_per_window = 32_000_000 / 46; // DDR5 tREFW / tRC
        let capacity = ((acts_per_window / u64::from(trigger)) as usize).clamp(16, 4096);
        Graphene {
            trigger,
            capacity,
            tables: (0..banks).map(|_| HashMap::new()).collect(),
            spill: vec![0; banks],
        }
    }

    /// The preventive-refresh trigger count.
    pub fn trigger(&self) -> u32 {
        self.trigger
    }
}

impl Mitigation for Graphene {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        let table = &mut self.tables[bank];
        let count = if let Some(c) = table.get_mut(&row) {
            *c += 1;
            *c
        } else if table.len() < self.capacity {
            table.insert(row, self.spill[bank] + 1);
            self.spill[bank] + 1
        } else {
            // Misra–Gries: increment the spillover and evict entries that
            // fall to it.
            self.spill[bank] += 1;
            let spill = self.spill[bank];
            table.retain(|_, c| *c > spill);
            return Vec::new();
        };
        if count >= self.trigger {
            table.insert(row, 0);
            vec![MitigationAction::RefreshNeighbors { bank, row }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "Graphene"
    }
}

/// PARA: refresh neighbors with probability `p = 10 / RDT` per
/// activation.
#[derive(Debug)]
pub struct Para {
    p: f64,
    rng: ChaCha12Rng,
}

impl Para {
    /// Probability constant: `p = PARA_CONSTANT / threshold`. The value
    /// follows the security argument that an aggressor must survive
    /// `threshold` activations unrefreshed with negligible probability:
    /// `(1 - p)^T < 1e-13` gives `p ≈ 30 / T`.
    pub const PARA_CONSTANT: f64 = 30.0;

    /// Creates PARA for the given effective threshold.
    pub fn new(threshold: u32, seed: u64) -> Self {
        Para {
            p: (Self::PARA_CONSTANT / f64::from(threshold.max(1))).min(1.0),
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// The per-activation refresh probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl Mitigation for Para {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        if self.rng.gen_bool(self.p) {
            vec![MitigationAction::RefreshNeighbors { bank, row }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "PARA"
    }
}

/// PRAC: per-row activation counters with alert back-off.
#[derive(Debug)]
pub struct Prac {
    /// Alert threshold (three quarters of the effective RDT — the JEDEC
    /// NBO margin leaves room for in-flight activations).
    alert: u32,
    counters: HashMap<(usize, u32), u32>,
    /// Channel-wide stall of the ABO handshake (ns).
    backoff_ns: u64,
}

impl Prac {
    /// Creates PRAC for the given effective threshold.
    pub fn new(threshold: u32) -> Self {
        Prac { alert: (threshold * 3 / 4).max(1), counters: HashMap::new(), backoff_ns: 100 }
    }
}

impl Mitigation for Prac {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        let c = self.counters.entry((bank, row)).or_insert(0);
        *c += 1;
        if *c >= self.alert {
            *c = 0;
            // The alerted DRAM refreshes the aggressor's neighbors during
            // the RFM the controller issues, and the ABO handshake stalls
            // the channel briefly.
            vec![
                MitigationAction::RefreshNeighbors { bank, row },
                MitigationAction::BlockChannel { duration: self.backoff_ns },
            ]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "PRAC"
    }
}

/// MINT: one tracked mitigation per tREFI, plus inserted RFMs when the
/// threshold is below the per-tREFI activation bound.
#[derive(Debug)]
pub struct Mint {
    /// Activations between inserted RFMs; `None` when the threshold is
    /// high enough that the per-REF mitigation alone is secure.
    rfm_interval: Option<u32>,
    acts: u32,
    /// RFM duration (ns).
    rfm_ns: u64,
    /// The row MINT currently tracks for the REF-time mitigation.
    selected: Option<(usize, u32)>,
}

impl Mint {
    /// Activations that fit in one tREFI at back-to-back row cycles.
    pub const ACTS_PER_TREFI: u32 = 3900 / 46;

    /// Creates MINT for the given effective threshold.
    pub fn new(threshold: u32) -> Self {
        let rfm_interval =
            if threshold >= Self::ACTS_PER_TREFI { None } else { Some((threshold / 2).max(1)) };
        Mint { rfm_interval, acts: 0, rfm_ns: 350, selected: None }
    }

    /// Whether this configuration inserts extra RFMs.
    pub fn inserts_rfms(&self) -> bool {
        self.rfm_interval.is_some()
    }
}

impl Mitigation for Mint {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        // Reservoir-style selection: remember the most recent activation
        // (a 1-deep uniform sampler is enough for the overhead study).
        self.selected = Some((bank, row));
        if let Some(interval) = self.rfm_interval {
            self.acts += 1;
            if self.acts >= interval {
                self.acts = 0;
                return vec![MitigationAction::BlockChannel { duration: self.rfm_ns }];
            }
        }
        Vec::new()
    }

    fn on_refresh(&mut self, _now: u64) -> Vec<MitigationAction> {
        // The per-REF mitigation refreshes the sampled row's neighbors
        // inside the REF envelope — modeled as one neighbor refresh.
        match self.selected.take() {
            Some((bank, row)) => vec![MitigationAction::RefreshNeighbors { bank, row }],
            None => Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "MINT"
    }
}

/// BlockHammer-style throttling: rows whose activation count within a
/// blacklisting window exceeds a quota derived from the threshold get
/// their subsequent activations delayed, so the row physically cannot
/// reach the threshold before the refresh window resets it.
#[derive(Debug)]
pub struct BlockHammer {
    /// Activation quota per window before throttling engages.
    quota: u32,
    /// Throttle delay applied per over-quota activation (ns).
    throttle_ns: u64,
    counters: HashMap<(usize, u32), u32>,
    /// Activations seen since the last window reset.
    window_acts: u64,
    /// Window length in activations (≈ one refresh window of row cycles).
    window_len: u64,
}

impl BlockHammer {
    /// Creates BlockHammer for the given effective threshold.
    pub fn new(threshold: u32) -> Self {
        // The row may receive at most `threshold` activations per
        // refresh window; throttle from half that, with a delay sized so
        // the remaining budget cannot be spent within the window.
        let quota = (threshold / 2).max(1);
        let window_len = 32_000_000 / 46; // tREFW / tRC activations
        let spare = u64::from(quota);
        // Delay per throttled ACT so `spare` more ACTs span > tREFW.
        let throttle_ns = (32_000_000 / spare.max(1)).max(100);
        BlockHammer { quota, throttle_ns, counters: HashMap::new(), window_acts: 0, window_len }
    }

    /// The activation quota before throttling.
    pub fn quota(&self) -> u32 {
        self.quota
    }
}

impl Mitigation for BlockHammer {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        self.window_acts += 1;
        if self.window_acts >= self.window_len {
            self.window_acts = 0;
            self.counters.clear();
        }
        let c = self.counters.entry((bank, row)).or_insert(0);
        *c += 1;
        if *c > self.quota {
            vec![MitigationAction::BlockBank { bank, duration: self.throttle_ns }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "BlockHammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_never_acts() {
        let mut m = MitigationKind::None.build(128, 4, 0);
        for i in 0..1000 {
            assert!(m.on_activate(0, i % 7, u64::from(i)).is_empty());
        }
    }

    #[test]
    fn graphene_triggers_at_quarter_threshold() {
        let mut g = Graphene::new(1024, 2);
        assert_eq!(g.trigger(), 256);
        let mut refreshes = 0;
        for _ in 0..256 {
            refreshes += g.on_activate(0, 42, 0).len();
        }
        assert_eq!(refreshes, 1, "the 256th activation of one row must trigger");
    }

    #[test]
    fn graphene_tracks_heavy_hitters_despite_noise() {
        let mut g = Graphene::new(1024, 1);
        let mut refreshed_hot = false;
        for i in 0..100_000u32 {
            // One hot row hammered among a stream of one-off rows.
            let row = if i % 3 == 0 { 7 } else { 1000 + i };
            for a in g.on_activate(0, row, 0) {
                if a == (MitigationAction::RefreshNeighbors { bank: 0, row: 7 }) {
                    refreshed_hot = true;
                }
            }
        }
        assert!(refreshed_hot, "Graphene must catch the heavy hitter");
    }

    #[test]
    fn para_probability_scales_inverse_threshold() {
        let p_high = Para::new(1024, 0);
        let p_low = Para::new(128, 0);
        assert!((p_high.probability() - 30.0 / 1024.0).abs() < 1e-12);
        assert!((p_low.probability() - 30.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn para_empirical_rate_matches_p() {
        let mut para = Para::new(300, 9); // p = 0.1
        let mut hits = 0;
        for i in 0..20_000u32 {
            hits += para.on_activate(0, i, 0).len();
        }
        let rate = f64::from(hits as u32) / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn prac_backs_off_at_alert() {
        let mut prac = Prac::new(128);
        let mut actions = Vec::new();
        for _ in 0..96 {
            actions = prac.on_activate(1, 5, 0);
        }
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[1], MitigationAction::BlockChannel { .. }));
        // Counter reset: the next 95 activations are free.
        for _ in 0..95 {
            assert!(prac.on_activate(1, 5, 0).is_empty());
        }
    }

    #[test]
    fn mint_inserts_no_rfms_at_high_threshold() {
        let mint = Mint::new(1024);
        assert!(!mint.inserts_rfms());
        let mut m = Mint::new(1024);
        for i in 0..10_000u32 {
            assert!(m.on_activate(0, i % 3, 0).is_empty());
        }
    }

    #[test]
    fn mint_inserts_rfms_at_low_threshold() {
        // Effective threshold 64 < ACTS_PER_TREFI (84): RFM every 32 acts.
        let mut m = Mint::new(64);
        assert!(m.inserts_rfms());
        let mut blocks = 0;
        for i in 0..320u32 {
            for a in m.on_activate(0, i, 0) {
                if matches!(a, MitigationAction::BlockChannel { .. }) {
                    blocks += 1;
                }
            }
        }
        assert_eq!(blocks, 10);
    }

    #[test]
    fn mint_mitigates_sampled_row_at_refresh() {
        let mut m = Mint::new(1024);
        m.on_activate(3, 77, 0);
        let actions = m.on_refresh(3900);
        assert_eq!(actions, vec![MitigationAction::RefreshNeighbors { bank: 3, row: 77 }]);
        assert!(m.on_refresh(7800).is_empty(), "nothing sampled since");
    }

    #[test]
    fn kind_names() {
        assert_eq!(MitigationKind::Graphene.name(), "Graphene");
        assert_eq!(MitigationKind::EVALUATED.len(), 4);
        assert_eq!(MitigationKind::EXTENDED.len(), 5);
        assert_eq!(MitigationKind::BlockHammer.name(), "BlockHammer");
    }

    #[test]
    fn blockhammer_throttles_over_quota() {
        let mut bh = BlockHammer::new(128);
        assert_eq!(bh.quota(), 64);
        for _ in 0..64 {
            assert!(bh.on_activate(0, 9, 0).is_empty());
        }
        let actions = bh.on_activate(0, 9, 0);
        assert!(matches!(actions[..], [MitigationAction::BlockBank { bank: 0, .. }]));
    }

    #[test]
    fn blockhammer_ignores_benign_rows() {
        let mut bh = BlockHammer::new(1024);
        for i in 0..10_000u32 {
            assert!(bh.on_activate(0, i, 0).is_empty(), "one-shot rows never throttle");
        }
    }

    #[test]
    fn blockhammer_window_resets_counters() {
        let mut bh = BlockHammer::new(64);
        // Exceed the quota, then push past the window length with other
        // rows; the hot row's counter must clear.
        for _ in 0..40 {
            bh.on_activate(0, 1, 0);
        }
        let window = 32_000_000 / 46;
        for i in 0..window as u32 {
            bh.on_activate(0, 1000 + i, 0);
        }
        assert!(bh.on_activate(0, 1, 0).is_empty(), "window reset must clear counters");
    }
}
