//! Read-disturbance mitigation mechanisms (paper §6.3, Fig. 14).
//!
//! Four mechanisms, configured by an effective read-disturbance
//! threshold (the RDT minus any guardband):
//!
//! - [`Graphene`] — memory-controller-side Misra–Gries counter table;
//!   preventively refreshes an aggressor's neighbors when its counter
//!   reaches `RDT/4` \[Park et al., MICRO'20\].
//! - [`Para`] — stateless probabilistic refresh: every activation
//!   triggers a neighbor refresh with probability `∝ 1/RDT`
//!   \[Kim et al., ISCA'14\].
//! - [`Prac`] — in-DRAM per-row activation counters with back-off: when
//!   a row's counter crosses the alert threshold the DRAM raises ABO and
//!   the controller issues RFMs, blocking the channel
//!   \[JEDEC JESD79-5C\].
//! - [`Mint`] — minimalist in-DRAM tracker: one mitigation per tREFI
//!   suffices when the RDT exceeds the activations-per-tREFI bound;
//!   below it, periodic RFMs are inserted every `RDT/2` activations
//!   \[Qureshi et al., 2024\].
//!
//! Every mechanism is *profile-driven*: it consults a
//! [`MitigationProfile`] for the effective threshold of the row being
//! activated, so spatially strong regions trigger less often. A flat
//! profile (one threshold everywhere) reproduces the classical uniform
//! behavior action-for-action; build uniform mechanisms with
//! [`MitigationKind::build_with`] and profile-aware ones with
//! [`MitigationKind::build_with_profile`].

use crate::profile::MitigationProfile;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Action requested by a mitigation in response to an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationAction {
    /// Refresh the two neighbors of `(bank, row)` — blocks that bank for
    /// one RFM duration.
    RefreshNeighbors {
        /// Bank of the aggressor.
        bank: usize,
        /// Aggressor row.
        row: u32,
    },
    /// Block one bank for the given duration in nanoseconds (a per-bank
    /// RFM slot).
    BlockBank {
        /// Bank to block.
        bank: usize,
        /// Block duration (ns).
        duration: u64,
    },
    /// Block the whole channel (ABO back-off / RFM-all) for the given
    /// duration in nanoseconds.
    BlockChannel {
        /// Block duration (ns).
        duration: u64,
    },
}

/// A read-disturbance mitigation mechanism.
pub trait Mitigation: std::fmt::Debug {
    /// Called on every row activation; returns preventive actions.
    fn on_activate(&mut self, bank: usize, row: u32, now: u64) -> Vec<MitigationAction>;

    /// Called on every periodic refresh; returns preventive actions
    /// (counters may also be maintained here).
    fn on_refresh(&mut self, now: u64) -> Vec<MitigationAction> {
        let _ = now;
        Vec::new()
    }

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Which mitigation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationKind {
    /// No mitigation (the baseline system).
    None,
    /// Graphene counter tables.
    Graphene,
    /// PARA probabilistic refresh.
    Para,
    /// PRAC per-row counters with back-off.
    Prac,
    /// MINT minimalist in-DRAM tracker.
    Mint,
    /// BlockHammer-style throttling of rapidly activated rows (an
    /// extension beyond the paper's Fig. 14 set; the paper cites
    /// throttling defenses in §2.3).
    BlockHammer,
}

/// Configuration for instantiating a mitigation mechanism.
///
/// Replaces the positional `(threshold, banks, seed)` triple of the
/// removed `MitigationKind::build` — which silently ignored `banks`
/// for the bank-agnostic mechanisms — with named knobs and room to grow.
///
/// `#[non_exhaustive]`: construct via [`MitigationConfig::default`] or
/// [`MitigationConfig::builder`], so future fields are not breaking
/// changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct MitigationConfig {
    /// Effective read-disturbance threshold (RDT minus guardband). When
    /// building with [`MitigationKind::build_with_profile`] the
    /// profile's per-region thresholds take its place.
    pub threshold: u32,
    /// Banks in the channel. Sizes Graphene's per-bank tables; the
    /// bank-agnostic mechanisms (PARA, PRAC, MINT, BlockHammer) key
    /// their state off the `(bank, row)` pairs they observe instead.
    pub banks: usize,
    /// Seed for the probabilistic mechanisms (PARA).
    pub seed: u64,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig { threshold: 1024, banks: 16, seed: 0 }
    }
}

impl MitigationConfig {
    /// A builder seeded with the defaults.
    pub fn builder() -> MitigationConfigBuilder {
        MitigationConfigBuilder { cfg: MitigationConfig::default() }
    }

    /// A builder seeded with this configuration's values.
    pub fn to_builder(&self) -> MitigationConfigBuilder {
        MitigationConfigBuilder { cfg: self.clone() }
    }
}

/// Builder for [`MitigationConfig`]; obtained from
/// [`MitigationConfig::builder`] or [`MitigationConfig::to_builder`].
#[derive(Debug, Clone)]
pub struct MitigationConfigBuilder {
    cfg: MitigationConfig,
}

impl MitigationConfigBuilder {
    /// Sets the effective threshold.
    pub fn threshold(mut self, threshold: u32) -> Self {
        self.cfg.threshold = threshold;
        self
    }

    /// Sets the bank count.
    pub fn banks(mut self, banks: usize) -> Self {
        self.cfg.banks = banks;
        self
    }

    /// Sets the seed for probabilistic mechanisms.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the threshold or bank count is zero.
    pub fn build(self) -> MitigationConfig {
        assert!(self.cfg.threshold >= 1, "threshold must be positive");
        assert!(self.cfg.banks >= 1, "need at least one bank");
        self.cfg
    }
}

impl MitigationKind {
    /// All mitigations evaluated in Fig. 14 (excluding the baseline).
    pub const EVALUATED: [MitigationKind; 4] = [
        MitigationKind::Graphene,
        MitigationKind::Prac,
        MitigationKind::Para,
        MitigationKind::Mint,
    ];

    /// The extended set including throttling (BlockHammer).
    pub const EXTENDED: [MitigationKind; 5] = [
        MitigationKind::Graphene,
        MitigationKind::Prac,
        MitigationKind::Para,
        MitigationKind::Mint,
        MitigationKind::BlockHammer,
    ];

    /// Instantiates the mechanism with one uniform threshold
    /// (`cfg.threshold` everywhere).
    pub fn build_with(self, cfg: &MitigationConfig) -> Box<dyn Mitigation> {
        self.build_with_profile(cfg, &MitigationProfile::flat(cfg.threshold))
    }

    /// Instantiates the mechanism with per-region thresholds from a
    /// [`MitigationProfile`]. The profile overrides `cfg.threshold`;
    /// `cfg.banks` and `cfg.seed` still apply. With a flat profile the
    /// result is action-for-action identical to [`build_with`].
    ///
    /// [`build_with`]: MitigationKind::build_with
    pub fn build_with_profile(
        self,
        cfg: &MitigationConfig,
        profile: &MitigationProfile,
    ) -> Box<dyn Mitigation> {
        match self {
            MitigationKind::None => Box::new(NoMitigation),
            MitigationKind::Graphene => {
                Box::new(Graphene::with_profile(profile.clone(), cfg.banks))
            }
            MitigationKind::Para => Box::new(Para::with_profile(profile.clone(), cfg.seed)),
            MitigationKind::Prac => Box::new(Prac::with_profile(profile.clone())),
            MitigationKind::Mint => Box::new(Mint::with_profile(profile.clone())),
            MitigationKind::BlockHammer => Box::new(BlockHammer::with_profile(profile.clone())),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MitigationKind::None => "Baseline",
            MitigationKind::Graphene => "Graphene",
            MitigationKind::Para => "PARA",
            MitigationKind::Prac => "PRAC",
            MitigationKind::Mint => "MINT",
            MitigationKind::BlockHammer => "BlockHammer",
        }
    }
}

/// The baseline: never acts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMitigation;

impl Mitigation for NoMitigation {
    fn on_activate(&mut self, _bank: usize, _row: u32, _now: u64) -> Vec<MitigationAction> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Baseline"
    }
}

/// Graphene: per-bank Misra–Gries tables.
#[derive(Debug)]
pub struct Graphene {
    thresholds: MitigationProfile,
    /// Counter table capacity per bank (sized for the worst-case
    /// trigger, so the weakest region stays fully tracked).
    capacity: usize,
    tables: Vec<HashMap<u32, u32>>,
    /// Misra–Gries spillover counters.
    spill: Vec<u32>,
}

impl Graphene {
    /// Uniform Graphene: one effective threshold everywhere.
    pub fn new(threshold: u32, banks: usize) -> Self {
        Graphene::with_profile(MitigationProfile::flat(threshold), banks)
    }

    /// Profile-driven Graphene: each row's preventive-refresh trigger is
    /// a quarter of its region's threshold. Tables are sized for the
    /// activation budget of one refresh window (`tREFW / tRC`
    /// activations) divided by the worst-case trigger.
    pub fn with_profile(thresholds: MitigationProfile, banks: usize) -> Self {
        let trigger = (thresholds.min_threshold() / 4).max(1);
        let acts_per_window = 32_000_000 / 46; // DDR5 tREFW / tRC
        let capacity = ((acts_per_window / u64::from(trigger)) as usize).clamp(16, 4096);
        Graphene {
            thresholds,
            capacity,
            tables: (0..banks).map(|_| HashMap::new()).collect(),
            spill: vec![0; banks],
        }
    }

    /// The worst-case (weakest-region) preventive-refresh trigger count.
    pub fn trigger(&self) -> u32 {
        (self.thresholds.min_threshold() / 4).max(1)
    }

    /// The preventive-refresh trigger count for one row.
    pub fn trigger_for(&self, row: u32) -> u32 {
        (self.thresholds.threshold_for(row) / 4).max(1)
    }
}

impl Mitigation for Graphene {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        let trigger = self.trigger_for(row);
        let table = &mut self.tables[bank];
        let count = if let Some(c) = table.get_mut(&row) {
            *c += 1;
            *c
        } else if table.len() < self.capacity {
            table.insert(row, self.spill[bank] + 1);
            self.spill[bank] + 1
        } else {
            // Misra–Gries: increment the spillover and evict entries that
            // fall to it.
            self.spill[bank] += 1;
            let spill = self.spill[bank];
            table.retain(|_, c| *c > spill);
            return Vec::new();
        };
        if count >= trigger {
            table.insert(row, 0);
            vec![MitigationAction::RefreshNeighbors { bank, row }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "Graphene"
    }
}

/// PARA: refresh neighbors with probability `p ∝ 1 / RDT` per
/// activation.
#[derive(Debug)]
pub struct Para {
    thresholds: MitigationProfile,
    rng: ChaCha12Rng,
}

impl Para {
    /// Probability constant: `p = PARA_CONSTANT / threshold`. The value
    /// follows the security argument that an aggressor must survive
    /// `threshold` activations unrefreshed with negligible probability:
    /// `(1 - p)^T < 1e-13` gives `p ≈ 30 / T`.
    pub const PARA_CONSTANT: f64 = 30.0;

    /// Uniform PARA: one effective threshold everywhere.
    pub fn new(threshold: u32, seed: u64) -> Self {
        Para::with_profile(MitigationProfile::flat(threshold), seed)
    }

    /// Profile-driven PARA: each activation rolls with the probability
    /// derived from the activated row's region threshold, on one shared
    /// RNG stream — exactly one draw per activation, so a flat profile
    /// replays the uniform stream bit-for-bit.
    pub fn with_profile(thresholds: MitigationProfile, seed: u64) -> Self {
        Para { thresholds, rng: ChaCha12Rng::seed_from_u64(seed) }
    }

    fn p_of(threshold: u32) -> f64 {
        (Self::PARA_CONSTANT / f64::from(threshold.max(1))).min(1.0)
    }

    /// The worst-case (weakest-region) per-activation refresh
    /// probability.
    pub fn probability(&self) -> f64 {
        Self::p_of(self.thresholds.min_threshold())
    }

    /// The per-activation refresh probability for one row.
    pub fn probability_for(&self, row: u32) -> f64 {
        Self::p_of(self.thresholds.threshold_for(row))
    }
}

impl Mitigation for Para {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        let p = Self::p_of(self.thresholds.threshold_for(row));
        if self.rng.gen_bool(p) {
            vec![MitigationAction::RefreshNeighbors { bank, row }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "PARA"
    }
}

/// PRAC: per-row activation counters with alert back-off.
#[derive(Debug)]
pub struct Prac {
    thresholds: MitigationProfile,
    counters: HashMap<(usize, u32), u32>,
    /// Channel-wide stall of the ABO handshake (ns).
    backoff_ns: u64,
}

impl Prac {
    /// Uniform PRAC: one effective threshold everywhere.
    pub fn new(threshold: u32) -> Self {
        Prac::with_profile(MitigationProfile::flat(threshold))
    }

    /// Profile-driven PRAC: each row alerts at three quarters of its
    /// region's threshold (the JEDEC NBO margin leaves room for
    /// in-flight activations).
    pub fn with_profile(thresholds: MitigationProfile) -> Self {
        Prac { thresholds, counters: HashMap::new(), backoff_ns: 100 }
    }

    /// The alert threshold for one row.
    pub fn alert_for(&self, row: u32) -> u32 {
        ((u64::from(self.thresholds.threshold_for(row)) * 3 / 4) as u32).max(1)
    }
}

impl Mitigation for Prac {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        let alert = self.alert_for(row);
        let c = self.counters.entry((bank, row)).or_insert(0);
        *c += 1;
        if *c >= alert {
            *c = 0;
            // The alerted DRAM refreshes the aggressor's neighbors during
            // the RFM the controller issues, and the ABO handshake stalls
            // the channel briefly.
            vec![
                MitigationAction::RefreshNeighbors { bank, row },
                MitigationAction::BlockChannel { duration: self.backoff_ns },
            ]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "PRAC"
    }
}

/// MINT: one tracked mitigation per tREFI, plus inserted RFMs when the
/// threshold is below the per-tREFI activation bound.
#[derive(Debug)]
pub struct Mint {
    thresholds: MitigationProfile,
    /// RFM interval currently owed: the smallest interval among the
    /// regions activated since the last inserted RFM; `None` when no
    /// activated region needs inserted RFMs.
    pending_interval: Option<u32>,
    acts: u32,
    /// RFM duration (ns).
    rfm_ns: u64,
    /// The row MINT currently tracks for the REF-time mitigation.
    selected: Option<(usize, u32)>,
}

impl Mint {
    /// Activations that fit in one tREFI at back-to-back row cycles.
    pub const ACTS_PER_TREFI: u32 = 3900 / 46;

    /// Uniform MINT: one effective threshold everywhere.
    pub fn new(threshold: u32) -> Self {
        Mint::with_profile(MitigationProfile::flat(threshold))
    }

    /// Profile-driven MINT: regions whose threshold is below the
    /// per-tREFI activation bound owe inserted RFMs at that region's
    /// interval; activation streams confined to strong regions insert
    /// none. The owed interval is the minimum over regions activated
    /// since the last RFM, so an all-equal-threshold profile reproduces
    /// the uniform RFM schedule exactly.
    pub fn with_profile(thresholds: MitigationProfile) -> Self {
        Mint { thresholds, pending_interval: None, acts: 0, rfm_ns: 350, selected: None }
    }

    fn interval_of(threshold: u32) -> Option<u32> {
        if threshold >= Self::ACTS_PER_TREFI {
            None
        } else {
            Some((threshold / 2).max(1))
        }
    }

    /// Whether the worst-case (weakest-region) threshold requires
    /// inserted RFMs.
    pub fn inserts_rfms(&self) -> bool {
        Self::interval_of(self.thresholds.min_threshold()).is_some()
    }
}

impl Mitigation for Mint {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        // Reservoir-style selection: remember the most recent activation
        // (a 1-deep uniform sampler is enough for the overhead study).
        self.selected = Some((bank, row));
        if let Some(interval) = Self::interval_of(self.thresholds.threshold_for(row)) {
            self.pending_interval =
                Some(self.pending_interval.map_or(interval, |p| p.min(interval)));
        }
        if let Some(pending) = self.pending_interval {
            self.acts += 1;
            if self.acts >= pending {
                self.acts = 0;
                self.pending_interval = None;
                return vec![MitigationAction::BlockChannel { duration: self.rfm_ns }];
            }
        }
        Vec::new()
    }

    fn on_refresh(&mut self, _now: u64) -> Vec<MitigationAction> {
        // The per-REF mitigation refreshes the sampled row's neighbors
        // inside the REF envelope — modeled as one neighbor refresh.
        match self.selected.take() {
            Some((bank, row)) => vec![MitigationAction::RefreshNeighbors { bank, row }],
            None => Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "MINT"
    }
}

/// BlockHammer-style throttling: rows whose activation count within a
/// blacklisting window exceeds a quota derived from the threshold get
/// their subsequent activations delayed, so the row physically cannot
/// reach the threshold before the refresh window resets it.
#[derive(Debug)]
pub struct BlockHammer {
    thresholds: MitigationProfile,
    counters: HashMap<(usize, u32), u32>,
    /// Activations seen since the last window reset.
    window_acts: u64,
    /// Window length in activations (≈ one refresh window of row cycles).
    window_len: u64,
}

impl BlockHammer {
    /// Uniform BlockHammer: one effective threshold everywhere.
    pub fn new(threshold: u32) -> Self {
        BlockHammer::with_profile(MitigationProfile::flat(threshold))
    }

    /// Profile-driven BlockHammer: each row may receive at most its
    /// region's threshold of activations per refresh window; throttling
    /// engages at half that, with a delay sized so the remaining budget
    /// cannot be spent within the window.
    pub fn with_profile(thresholds: MitigationProfile) -> Self {
        let window_len = 32_000_000 / 46; // tREFW / tRC activations
        BlockHammer { thresholds, counters: HashMap::new(), window_acts: 0, window_len }
    }

    /// The worst-case (weakest-region) activation quota before
    /// throttling.
    pub fn quota(&self) -> u32 {
        (self.thresholds.min_threshold() / 2).max(1)
    }

    /// The activation quota for one row.
    pub fn quota_for(&self, row: u32) -> u32 {
        (self.thresholds.threshold_for(row) / 2).max(1)
    }

    /// Throttle delay per over-quota activation of one row (ns): sized
    /// so `quota` further ACTs span more than one refresh window.
    pub fn throttle_ns_for(&self, row: u32) -> u64 {
        (32_000_000 / u64::from(self.quota_for(row))).max(100)
    }
}

impl Mitigation for BlockHammer {
    fn on_activate(&mut self, bank: usize, row: u32, _now: u64) -> Vec<MitigationAction> {
        self.window_acts += 1;
        if self.window_acts >= self.window_len {
            self.window_acts = 0;
            self.counters.clear();
        }
        let quota = self.quota_for(row);
        let throttle_ns = self.throttle_ns_for(row);
        let c = self.counters.entry((bank, row)).or_insert(0);
        *c += 1;
        if *c > quota {
            vec![MitigationAction::BlockBank { bank, duration: throttle_ns }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "BlockHammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_of(region_rows: u32, regions: &[u32], fallback: u32) -> MitigationProfile {
        MitigationProfile {
            region_rows,
            regions: regions.to_vec(),
            fallback_threshold: fallback,
            ..MitigationProfile::flat(fallback)
        }
    }

    #[test]
    fn baseline_never_acts() {
        let cfg = MitigationConfig::builder().threshold(128).banks(4).build();
        let mut m = MitigationKind::None.build_with(&cfg);
        for i in 0..1000 {
            assert!(m.on_activate(0, i % 7, u64::from(i)).is_empty());
        }
    }

    #[test]
    fn build_with_matches_flat_profile() {
        // `build_with` is sugar for `build_with_profile` with a flat
        // profile at the configured threshold; the two must be
        // byte-identical for every mechanism.
        let cfg = MitigationConfig::builder().threshold(200).banks(2).seed(9).build();
        for kind in MitigationKind::EXTENDED {
            let mut sugar = kind.build_with(&cfg);
            let mut explicit = kind.build_with_profile(&cfg, &MitigationProfile::flat(200));
            for i in 0..5_000u32 {
                let row = i % 23;
                assert_eq!(
                    sugar.on_activate(0, row, u64::from(i)),
                    explicit.on_activate(0, row, u64::from(i)),
                    "{} diverged at act {i}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn config_builder_round_trips_and_validates() {
        let cfg = MitigationConfig::builder().threshold(777).banks(3).seed(42).build();
        assert_eq!((cfg.threshold, cfg.banks, cfg.seed), (777, 3, 42));
        let rebuilt = cfg.to_builder().seed(43).build();
        assert_eq!(rebuilt.threshold, 777);
        assert_eq!(rebuilt.seed, 43);
        let default = MitigationConfig::default();
        assert!(default.threshold >= 1 && default.banks >= 1);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn config_builder_rejects_zero_threshold() {
        let _ = MitigationConfig::builder().threshold(0).build();
    }

    #[test]
    fn graphene_triggers_at_quarter_threshold() {
        let mut g = Graphene::new(1024, 2);
        assert_eq!(g.trigger(), 256);
        let mut refreshes = 0;
        for _ in 0..256 {
            refreshes += g.on_activate(0, 42, 0).len();
        }
        assert_eq!(refreshes, 1, "the 256th activation of one row must trigger");
    }

    #[test]
    fn graphene_tracks_heavy_hitters_despite_noise() {
        let mut g = Graphene::new(1024, 1);
        let mut refreshed_hot = false;
        for i in 0..100_000u32 {
            // One hot row hammered among a stream of one-off rows.
            let row = if i % 3 == 0 { 7 } else { 1000 + i };
            for a in g.on_activate(0, row, 0) {
                if a == (MitigationAction::RefreshNeighbors { bank: 0, row: 7 }) {
                    refreshed_hot = true;
                }
            }
        }
        assert!(refreshed_hot, "Graphene must catch the heavy hitter");
    }

    #[test]
    fn para_probability_scales_inverse_threshold() {
        let p_high = Para::new(1024, 0);
        let p_low = Para::new(128, 0);
        assert!((p_high.probability() - 30.0 / 1024.0).abs() < 1e-12);
        assert!((p_low.probability() - 30.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn para_empirical_rate_matches_p() {
        let mut para = Para::new(300, 9); // p = 0.1
        let mut hits = 0;
        for i in 0..20_000u32 {
            hits += para.on_activate(0, i, 0).len();
        }
        let rate = f64::from(hits as u32) / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn prac_backs_off_at_alert() {
        let mut prac = Prac::new(128);
        let mut actions = Vec::new();
        for _ in 0..96 {
            actions = prac.on_activate(1, 5, 0);
        }
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[1], MitigationAction::BlockChannel { .. }));
        // Counter reset: the next 95 activations are free.
        for _ in 0..95 {
            assert!(prac.on_activate(1, 5, 0).is_empty());
        }
    }

    #[test]
    fn mint_inserts_no_rfms_at_high_threshold() {
        let mint = Mint::new(1024);
        assert!(!mint.inserts_rfms());
        let mut m = Mint::new(1024);
        for i in 0..10_000u32 {
            assert!(m.on_activate(0, i % 3, 0).is_empty());
        }
    }

    #[test]
    fn mint_inserts_rfms_at_low_threshold() {
        // Effective threshold 64 < ACTS_PER_TREFI (84): RFM every 32 acts.
        let mut m = Mint::new(64);
        assert!(m.inserts_rfms());
        let mut blocks = 0;
        for i in 0..320u32 {
            for a in m.on_activate(0, i, 0) {
                if matches!(a, MitigationAction::BlockChannel { .. }) {
                    blocks += 1;
                }
            }
        }
        assert_eq!(blocks, 10);
    }

    #[test]
    fn mint_mitigates_sampled_row_at_refresh() {
        let mut m = Mint::new(1024);
        m.on_activate(3, 77, 0);
        let actions = m.on_refresh(3900);
        assert_eq!(actions, vec![MitigationAction::RefreshNeighbors { bank: 3, row: 77 }]);
        assert!(m.on_refresh(7800).is_empty(), "nothing sampled since");
    }

    #[test]
    fn kind_names() {
        assert_eq!(MitigationKind::Graphene.name(), "Graphene");
        assert_eq!(MitigationKind::EVALUATED.len(), 4);
        assert_eq!(MitigationKind::EXTENDED.len(), 5);
        assert_eq!(MitigationKind::BlockHammer.name(), "BlockHammer");
    }

    #[test]
    fn blockhammer_throttles_over_quota() {
        let mut bh = BlockHammer::new(128);
        assert_eq!(bh.quota(), 64);
        for _ in 0..64 {
            assert!(bh.on_activate(0, 9, 0).is_empty());
        }
        let actions = bh.on_activate(0, 9, 0);
        assert!(matches!(actions[..], [MitigationAction::BlockBank { bank: 0, .. }]));
    }

    #[test]
    fn blockhammer_ignores_benign_rows() {
        let mut bh = BlockHammer::new(1024);
        for i in 0..10_000u32 {
            assert!(bh.on_activate(0, i, 0).is_empty(), "one-shot rows never throttle");
        }
    }

    #[test]
    fn blockhammer_window_resets_counters() {
        let mut bh = BlockHammer::new(64);
        // Exceed the quota, then push past the window length with other
        // rows; the hot row's counter must clear.
        for _ in 0..40 {
            bh.on_activate(0, 1, 0);
        }
        let window = 32_000_000 / 46;
        for i in 0..window as u32 {
            bh.on_activate(0, 1000 + i, 0);
        }
        assert!(bh.on_activate(0, 1, 0).is_empty(), "window reset must clear counters");
    }

    #[test]
    fn graphene_trigger_follows_regions() {
        // Rows 0..100 at threshold 400 (trigger 100), rows 100.. at 1600
        // (trigger 400).
        let mut g = Graphene::with_profile(profile_of(100, &[400, 1600], 400), 1);
        assert_eq!(g.trigger_for(50), 100);
        assert_eq!(g.trigger_for(150), 400);
        assert_eq!(g.trigger(), 100, "worst case is the weakest region");
        let weak: usize = (0..400).map(|_| g.on_activate(0, 50, 0).len()).sum();
        let strong: usize = (0..400).map(|_| g.on_activate(0, 150, 0).len()).sum();
        assert_eq!(weak, 4, "weak row refreshes every 100 acts");
        assert_eq!(strong, 1, "strong row refreshes every 400 acts");
    }

    #[test]
    fn para_probability_follows_regions() {
        let para = Para::with_profile(profile_of(100, &[300, 3000], 300), 1);
        assert!((para.probability_for(10) - 0.1).abs() < 1e-12);
        assert!((para.probability_for(110) - 0.01).abs() < 1e-12);
        assert!((para.probability() - 0.1).abs() < 1e-12);
        // The strong region empirically refreshes about 10x less often.
        let mut para = Para::with_profile(profile_of(100, &[300, 3000], 300), 7);
        let mut weak = 0usize;
        let mut strong = 0usize;
        for _ in 0..20_000 {
            weak += para.on_activate(0, 10, 0).len();
            strong += para.on_activate(0, 110, 0).len();
        }
        let ratio = weak as f64 / strong.max(1) as f64;
        assert!((5.0..20.0).contains(&ratio), "weak/strong refresh ratio {ratio}");
    }

    #[test]
    fn prac_alert_follows_regions() {
        let mut prac = Prac::with_profile(profile_of(10, &[128, 1280], 128));
        assert_eq!(prac.alert_for(5), 96);
        assert_eq!(prac.alert_for(15), 960);
        for _ in 0..95 {
            assert!(prac.on_activate(0, 5, 0).is_empty());
        }
        assert_eq!(prac.on_activate(0, 5, 0).len(), 2, "weak row alerts at 96");
        for _ in 0..959 {
            assert!(prac.on_activate(0, 15, 0).is_empty());
        }
        assert_eq!(prac.on_activate(0, 15, 0).len(), 2, "strong row alerts at 960");
    }

    #[test]
    fn mint_skips_rfms_for_strong_regions() {
        // Weak region below ACTS_PER_TREFI owes RFMs; the strong region
        // does not.
        let profile = profile_of(10, &[64, 1024], 64);
        let mut m = Mint::with_profile(profile.clone());
        let strong_blocks: usize = (0..1000)
            .map(|_| {
                m.on_activate(0, 15, 0)
                    .iter()
                    .filter(|a| matches!(a, MitigationAction::BlockChannel { .. }))
                    .count()
            })
            .sum();
        assert_eq!(strong_blocks, 0, "strong-region stream inserts no RFMs");
        let mut m = Mint::with_profile(profile);
        let weak_blocks: usize = (0..320)
            .map(|_| {
                m.on_activate(0, 5, 0)
                    .iter()
                    .filter(|a| matches!(a, MitigationAction::BlockChannel { .. }))
                    .count()
            })
            .sum();
        assert_eq!(weak_blocks, 10, "weak-region stream keeps the uniform cadence");
    }

    #[test]
    fn mint_mixed_stream_owes_the_weak_interval() {
        let mut m = Mint::with_profile(profile_of(10, &[64, 1024], 64));
        // One weak-region activation arms the RFM cadence; strong-region
        // activations still count toward the owed RFM.
        assert!(m.on_activate(0, 5, 0).is_empty());
        let mut acts = 1;
        let mut blocked_at = None;
        for _ in 0..100 {
            acts += 1;
            if !m.on_activate(0, 15, 0).is_empty() {
                blocked_at = Some(acts);
                break;
            }
        }
        assert_eq!(blocked_at, Some(32), "RFM lands 32 acts after the weak activation armed it");
    }

    #[test]
    fn blockhammer_quota_follows_regions() {
        let mut bh = BlockHammer::with_profile(profile_of(10, &[128, 1024], 128));
        assert_eq!(bh.quota_for(5), 64);
        assert_eq!(bh.quota_for(15), 512);
        assert_eq!(bh.quota(), 64);
        for _ in 0..64 {
            assert!(bh.on_activate(0, 5, 0).is_empty());
        }
        assert!(!bh.on_activate(0, 5, 0).is_empty(), "weak row throttles past 64");
        for _ in 0..512 {
            assert!(bh.on_activate(0, 15, 0).is_empty());
        }
        assert!(!bh.on_activate(0, 15, 0).is_empty(), "strong row throttles past 512");
    }

    #[test]
    fn flat_profile_build_matches_uniform_build() {
        let cfg = MitigationConfig::builder().threshold(96).banks(2).seed(5).build();
        let flat = MitigationProfile::flat(96);
        for kind in MitigationKind::EXTENDED {
            let mut uniform = kind.build_with(&cfg);
            let mut profiled = kind.build_with_profile(&cfg, &flat);
            for i in 0..20_000u32 {
                let row = (i * 7) % 31;
                let now = u64::from(i) * 46;
                assert_eq!(
                    uniform.on_activate(i as usize % 2, row, now),
                    profiled.on_activate(i as usize % 2, row, now),
                    "{} diverged at act {i}",
                    kind.name()
                );
                if i % 1000 == 999 {
                    assert_eq!(uniform.on_refresh(now), profiled.on_refresh(now));
                }
            }
        }
    }
}
