//! Security analysis: do mitigations configured with a *measured* RDT
//! actually prevent bitflips when the row's true threshold varies?
//!
//! This operationalizes the paper's central claim (§6.1): "the RDT value
//! used to configure a mitigation technique cannot be larger than the
//! one experienced (at any time) by any victim DRAM row … otherwise the
//! mitigation's security guarantees are compromised."
//!
//! The model: an attacker hammers one aggressor row continuously. The
//! victim's *instantaneous* RDT for each inter-refresh epoch is drawn
//! from an empirical VRD distribution (e.g. a measured
//! `vrd-core` series). The mitigation — configured with some threshold —
//! occasionally refreshes the victim, resetting the accumulated hammer
//! count. An **escape** occurs whenever the accumulated count reaches
//! the epoch's true RDT before a preventive refresh lands.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::mitigation::{Mitigation, MitigationAction, MitigationConfig, MitigationKind};

/// Configuration of one attack simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Total aggressor activations the attacker issues.
    pub activations: u64,
    /// The victim row's empirical RDT distribution (drawn per epoch).
    pub rdt_distribution: Vec<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl AttackConfig {
    /// A default attack of 2M activations against the given measured
    /// distribution.
    pub fn new(rdt_distribution: Vec<u32>, seed: u64) -> Self {
        assert!(!rdt_distribution.is_empty(), "need a non-empty RDT distribution");
        AttackConfig { activations: 2_000_000, rdt_distribution, seed }
    }
}

/// Result of one attack simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackResult {
    /// Activations issued.
    pub activations: u64,
    /// Preventive refreshes the mitigation performed on the victim.
    pub preventive_refreshes: u64,
    /// Escapes: epochs in which the accumulated count reached the true
    /// RDT before a preventive refresh.
    pub escapes: u64,
}

impl AttackResult {
    /// Escapes per million attacker activations.
    pub fn escapes_per_million(&self) -> f64 {
        self.escapes as f64 / (self.activations as f64 / 1e6)
    }

    /// Whether the mitigation held (no escape at all).
    pub fn secure(&self) -> bool {
        self.escapes == 0
    }
}

/// Simulates a continuous one-row hammer attack against a mitigation
/// configured with `configured_threshold`.
///
/// The victim's true RDT is redrawn from the empirical distribution
/// after every restoration of the victim (preventive refresh or escape),
/// modelling VRD's unpredictable epoch-to-epoch threshold changes.
pub fn simulate_attack(
    kind: MitigationKind,
    configured_threshold: u32,
    config: &AttackConfig,
) -> AttackResult {
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let mut mitigation = kind.build_with(
        &MitigationConfig::builder()
            .threshold(configured_threshold)
            .banks(1)
            .seed(config.seed)
            .build(),
    );
    let dist = &config.rdt_distribution;
    let draw_rdt = |rng: &mut ChaCha12Rng| -> u64 { u64::from(dist[rng.gen_range(0..dist.len())]) };

    let bank = 0usize;
    let aggressor_row = 7u32;
    let mut accumulated = 0u64;
    let mut true_rdt = draw_rdt(&mut rng);
    let mut escapes = 0u64;
    let mut preventive = 0u64;
    // The attacker saturates one bank: one ACT per tRC (46 ns), slowed
    // down by any blocking actions (throttling, back-offs). The victim
    // is restored by periodic refresh once per tREFW of wall-clock time.
    const T_RC_NS: u64 = 46;
    const T_REFW_NS: u64 = 32_000_000;
    let mut time_ns = 0u64;
    let mut next_periodic = T_REFW_NS;

    for act in 0..config.activations {
        time_ns += T_RC_NS;
        accumulated += 1;
        let mut restored = false;
        if accumulated >= true_rdt {
            escapes += 1;
            restored = true;
        }
        for action in mitigation.on_activate(bank, aggressor_row, act) {
            match action {
                MitigationAction::RefreshNeighbors { .. } => {
                    preventive += 1;
                    restored = true;
                }
                // Blocking actions slow the attacker down but do not
                // restore the victim directly.
                MitigationAction::BlockBank { duration, .. }
                | MitigationAction::BlockChannel { duration } => {
                    time_ns += duration;
                }
            }
        }
        while time_ns >= next_periodic {
            next_periodic += T_REFW_NS;
            restored = true;
            // MINT's REF-time mitigation also lands here.
            for action in mitigation.on_refresh(act) {
                if matches!(action, MitigationAction::RefreshNeighbors { .. }) {
                    preventive += 1;
                }
            }
        }
        if restored {
            accumulated = 0;
            true_rdt = draw_rdt(&mut rng);
        }
    }
    AttackResult { activations: config.activations, preventive_refreshes: preventive, escapes }
}

/// Sweeps configured thresholds derived from N-measurement estimates of
/// the distribution's minimum with different guardbands, reporting the
/// escape rate of each — the "inaccurate RDT ⇒ insecure" curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecuritySweep {
    /// `(margin, configured threshold, escapes per million)` rows.
    pub points: Vec<(f64, u32, f64)>,
    /// The distribution's true minimum.
    pub true_min: u32,
    /// The N-measurement estimate the margins were applied to.
    pub estimated_min: u32,
}

/// Runs the sweep for one mitigation: estimate the minimum from
/// `estimate_n` random draws (as a vendor with limited test time would),
/// then configure with margins `0%, 10%, 25%, 50%` below that estimate.
pub fn security_sweep(
    kind: MitigationKind,
    config: &AttackConfig,
    estimate_n: usize,
) -> SecuritySweep {
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ 0xEC0);
    let dist = &config.rdt_distribution;
    let estimated_min = (0..estimate_n.max(1))
        .map(|_| dist[rng.gen_range(0..dist.len())])
        .min()
        .expect("estimate_n >= 1");
    let true_min = *dist.iter().min().expect("non-empty");

    let mut points = Vec::new();
    for margin in [0.0f64, 0.10, 0.25, 0.50] {
        let configured = ((f64::from(estimated_min)) * (1.0 - margin)).floor().max(1.0) as u32;
        let result = simulate_attack(kind, configured, config);
        points.push((margin, configured, result.escapes_per_million()));
    }
    SecuritySweep { points, true_min, estimated_min }
}

/// One victim in a spatial multi-row attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialVictim {
    /// The victim's row number (its aggressor hammers the same row
    /// address in this single-aggressor model).
    pub row: u32,
    /// True-RDT multiplier relative to the weakest victim (≥ 1 for
    /// spatially stronger rows; the weakest victim has factor 1).
    pub factor: f64,
}

/// Configuration of a spatial multi-row attack: the attacker round-robin
/// hammers one representative victim per bank region, so a defense pays
/// for every region it guards while only the weakest region constrains
/// security.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialAttackConfig {
    /// Total attacker activations (spread round-robin over the victims).
    pub activations: u64,
    /// Empirical RDT distribution of the *weakest* victim; each victim's
    /// epoch RDT is a draw scaled by its spatial factor.
    pub rdt_distribution: Vec<u32>,
    /// The victims under attack.
    pub victims: Vec<SpatialVictim>,
    /// RNG seed.
    pub seed: u64,
}

impl SpatialAttackConfig {
    /// A default attack of 2M activations.
    pub fn new(rdt_distribution: Vec<u32>, victims: Vec<SpatialVictim>, seed: u64) -> Self {
        assert!(!rdt_distribution.is_empty(), "need a non-empty RDT distribution");
        assert!(!victims.is_empty(), "need at least one victim");
        assert!(victims.iter().all(|v| v.factor >= 1.0), "factors are relative to the weakest");
        SpatialAttackConfig { activations: 2_000_000, rdt_distribution, victims, seed }
    }
}

/// Result of one spatial multi-row attack simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialAttackResult {
    /// Activations issued.
    pub activations: u64,
    /// Preventive victim refreshes the mitigation performed.
    pub preventive_refreshes: u64,
    /// Total mitigation actions issued (refreshes + blocking actions) —
    /// the overhead axis of the attack-vs-defense tradeoff.
    pub actions: u64,
    /// Attacker time lost to blocking actions (ns).
    pub blocked_ns: u64,
    /// Escapes across all victims.
    pub escapes: u64,
    /// Escapes per victim, in `victims` order.
    pub per_victim_escapes: Vec<u64>,
}

impl SpatialAttackResult {
    /// Escapes per million attacker activations.
    pub fn escapes_per_million(&self) -> f64 {
        self.escapes as f64 / (self.activations as f64 / 1e6)
    }

    /// Whether the mitigation held everywhere (no escape on any victim).
    pub fn secure(&self) -> bool {
        self.escapes == 0
    }
}

/// Simulates a round-robin multi-row hammer attack against an already
/// built mitigation (use [`MitigationKind::build_with_profile`] for the
/// profile-driven variants).
///
/// Timing follows [`simulate_attack`] (one ACT per tRC, blocking actions
/// slow the attacker, periodic refresh restores every victim once per
/// tREFW) with one refinement: the mitigation's `on_refresh` hook runs
/// once per tREFI rather than once per tREFW, which models MINT's
/// REF-time mitigation at its real cadence.
pub fn simulate_spatial_attack(
    mitigation: &mut dyn Mitigation,
    config: &SpatialAttackConfig,
) -> SpatialAttackResult {
    const T_RC_NS: u64 = 46;
    const T_REFI_NS: u64 = 3_900;
    const T_REFW_NS: u64 = 32_000_000;

    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let dist = &config.rdt_distribution;
    let draw_rdt = |rng: &mut ChaCha12Rng, factor: f64| -> u64 {
        let base = f64::from(dist[rng.gen_range(0..dist.len())]);
        (base * factor).round().max(1.0) as u64
    };

    let n = config.victims.len();
    let mut accumulated = vec![0u64; n];
    let mut true_rdt: Vec<u64> =
        config.victims.iter().map(|v| draw_rdt(&mut rng, v.factor)).collect();
    let mut per_victim_escapes = vec![0u64; n];
    let mut escapes = 0u64;
    let mut preventive = 0u64;
    let mut actions = 0u64;
    let mut blocked_ns = 0u64;
    let mut time_ns = 0u64;
    let mut next_refi = T_REFI_NS;
    let mut next_periodic = T_REFW_NS;

    let bank = 0usize;
    let victim_index =
        |row: u32| -> Option<usize> { config.victims.iter().position(|v| v.row == row) };

    let mut restore = vec![false; n];
    for act in 0..config.activations {
        let v = (act % n as u64) as usize;
        time_ns += T_RC_NS;
        accumulated[v] += 1;
        restore.iter_mut().for_each(|r| *r = false);
        if accumulated[v] >= true_rdt[v] {
            escapes += 1;
            per_victim_escapes[v] += 1;
            restore[v] = true;
        }
        for action in mitigation.on_activate(bank, config.victims[v].row, act) {
            actions += 1;
            match action {
                MitigationAction::RefreshNeighbors { row, .. } => {
                    preventive += 1;
                    if let Some(i) = victim_index(row) {
                        restore[i] = true;
                    }
                }
                MitigationAction::BlockBank { duration, .. }
                | MitigationAction::BlockChannel { duration } => {
                    time_ns += duration;
                    blocked_ns += duration;
                }
            }
        }
        while time_ns >= next_refi {
            next_refi += T_REFI_NS;
            for action in mitigation.on_refresh(act) {
                actions += 1;
                if let MitigationAction::RefreshNeighbors { row, .. } = action {
                    preventive += 1;
                    if let Some(i) = victim_index(row) {
                        restore[i] = true;
                    }
                }
            }
        }
        while time_ns >= next_periodic {
            next_periodic += T_REFW_NS;
            restore.iter_mut().for_each(|r| *r = true);
        }
        for (i, flagged) in restore.iter().enumerate() {
            if *flagged {
                accumulated[i] = 0;
                true_rdt[i] = draw_rdt(&mut rng, config.victims[i].factor);
            }
        }
    }
    SpatialAttackResult {
        activations: config.activations,
        preventive_refreshes: preventive,
        actions,
        blocked_ns,
        escapes,
        per_victim_escapes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A VRD-like distribution: bulk near 5000, rare dips to 3500.
    fn vrd_distribution() -> Vec<u32> {
        let mut d: Vec<u32> = (0..990).map(|i| 4_800 + (i % 17) * 25).collect();
        d.extend([3_500, 3_520, 3_540, 3_560, 3_580, 3_600, 3_650, 3_700, 3_750, 3_800]);
        d
    }

    #[test]
    fn correctly_configured_graphene_is_secure() {
        // Configured at the true minimum: Graphene refreshes at
        // threshold/4, far before any epoch's RDT.
        let config = AttackConfig::new(vrd_distribution(), 1);
        let result = simulate_attack(MitigationKind::Graphene, 3_500, &config);
        assert!(result.secure(), "true-min config must hold, {} escapes", result.escapes);
        assert!(result.preventive_refreshes > 0);
    }

    #[test]
    fn overconfigured_graphene_leaks() {
        // Configured with the *bulk* RDT (as a few measurements would
        // suggest): rare low-RDT epochs escape.
        let config = AttackConfig::new(vrd_distribution(), 2);
        let result = simulate_attack(MitigationKind::Graphene, 3_500 * 5, &config);
        assert!(
            !result.secure(),
            "a 5x-too-high configuration must leak (trigger = threshold/4 > low epochs)"
        );
    }

    #[test]
    fn guardband_reduces_escapes_monotonically() {
        let config = AttackConfig::new(vrd_distribution(), 3);
        // Estimate from only 3 measurements: almost surely misses the
        // 1% low tail.
        let sweep = security_sweep(MitigationKind::Graphene, &config, 3);
        assert!(sweep.estimated_min >= sweep.true_min);
        let rates: Vec<f64> = sweep.points.iter().map(|(_, _, r)| *r).collect();
        for pair in rates.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "wider margins must not leak more: {rates:?}");
        }
    }

    #[test]
    fn prac_secure_when_configured_at_true_min() {
        let config = AttackConfig::new(vrd_distribution(), 4);
        let result = simulate_attack(MitigationKind::Prac, 3_500, &config);
        assert!(result.secure(), "{} escapes", result.escapes);
    }

    #[test]
    fn para_escape_rate_shrinks_with_lower_threshold() {
        let config = AttackConfig::new(vrd_distribution(), 5);
        let loose = simulate_attack(MitigationKind::Para, 12_000, &config);
        let tight = simulate_attack(MitigationKind::Para, 3_500, &config);
        assert!(tight.escapes <= loose.escapes);
    }

    #[test]
    fn blockhammer_throttling_is_secure_at_true_min() {
        // Throttling never refreshes the victim, but it stretches the
        // attack across refresh windows so the threshold is unreachable.
        let config = AttackConfig::new(vrd_distribution(), 7);
        let result = simulate_attack(MitigationKind::BlockHammer, 3_500, &config);
        assert!(result.secure(), "{} escapes", result.escapes);
    }

    #[test]
    fn baseline_always_leaks() {
        let config = AttackConfig::new(vrd_distribution(), 6);
        let result = simulate_attack(MitigationKind::None, 3_500, &config);
        assert!(result.escapes > 100, "no mitigation ⇒ steady escapes, got {}", result.escapes);
    }

    #[test]
    fn escape_rate_units() {
        let r = AttackResult { activations: 2_000_000, preventive_refreshes: 0, escapes: 4 };
        assert!((r.escapes_per_million() - 2.0).abs() < 1e-12);
    }

    use crate::profile::MitigationProfile;

    /// Four regions of 100 rows whose spatial strength doubles per
    /// region; one victim (the region's weakest row) per region.
    fn spatial_scenario(seed: u64) -> (SpatialAttackConfig, MitigationProfile) {
        let victims = vec![
            SpatialVictim { row: 0, factor: 1.0 },
            SpatialVictim { row: 100, factor: 2.0 },
            SpatialVictim { row: 200, factor: 4.0 },
            SpatialVictim { row: 300, factor: 8.0 },
        ];
        let mut attack = SpatialAttackConfig::new(vrd_distribution(), victims, seed);
        attack.activations = 400_000;
        let profile = MitigationProfile {
            region_rows: 100,
            regions: vec![3_500, 7_000, 14_000, 28_000],
            fallback_threshold: 3_500,
            ..MitigationProfile::flat(3_500)
        };
        (attack, profile)
    }

    #[test]
    fn spatial_profile_matches_uniform_coverage_at_lower_overhead() {
        let (attack, profile) = spatial_scenario(11);
        let cfg = MitigationConfig::builder().threshold(3_500).banks(1).seed(11).build();
        for kind in [MitigationKind::Graphene, MitigationKind::Prac] {
            let mut uniform = kind.build_with(&cfg);
            let mut profiled = kind.build_with_profile(&cfg, &profile);
            let u = simulate_spatial_attack(uniform.as_mut(), &attack);
            let p = simulate_spatial_attack(profiled.as_mut(), &attack);
            assert!(u.secure(), "{}: uniform worst-case must hold", kind.name());
            assert!(p.secure(), "{}: profile-driven must hold", kind.name());
            assert!(
                p.actions < u.actions,
                "{}: profile must act less ({} vs {})",
                kind.name(),
                p.actions,
                u.actions
            );
        }
    }

    #[test]
    fn spatially_unaware_estimate_leaks_on_the_weak_region() {
        // A characterization that sampled only the strongest region
        // would configure threshold 28000 everywhere.
        let (attack, _) = spatial_scenario(13);
        let cfg = MitigationConfig::builder().threshold(28_000).banks(1).seed(13).build();
        let mut naive = MitigationKind::Graphene.build_with(&cfg);
        let result = simulate_spatial_attack(naive.as_mut(), &attack);
        assert!(!result.secure(), "an 8x-too-high uniform threshold must leak");
        assert!(
            result.per_victim_escapes[0] > 0,
            "escapes concentrate on the weakest region: {:?}",
            result.per_victim_escapes
        );
    }

    #[test]
    fn spatial_baseline_leaks_everywhere() {
        let (attack, _) = spatial_scenario(17);
        let mut baseline = MitigationKind::None
            .build_with(&MitigationConfig::builder().threshold(3_500).banks(1).build());
        let result = simulate_spatial_attack(baseline.as_mut(), &attack);
        assert!(result.escapes > 0);
        assert!(
            result.per_victim_escapes.iter().all(|&e| e > 0),
            "every victim must flip without mitigation: {:?}",
            result.per_victim_escapes
        );
    }
}
