//! Memory-trace capture and replay.
//!
//! The paper drives Ramulator with SPEC/TPC/MediaBench/YCSB traces. This
//! module gives the simulator the same workflow: capture a synthetic
//! stream into a portable trace, save/load it as JSON, and replay it
//! through the same core model — so externally produced traces can be
//! plugged in without touching the simulator.

use serde::{Deserialize, Serialize};

use crate::workload::{Access, AccessStream, WorkloadParams};

/// One trace record: a memory access (LLC miss) of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Target bank.
    pub bank: usize,
    /// Target row.
    pub row: u32,
}

/// A recorded access trace for one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Instructions between consecutive misses (constant-rate model).
    pub instructions_per_miss: u64,
    /// The accesses, in order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Records `length` accesses from a synthetic workload.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn record(params: WorkloadParams, banks: usize, seed: u64, length: usize) -> Self {
        assert!(length > 0, "trace needs at least one access");
        let mut stream = AccessStream::new(params, banks, seed);
        let entries = (0..length)
            .map(|_| {
                let a = stream.next_access();
                TraceEntry { bank: a.bank, row: a.row }
            })
            .collect();
        Trace { instructions_per_miss: stream.instructions_per_miss(), entries }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// A replaying stream over this trace (loops at the end, as
    /// simulators conventionally do for short traces).
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream { trace: self, pos: 0 }
    }

    /// Number of distinct `(bank, row)` pairs touched.
    pub fn footprint(&self) -> usize {
        let mut set: Vec<(usize, u32)> = self.entries.iter().map(|e| (e.bank, e.row)).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }
}

/// A looping replay cursor over a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl TraceStream<'_> {
    /// Instructions between misses, from the recorded trace.
    pub fn instructions_per_miss(&self) -> u64 {
        self.trace.instructions_per_miss
    }

    /// The next access (wrapping at the end of the trace).
    pub fn next_access(&mut self) -> Access {
        let e = self.trace.entries[self.pos];
        self.pos = (self.pos + 1) % self.trace.entries.len();
        Access { bank: e.bank, row: e.row }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::record(WorkloadParams::memory_intensive(30.0), 8, 5, 500)
    }

    #[test]
    fn record_matches_live_stream() {
        let trace = sample_trace();
        let mut live = AccessStream::new(WorkloadParams::memory_intensive(30.0), 8, 5);
        for e in &trace.entries {
            let a = live.next_access();
            assert_eq!((e.bank, e.row), (a.bank, a.row));
        }
    }

    #[test]
    fn json_round_trips() {
        let trace = sample_trace();
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn malformed_json_errors() {
        assert!(Trace::from_json("{not json").is_err());
    }

    #[test]
    fn stream_replays_and_loops() {
        let trace = sample_trace();
        let mut s = trace.stream();
        let first: Vec<Access> = (0..trace.entries.len()).map(|_| s.next_access()).collect();
        // One full pass later, it repeats.
        let again = s.next_access();
        assert_eq!(again, first[0]);
        assert_eq!(s.instructions_per_miss(), trace.instructions_per_miss);
    }

    #[test]
    fn footprint_counts_unique_addresses() {
        let trace = Trace {
            instructions_per_miss: 10,
            entries: vec![
                TraceEntry { bank: 0, row: 1 },
                TraceEntry { bank: 0, row: 1 },
                TraceEntry { bank: 1, row: 1 },
            ],
        };
        assert_eq!(trace.footprint(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_record_panics() {
        Trace::record(WorkloadParams::memory_intensive(30.0), 4, 0, 0);
    }
}
