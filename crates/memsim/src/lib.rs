//! Cycle-level DDR5 memory-system simulator for the paper's §6.3
//! guardband-overhead evaluation (Fig. 14).
//!
//! The paper evaluates four read-disturbance mitigations — Graphene,
//! PRAC, PARA, and MINT — in a DDR5 system simulated with Ramulator 2.0,
//! measuring multi-core performance normalized to a baseline without
//! mitigation, for read-disturbance thresholds 1024 and 128 with 0%,
//! 10%, 25%, and 50% guardbands. This crate rebuilds that experiment:
//!
//! - [`dram`] — a DDR5 channel: banks with open-row state and JEDEC
//!   timing (tRCD/tRP/tRAS/tRC/tCCD/tRFC/tREFI).
//! - [`workload`] — synthetic trace generation with configurable memory
//!   intensity (MPKI), row-buffer locality, and bank spread; mixes of
//!   four "highly memory intensive" cores stand in for the paper's
//!   SPEC/TPC/MediaBench/YCSB mixes.
//! - [`cpu`] — a simple MLP-limited core model (1 IPC when unblocked, a
//!   bounded window of outstanding misses).
//! - [`mitigation`] — Graphene (Misra–Gries counters), PARA
//!   (probabilistic), PRAC (per-row activation counters with back-off),
//!   and MINT (minimalist in-DRAM tracker with RFMs).
//! - [`profile`] — per-region effective-threshold maps
//!   ([`MitigationProfile`]) derived from a characterization campaign +
//!   the device's spatial layout; every mechanism in [`mitigation`] can
//!   consult one instead of a uniform worst-case threshold.
//! - [`system`] — ties everything into a steppable system and reports
//!   weighted speedup.
//!
//! # Examples
//!
//! ```
//! use vrd_memsim::system::{SimConfig, System};
//! use vrd_memsim::mitigation::MitigationKind;
//!
//! let cfg = SimConfig { cycles: 200_000, ..SimConfig::default() };
//! let baseline = System::run_mix(&cfg, MitigationKind::None, 1024, 42);
//! let para = System::run_mix(&cfg, MitigationKind::Para, 1024, 42);
//! assert!(para.weighted_ipc(&baseline) <= 1.01);
//! ```

pub mod cpu;
pub mod dram;
pub mod mitigation;
pub mod profile;
pub mod security;
pub mod system;
pub mod trace;
pub mod workload;

pub use mitigation::{MitigationConfig, MitigationKind};
pub use profile::{MitigationProfile, ProfileError};
pub use system::{SimConfig, SimStats, System};
