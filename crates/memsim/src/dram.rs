//! DDR5 channel model: banks, open rows, and timing constraints.
//!
//! Time is counted in nanoseconds (`u64`). Each bank tracks its open row
//! and the earliest time each command class may issue; the channel adds
//! periodic all-bank refresh and a shared data bus.

use serde::{Deserialize, Serialize};

/// DDR5 channel timing (ns), matching the paper's Table 6 where
/// applicable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// ACT-to-column delay.
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Minimum row-open time.
    pub t_ras: u64,
    /// ACT-to-ACT same bank (`t_RAS + t_RP`).
    pub t_rc: u64,
    /// Data-bus occupancy of one burst.
    pub t_burst: u64,
    /// All-bank refresh latency.
    pub t_rfc: u64,
    /// Refresh interval.
    pub t_refi: u64,
    /// Duration of one RFM / preventive-refresh operation (two row
    /// cycles: refresh both neighbors).
    pub t_rfm: u64,
    /// ACT-to-ACT delay to a different bank in the *same* bank group.
    pub t_rrd_l: u64,
    /// ACT-to-ACT delay across bank groups.
    pub t_rrd_s: u64,
    /// Four-activate window: at most four ACTs per rolling window.
    pub t_faw: u64,
    /// Banks per bank group.
    pub banks_per_group: usize,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            t_rcd: 14,
            t_rp: 14,
            t_ras: 32,
            t_rc: 46,
            t_burst: 4,
            t_rfc: 295,
            t_refi: 3900,
            t_rfm: 92,
            t_rrd_l: 5,
            t_rrd_s: 2,
            t_faw: 13,
            banks_per_group: 4,
        }
    }
}

/// One DRAM bank's scheduling state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankState {
    /// The open row, if any.
    pub open_row: Option<u32>,
    /// Earliest time the next ACT may issue.
    pub next_act: u64,
    /// Earliest time the next PRE may issue.
    pub next_pre: u64,
    /// Earliest time a column command may issue.
    pub next_col: u64,
    /// Activations this bank has issued (statistics).
    pub activations: u64,
}

/// A DDR5 channel: a set of banks plus refresh bookkeeping.
#[derive(Debug, Clone)]
pub struct DramChannel {
    timing: DramTiming,
    banks: Vec<BankState>,
    /// Earliest time the shared data bus is free.
    bus_free: u64,
    /// Next scheduled periodic refresh.
    next_refresh: u64,
    /// Total refreshes issued.
    pub refreshes: u64,
    /// Total preventive-refresh/RFM operations issued (statistics).
    pub preventive_ops: u64,
    /// Timestamps of the last four ACTs (tFAW rolling window).
    recent_acts: [Option<u64>; 4],
    /// Last ACT time per bank group (tRRD enforcement).
    last_act_in_group: Vec<Option<u64>>,
}

impl DramChannel {
    /// Creates a channel with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: usize, timing: DramTiming) -> Self {
        assert!(banks > 0, "need at least one bank");
        let groups = banks.div_ceil(timing.banks_per_group.max(1));
        DramChannel {
            timing,
            banks: vec![BankState::default(); banks],
            bus_free: 0,
            next_refresh: timing.t_refi,
            refreshes: 0,
            preventive_ops: 0,
            recent_acts: [None; 4],
            last_act_in_group: vec![None; groups.max(1)],
        }
    }

    /// The bank group of a bank.
    pub fn group_of(&self, bank: usize) -> usize {
        bank / self.timing.banks_per_group.max(1)
    }

    /// Whether an ACT may issue at `now` under tFAW and tRRD.
    fn act_window_ok(&self, bank: usize, now: u64) -> bool {
        // tFAW: with four prior ACTs tracked, the oldest must have left
        // the rolling window.
        if self.recent_acts.iter().all(|t| t.is_some()) {
            let oldest = self.recent_acts.iter().flatten().copied().min().expect("all some");
            if now < oldest + self.timing.t_faw {
                return false;
            }
        }
        // Same-group spacing (tRRD_L).
        let group = self.group_of(bank);
        if let Some(last) = self.last_act_in_group[group] {
            if now < last + self.timing.t_rrd_l {
                return false;
            }
        }
        // Any-bank spacing (tRRD_S).
        if let Some(newest) = self.recent_acts.iter().flatten().copied().max() {
            if now < newest + self.timing.t_rrd_s {
                return false;
            }
        }
        true
    }

    /// Records an ACT at `now` for the window trackers.
    fn record_act(&mut self, bank: usize, now: u64) {
        // Replace an empty slot, else the oldest timestamp.
        let idx = self
            .recent_acts
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.map(|v| v + 1).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("four slots");
        self.recent_acts[idx] = Some(now);
        let group = self.group_of(bank);
        self.last_act_in_group[group] = Some(now);
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The timing table.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Immutable view of a bank's state.
    pub fn bank(&self, bank: usize) -> &BankState {
        &self.banks[bank]
    }

    /// Issues periodic refresh if due at time `now`; returns `true` if a
    /// refresh occupied the channel (all banks blocked for `t_RFC`).
    pub fn maybe_refresh(&mut self, now: u64) -> bool {
        if now < self.next_refresh {
            return false;
        }
        self.next_refresh += self.timing.t_refi;
        self.refreshes += 1;
        let free_at = now + self.timing.t_rfc;
        for bank in &mut self.banks {
            bank.open_row = None;
            bank.next_act = bank.next_act.max(free_at);
            bank.next_col = bank.next_col.max(free_at);
            bank.next_pre = bank.next_pre.max(free_at);
        }
        true
    }

    /// Whether `row` is open in `bank`.
    pub fn is_row_hit(&self, bank: usize, row: u32) -> bool {
        self.banks[bank].open_row == Some(row)
    }

    /// Attempts to advance service of a request on `bank` at time `now`.
    /// Returns `Some(completion_time)` when the column access issued this
    /// call; `None` when the bank is still preparing (PRE/ACT in flight
    /// or timing not met).
    ///
    /// The scheduler calls this each time the bank is the chosen
    /// candidate; the method performs at most one command transition per
    /// call (PRE, then ACT, then the column access).
    pub fn service(&mut self, bank: usize, row: u32, now: u64) -> Option<u64> {
        let t = self.timing;
        let state = &mut self.banks[bank];
        match state.open_row {
            Some(open) if open == row => {
                // Row hit: issue the column access when legal.
                if now < state.next_col {
                    return None;
                }
                let start = now.max(self.bus_free);
                if start > now {
                    return None; // bus busy; retry later
                }
                self.bus_free = start + t.t_burst;
                Some(start + t.t_burst)
            }
            Some(_) => {
                // Conflict: precharge when legal.
                if now >= state.next_pre {
                    state.open_row = None;
                    state.next_act = state.next_act.max(now + t.t_rp);
                }
                None
            }
            None => {
                // Closed: activate when legal (bank timing plus the
                // channel-level tFAW / tRRD windows).
                if now >= state.next_act && self.act_window_ok(bank, now) {
                    let state = &mut self.banks[bank];
                    state.open_row = Some(row);
                    state.activations += 1;
                    state.next_col = now + t.t_rcd;
                    state.next_pre = now + t.t_ras;
                    state.next_act = now + t.t_rc;
                    self.record_act(bank, now);
                }
                None
            }
        }
    }

    /// Blocks `bank` for a preventive refresh / RFM of duration
    /// `duration` starting at `now` (the mitigation's cost).
    pub fn block_bank(&mut self, bank: usize, now: u64, duration: u64) {
        let state = &mut self.banks[bank];
        state.open_row = None;
        let free_at = now + duration;
        state.next_act = state.next_act.max(free_at);
        state.next_col = state.next_col.max(free_at);
        state.next_pre = state.next_pre.max(free_at);
        self.preventive_ops += 1;
    }

    /// Blocks every bank (a channel-wide back-off / RFM-all).
    pub fn block_all(&mut self, now: u64, duration: u64) {
        for bank in 0..self.banks.len() {
            self.block_bank(bank, now, duration);
        }
        // block_bank counted each bank; collapse to one logical op.
        self.preventive_ops -= self.banks.len() as u64;
        self.preventive_ops += 1;
    }

    /// Total activations across banks.
    pub fn total_activations(&self) -> u64 {
        self.banks.iter().map(|b| b.activations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_sequences_act_then_column() {
        let mut ch = DramChannel::new(4, DramTiming::default());
        // First call activates.
        assert_eq!(ch.service(0, 10, 0), None);
        assert!(ch.is_row_hit(0, 10));
        // Column must wait tRCD.
        assert_eq!(ch.service(0, 10, 5), None);
        let done = ch.service(0, 10, 14).expect("column issues at tRCD");
        assert_eq!(done, 14 + 4);
    }

    #[test]
    fn row_conflict_precharges_first() {
        let mut ch = DramChannel::new(4, DramTiming::default());
        ch.service(0, 10, 0);
        // PRE not allowed before tRAS.
        assert_eq!(ch.service(0, 20, 10), None);
        assert!(ch.is_row_hit(0, 10));
        // At tRAS, PRE happens.
        assert_eq!(ch.service(0, 20, 32), None);
        assert!(!ch.is_row_hit(0, 10));
        // ACT after tRP.
        assert_eq!(ch.service(0, 20, 32 + 14), None);
        assert!(ch.is_row_hit(0, 20));
    }

    #[test]
    fn same_bank_act_respects_trc() {
        let mut ch = DramChannel::new(1, DramTiming::default());
        ch.service(0, 1, 0); // ACT at 0
                             // PRE at 32, row closed; ACT legal only at tRC = 46.
        ch.service(0, 2, 32);
        assert_eq!(ch.service(0, 2, 40), None);
        assert!(!ch.is_row_hit(0, 2));
        ch.service(0, 2, 46);
        assert!(ch.is_row_hit(0, 2));
    }

    #[test]
    fn bus_serializes_banks() {
        let mut ch = DramChannel::new(8, DramTiming::default());
        ch.service(0, 1, 0);
        // Bank 4 is in another group: ACT legal after tRRD_S = 2.
        ch.service(4, 1, 2);
        assert!(ch.is_row_hit(4, 1));
        let a = ch.service(0, 1, 14).unwrap();
        assert_eq!(a, 18);
        // Bank 4's column is timing-ready at 16 but the bus is busy
        // until 18.
        assert_eq!(ch.service(4, 1, 16), None);
        let b = ch.service(4, 1, 18).unwrap();
        assert_eq!(b, 22);
    }

    #[test]
    fn refresh_blocks_everything() {
        let mut ch = DramChannel::new(2, DramTiming::default());
        assert!(!ch.maybe_refresh(100));
        assert!(ch.maybe_refresh(3900));
        assert_eq!(ch.refreshes, 1);
        // ACT blocked until 3900 + tRFC.
        assert_eq!(ch.service(0, 1, 3900 + 100), None);
        ch.service(0, 1, 3900 + 295);
        assert!(ch.is_row_hit(0, 1));
    }

    #[test]
    fn block_bank_delays_and_counts() {
        let mut ch = DramChannel::new(2, DramTiming::default());
        ch.block_bank(0, 0, 92);
        assert_eq!(ch.preventive_ops, 1);
        assert_eq!(ch.service(0, 1, 50), None);
        ch.service(0, 1, 92);
        assert!(ch.is_row_hit(0, 1));
        // Other bank unaffected by the block, only by tRRD_L (same
        // group): legal 5 ns after the ACT at t = 92.
        ch.service(1, 1, 97);
        assert!(ch.is_row_hit(1, 1));
    }

    #[test]
    fn block_all_counts_once() {
        let mut ch = DramChannel::new(8, DramTiming::default());
        ch.block_all(0, 100);
        assert_eq!(ch.preventive_ops, 1);
    }

    #[test]
    fn trrd_spaces_activations_across_banks() {
        let mut ch = DramChannel::new(8, DramTiming::default());
        ch.service(0, 1, 0); // ACT at t=0
        assert!(ch.is_row_hit(0, 1));
        // Same group (banks 0-3): blocked until tRRD_L = 5.
        ch.service(1, 1, 3);
        assert!(!ch.is_row_hit(1, 1));
        ch.service(1, 1, 5);
        assert!(ch.is_row_hit(1, 1));
        // Different group (bank 4): only tRRD_S = 2 from the newest ACT.
        ch.service(4, 1, 6);
        assert!(!ch.is_row_hit(4, 1), "tRRD_S from the ACT at t=5");
        ch.service(4, 1, 7);
        assert!(ch.is_row_hit(4, 1));
    }

    #[test]
    fn tfaw_limits_activation_bursts() {
        let mut ch = DramChannel::new(16, DramTiming::default());
        // Four ACTs in different groups, spaced by tRRD_S.
        let mut now = 0u64;
        for bank in [0usize, 4, 8, 12] {
            ch.service(bank, 1, now);
            assert!(ch.is_row_hit(bank, 1), "bank {bank} at {now}");
            now += 2;
        }
        // A fifth ACT must wait until the oldest (t=0) leaves the window.
        ch.service(1, 1, now + 2);
        assert!(!ch.is_row_hit(1, 1), "fifth ACT inside tFAW must stall");
        ch.service(1, 1, 13);
        assert!(ch.is_row_hit(1, 1));
    }

    #[test]
    fn activation_statistics() {
        let mut ch = DramChannel::new(2, DramTiming::default());
        ch.service(0, 1, 0);
        // Same bank group: the second ACT waits out tRRD_L.
        ch.service(1, 2, 5);
        assert_eq!(ch.total_activations(), 2);
    }
}
