//! The assembled memory system: cores + per-bank queues + FR-FCFS
//! scheduling + DRAM channel + mitigation.

use serde::{Deserialize, Serialize};

use crate::cpu::Core;
use crate::dram::{DramChannel, DramTiming};
use crate::mitigation::{Mitigation, MitigationAction, MitigationConfig, MitigationKind};
use crate::profile::MitigationProfile;
use crate::workload::{AccessStream, WorkloadParams};

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated nanoseconds.
    pub cycles: u64,
    /// DRAM banks in the channel.
    pub banks: usize,
    /// The four cores' workload parameters.
    pub mix: [WorkloadParams; 4],
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { cycles: 1_000_000, banks: 16, mix: WorkloadParams::paper_mixes()[0] }
    }
}

/// Simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Instructions committed per core.
    pub instructions: Vec<u64>,
    /// Simulated nanoseconds.
    pub cycles: u64,
    /// Total row activations.
    pub activations: u64,
    /// Preventive operations (neighbor refreshes, back-offs, RFMs).
    pub preventive_ops: u64,
    /// Periodic refreshes.
    pub refreshes: u64,
}

impl SimStats {
    /// Per-core IPC values.
    pub fn ipcs(&self) -> Vec<f64> {
        self.instructions.iter().map(|&i| i as f64 / self.cycles as f64).collect()
    }

    /// Weighted speedup relative to a baseline run of the same mix
    /// (the paper's Fig.-14 normalized-performance metric):
    /// `Σ IPCᵢ/IPCᵢ_baseline / n`.
    ///
    /// # Panics
    ///
    /// Panics if the baseline has a different core count or zero IPC.
    pub fn weighted_ipc(&self, baseline: &SimStats) -> f64 {
        assert_eq!(self.instructions.len(), baseline.instructions.len());
        let mine = self.ipcs();
        let base = baseline.ipcs();
        let mut sum = 0.0;
        for (m, b) in mine.iter().zip(&base) {
            assert!(*b > 0.0, "baseline core must make progress");
            sum += m / b;
        }
        sum / mine.len() as f64
    }

    /// Harmonic-mean speedup — penalizes unfairness more than the
    /// weighted (arithmetic) form.
    ///
    /// # Panics
    ///
    /// Panics if the baseline has a different core count or any core's
    /// IPC is zero in either run.
    pub fn harmonic_ipc(&self, baseline: &SimStats) -> f64 {
        assert_eq!(self.instructions.len(), baseline.instructions.len());
        let mine = self.ipcs();
        let base = baseline.ipcs();
        let mut denom = 0.0;
        for (m, b) in mine.iter().zip(&base) {
            assert!(*b > 0.0 && *m > 0.0, "cores must make progress");
            denom += b / m;
        }
        mine.len() as f64 / denom
    }

    /// Maximum per-core slowdown versus the baseline (≥ 1 when the
    /// mitigation hurts; the fairness metric of throttling studies).
    ///
    /// # Panics
    ///
    /// Panics on mismatched core counts or zero IPC.
    pub fn max_slowdown(&self, baseline: &SimStats) -> f64 {
        assert_eq!(self.instructions.len(), baseline.instructions.len());
        self.ipcs()
            .iter()
            .zip(&baseline.ipcs())
            .map(|(m, b)| {
                assert!(*m > 0.0, "core must make progress");
                b / m
            })
            .fold(0.0, f64::max)
    }
}

/// One in-flight memory request.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    core: usize,
    row: u32,
    arrival: u64,
}

/// The four-core memory system under one mitigation.
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    channel: DramChannel,
    queues: Vec<Vec<QueuedRequest>>,
    completions: Vec<(u64, usize)>,
    mitigation: Box<dyn Mitigation>,
    now: u64,
}

impl System {
    /// Builds a system for `cfg` with the given mitigation at the given
    /// uniform effective threshold.
    pub fn new(cfg: &SimConfig, kind: MitigationKind, threshold: u32, seed: u64) -> Self {
        System::new_with_profile(cfg, kind, &MitigationProfile::flat(threshold), seed)
    }

    /// Builds a system whose mitigation consults a per-region threshold
    /// profile. A flat profile reproduces [`System::new`] exactly.
    pub fn new_with_profile(
        cfg: &SimConfig,
        kind: MitigationKind,
        profile: &MitigationProfile,
        seed: u64,
    ) -> Self {
        let cores = cfg
            .mix
            .iter()
            .enumerate()
            .map(|(i, p)| Core::new(AccessStream::new(*p, cfg.banks, seed ^ (i as u64) << 32)))
            .collect();
        let mitigation_cfg = MitigationConfig::builder()
            .threshold(profile.min_threshold())
            .banks(cfg.banks)
            .seed(seed)
            .build();
        System {
            cores,
            channel: DramChannel::new(cfg.banks, DramTiming::default()),
            queues: vec![Vec::new(); cfg.banks],
            completions: Vec::new(),
            mitigation: kind.build_with_profile(&mitigation_cfg, profile),
            now: 0,
        }
    }

    /// Runs a full simulation and returns the statistics.
    pub fn run_mix(cfg: &SimConfig, kind: MitigationKind, threshold: u32, seed: u64) -> SimStats {
        let mut system = System::new(cfg, kind, threshold, seed);
        system.run_for(cfg.cycles);
        system.stats()
    }

    /// Runs a full simulation with a profile-driven mitigation.
    pub fn run_mix_with_profile(
        cfg: &SimConfig,
        kind: MitigationKind,
        profile: &MitigationProfile,
        seed: u64,
    ) -> SimStats {
        let mut system = System::new_with_profile(cfg, kind, profile, seed);
        system.run_for(cfg.cycles);
        system.stats()
    }

    /// Advances the system by `cycles` nanoseconds.
    pub fn run_for(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end {
            self.step();
        }
    }

    /// The statistics so far.
    pub fn stats(&self) -> SimStats {
        SimStats {
            instructions: self.cores.iter().map(|c| c.instructions).collect(),
            cycles: self.now,
            activations: self.channel.total_activations(),
            preventive_ops: self.channel.preventive_ops,
            refreshes: self.channel.refreshes,
        }
    }

    fn step(&mut self) {
        let now = self.now;

        // Periodic refresh (and the mitigation's REF-time hook).
        if self.channel.maybe_refresh(now) {
            let actions = self.mitigation.on_refresh(now);
            self.apply_actions(actions, now);
        }

        // Deliver completed requests.
        let mut i = 0;
        while i < self.completions.len() {
            if self.completions[i].0 <= now {
                let (_, core) = self.completions.swap_remove(i);
                self.cores[core].complete_miss();
            } else {
                i += 1;
            }
        }

        // Step cores and enqueue their requests.
        for (core_idx, core) in self.cores.iter_mut().enumerate() {
            core.step();
            if let Some(access) = core.take_request() {
                self.queues[access.bank].push(QueuedRequest {
                    core: core_idx,
                    row: access.row,
                    arrival: now,
                });
            }
        }

        // FR-FCFS per bank: serve the oldest row hit, else the oldest.
        for bank in 0..self.queues.len() {
            let Some(pick) = self.pick_request(bank) else {
                continue;
            };
            let row = self.queues[bank][pick].row;
            let was_hit = self.channel.is_row_hit(bank, row);
            if let Some(done_at) = self.channel.service(bank, row, now) {
                let req = self.queues[bank].swap_remove(pick);
                self.completions.push((done_at, req.core));
            } else if !was_hit && self.channel.is_row_hit(bank, row) {
                // An activation just happened: inform the mitigation.
                let actions = self.mitigation.on_activate(bank, row, now);
                self.apply_actions(actions, now);
            }
        }

        self.now += 1;
    }

    fn pick_request(&self, bank: usize) -> Option<usize> {
        let queue = &self.queues[bank];
        if queue.is_empty() {
            return None;
        }
        // Oldest row hit first; otherwise the oldest request.
        let mut best_idx = 0usize;
        let mut best_hit = self.channel.is_row_hit(bank, queue[0].row);
        let mut best_arrival = queue[0].arrival;
        for (i, req) in queue.iter().enumerate().skip(1) {
            let hit = self.channel.is_row_hit(bank, req.row);
            let better = (hit && !best_hit) || (hit == best_hit && req.arrival < best_arrival);
            if better {
                best_idx = i;
                best_hit = hit;
                best_arrival = req.arrival;
            }
        }
        Some(best_idx)
    }

    fn apply_actions(&mut self, actions: Vec<MitigationAction>, now: u64) {
        let t_rfm = self.channel.timing().t_rfm;
        for action in actions {
            match action {
                MitigationAction::RefreshNeighbors { bank, .. } => {
                    self.channel.block_bank(bank, now, t_rfm);
                }
                MitigationAction::BlockBank { bank, duration } => {
                    self.channel.block_bank(bank, now, duration);
                }
                MitigationAction::BlockChannel { duration } => {
                    self.channel.block_all(now, duration);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SimConfig {
        SimConfig { cycles: 120_000, ..SimConfig::default() }
    }

    #[test]
    fn baseline_makes_progress() {
        let stats = System::run_mix(&quick_cfg(), MitigationKind::None, 1024, 1);
        assert_eq!(stats.instructions.len(), 4);
        for &i in &stats.instructions {
            assert!(i > 1_000, "every core must commit instructions, got {i}");
        }
        assert!(stats.activations > 100);
        assert!(stats.refreshes > 10);
        assert_eq!(stats.preventive_ops, 0);
    }

    #[test]
    fn baseline_weighted_ipc_is_one_against_itself() {
        let stats = System::run_mix(&quick_cfg(), MitigationKind::None, 1024, 1);
        assert!((stats.weighted_ipc(&stats) - 1.0).abs() < 1e-12);
        assert!((stats.harmonic_ipc(&stats) - 1.0).abs() < 1e-12);
        assert!((stats.max_slowdown(&stats) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_is_at_most_weighted() {
        let cfg = quick_cfg();
        let baseline = System::run_mix(&cfg, MitigationKind::None, 64, 2);
        let para = System::run_mix(&cfg, MitigationKind::Para, 64, 2);
        assert!(para.harmonic_ipc(&baseline) <= para.weighted_ipc(&baseline) + 1e-12);
        assert!(para.max_slowdown(&baseline) >= 1.0 - 1e-9);
    }

    #[test]
    fn mitigations_never_speed_things_up() {
        let cfg = quick_cfg();
        let baseline = System::run_mix(&cfg, MitigationKind::None, 128, 7);
        for kind in MitigationKind::EVALUATED {
            let stats = System::run_mix(&cfg, kind, 128, 7);
            let ws = stats.weighted_ipc(&baseline);
            assert!(ws <= 1.02, "{} gave weighted speedup {ws} > 1", kind.name());
        }
    }

    #[test]
    fn para_overhead_grows_with_smaller_threshold() {
        let cfg = quick_cfg();
        let baseline = System::run_mix(&cfg, MitigationKind::None, 1024, 3);
        let high = System::run_mix(&cfg, MitigationKind::Para, 1024, 3);
        let low = System::run_mix(&cfg, MitigationKind::Para, 64, 3);
        assert!(
            low.weighted_ipc(&baseline) < high.weighted_ipc(&baseline),
            "PARA at RDT 64 must be slower than at 1024"
        );
    }

    #[test]
    fn mint_cliff_below_acts_per_trefi() {
        let cfg = quick_cfg();
        let baseline = System::run_mix(&cfg, MitigationKind::None, 1024, 5);
        let high = System::run_mix(&cfg, MitigationKind::Mint, 1024, 5);
        let low = System::run_mix(&cfg, MitigationKind::Mint, 64, 5);
        let ws_high = high.weighted_ipc(&baseline);
        let ws_low = low.weighted_ipc(&baseline);
        assert!(ws_high > 0.97, "MINT at 1024 is near-free, got {ws_high}");
        assert!(ws_low < ws_high - 0.02, "MINT at 64 pays for RFMs: {ws_low} vs {ws_high}");
    }

    #[test]
    fn graphene_is_cheap_at_high_threshold() {
        let cfg = quick_cfg();
        let baseline = System::run_mix(&cfg, MitigationKind::None, 1024, 11);
        let g = System::run_mix(&cfg, MitigationKind::Graphene, 1024, 11);
        assert!(g.weighted_ipc(&baseline) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_cfg();
        let a = System::run_mix(&cfg, MitigationKind::Prac, 128, 9);
        let b = System::run_mix(&cfg, MitigationKind::Prac, 128, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn flat_profile_run_matches_uniform_run() {
        let cfg = quick_cfg();
        let flat = MitigationProfile::flat(128);
        for kind in MitigationKind::EVALUATED {
            let uniform = System::run_mix(&cfg, kind, 128, 9);
            let profiled = System::run_mix_with_profile(&cfg, kind, &flat, 9);
            assert_eq!(uniform, profiled, "{} diverged under a flat profile", kind.name());
        }
    }
}
