//! MLP-limited core model.
//!
//! Each core commits one instruction per nanosecond while it is not
//! blocked. Every `instructions_per_miss` committed instructions it emits
//! a memory request; it blocks when its miss window (memory-level
//! parallelism) is full. This is the standard first-order model for
//! memory-bound multiprogrammed throughput studies: IPC degrades exactly
//! with memory service time, which is what the Fig.-14 experiment
//! measures.

use serde::{Deserialize, Serialize};

use crate::workload::{Access, AccessStream};

/// Maximum outstanding misses per core (memory-level parallelism).
pub const DEFAULT_MLP: usize = 4;

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Core {
    stream: AccessStream,
    /// Committed instructions.
    pub instructions: u64,
    /// Instructions until the next miss is generated.
    until_miss: u64,
    /// Outstanding misses.
    pub outstanding: usize,
    /// Maximum outstanding misses.
    pub mlp: usize,
    /// A generated access waiting to be enqueued by the controller.
    pending: Option<Access>,
}

/// What a core did during one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreEvent {
    /// Committed an instruction (possibly also generating a miss).
    Progress,
    /// Blocked on a full miss window.
    Stalled,
}

impl Core {
    /// Creates a core over the given access stream.
    pub fn new(stream: AccessStream) -> Self {
        let until_miss = stream.instructions_per_miss();
        Core {
            stream,
            instructions: 0,
            until_miss,
            outstanding: 0,
            mlp: DEFAULT_MLP,
            pending: None,
        }
    }

    /// Advances the core by one nanosecond. Returns the event, and the
    /// controller should drain [`take_request`](Self::take_request)
    /// afterwards.
    pub fn step(&mut self) -> CoreEvent {
        if self.pending.is_some() || self.outstanding >= self.mlp {
            return CoreEvent::Stalled;
        }
        self.instructions += 1;
        self.until_miss -= 1;
        if self.until_miss == 0 {
            self.until_miss = self.stream.instructions_per_miss();
            self.pending = Some(self.stream.next_access());
        }
        CoreEvent::Progress
    }

    /// Takes the generated request, if any, marking it outstanding.
    pub fn take_request(&mut self) -> Option<Access> {
        let access = self.pending.take()?;
        self.outstanding += 1;
        Some(access)
    }

    /// Notifies the core that one of its misses completed.
    ///
    /// # Panics
    ///
    /// Panics if no miss is outstanding.
    pub fn complete_miss(&mut self) {
        assert!(self.outstanding > 0, "no outstanding miss to complete");
        self.outstanding -= 1;
    }

    /// Instructions per cycle over `elapsed` nanoseconds.
    pub fn ipc(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.instructions as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadParams;

    fn core() -> Core {
        Core::new(AccessStream::new(WorkloadParams::memory_intensive(100.0), 4, 7))
    }

    #[test]
    fn commits_until_miss_window_fills() {
        let mut c = core();
        // MPKI 100 → one miss per 10 instructions; MLP 4 → the core can
        // run 40 instructions before it must stall (requests unserviced).
        let mut committed = 0;
        for _ in 0..200 {
            if c.step() == CoreEvent::Progress {
                committed += 1;
            }
            let _ = c.take_request();
        }
        assert_eq!(committed, 40);
        assert_eq!(c.outstanding, 4);
    }

    #[test]
    fn completing_misses_unblocks() {
        let mut c = core();
        for _ in 0..100 {
            c.step();
            let _ = c.take_request();
        }
        assert_eq!(c.step(), CoreEvent::Stalled);
        c.complete_miss();
        assert_eq!(c.step(), CoreEvent::Progress);
    }

    #[test]
    fn pending_request_blocks_until_taken() {
        let mut c = core();
        for _ in 0..10 {
            c.step();
        }
        // 10th instruction generated a miss that was never drained.
        assert_eq!(c.step(), CoreEvent::Stalled);
        assert!(c.take_request().is_some());
        assert_eq!(c.step(), CoreEvent::Progress);
    }

    #[test]
    fn ipc_accounting() {
        let mut c = core();
        for _ in 0..10 {
            c.step();
            let _ = c.take_request();
        }
        assert!((c.ipc(10) - 1.0).abs() < 1e-12);
        assert_eq!(c.ipc(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn complete_without_outstanding_panics() {
        core().complete_miss();
    }
}
