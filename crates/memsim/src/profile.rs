//! Per-region mitigation threshold profiles.
//!
//! Every mechanism in [`crate::mitigation`] is classically keyed off one
//! uniform worst-case threshold: the weakest row anywhere in the bank
//! sets the trigger for every row, which is exactly the guardband waste
//! that *Spatial Variation-Aware Read Disturbance Defenses* quantifies.
//! A [`MitigationProfile`] instead carries one effective threshold per
//! fixed-size row region, derived from a characterization campaign's
//! measured minimum plus the device's spatial threshold structure
//! ([`vrd_dram::spatial::SpatialProfile`]): strong regions get higher
//! thresholds, so profile-aware mechanisms act less often there while
//! keeping the weakest region exactly as protected as before.
//!
//! The profile is a serde-round-trippable artifact: a sweep experiment
//! writes it as JSON next to its results, and [`MitigationProfile::load`]
//! re-reads it — returning a typed [`ProfileError`] (never panicking) on
//! truncated or corrupt input, mirroring the checkpoint journal's
//! torn-tail discipline.

use serde::{Deserialize, Serialize};
use std::path::Path;
use vrd_dram::spatial::SpatialProfile;

/// On-disk format version of the profile artifact.
pub const FORMAT_VERSION: u32 = 1;

/// A per-region effective-threshold map for one bank.
///
/// Rows are grouped into contiguous regions of `region_rows` physical
/// rows; region `i` covers rows `[i * region_rows, (i + 1) * region_rows)`.
/// Rows beyond the last region fall back to `fallback_threshold`, which
/// is the worst-case (uncharacterized) threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationProfile {
    /// Artifact format version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Module the characterization came from (informational).
    pub module: String,
    /// Rows per region.
    pub region_rows: u32,
    /// Effective threshold per region, lowest rows first.
    pub regions: Vec<u32>,
    /// Threshold for rows beyond the characterized regions (worst case).
    pub fallback_threshold: u32,
    /// Multiplicative guardband applied when the profile was derived
    /// (in `(0, 1]`; 1.0 means thresholds sit at the measured minima).
    pub guardband_factor: f64,
}

impl MitigationProfile {
    /// A flat profile: one region covering every row at `threshold`.
    /// Mechanisms built from a flat profile behave byte-identically to
    /// their uniform counterparts.
    pub fn flat(threshold: u32) -> Self {
        MitigationProfile {
            format_version: FORMAT_VERSION,
            module: String::new(),
            region_rows: u32::MAX,
            regions: vec![threshold.max(1)],
            fallback_threshold: threshold.max(1),
            guardband_factor: 1.0,
        }
    }

    /// Derives a profile from a characterization: the campaign's
    /// measured minimum RDT (`base_min_rdt`, the weakest covered row)
    /// anchors the weakest region, and each region's threshold scales by
    /// its spatial factor relative to the weakest one, then shrinks by
    /// `guardband_factor`. Rows outside `rows_covered` get the
    /// worst-case `base_min_rdt × guardband_factor`.
    ///
    /// # Panics
    ///
    /// Panics when `base_min_rdt`, `rows_covered`, or `region_rows` is
    /// zero, or `guardband_factor` is outside `(0, 1]`.
    pub fn from_characterization(
        module: impl Into<String>,
        base_min_rdt: u32,
        spatial: &SpatialProfile,
        device_seed: u64,
        rows_covered: u32,
        region_rows: u32,
        guardband_factor: f64,
    ) -> Self {
        assert!(base_min_rdt >= 1, "base minimum RDT must be positive");
        assert!(rows_covered >= 1, "need at least one covered row");
        assert!(region_rows >= 1, "regions must hold at least one row");
        assert!(
            guardband_factor > 0.0 && guardband_factor <= 1.0,
            "guardband factor must be in (0, 1]"
        );
        let global_min = spatial.min_factor_in(0..rows_covered, device_seed);
        let regions = (0..rows_covered.div_ceil(region_rows))
            .map(|region| {
                let start = region * region_rows;
                let end = (start.saturating_add(region_rows)).min(rows_covered);
                let relative = spatial.min_factor_in(start..end, device_seed) / global_min;
                scaled_threshold(base_min_rdt, relative, guardband_factor)
            })
            .collect();
        MitigationProfile {
            format_version: FORMAT_VERSION,
            module: module.into(),
            region_rows,
            regions,
            fallback_threshold: scaled_threshold(base_min_rdt, 1.0, guardband_factor),
            guardband_factor,
        }
    }

    /// The region index a row falls into (may exceed the profiled
    /// regions, in which case lookups use the fallback threshold).
    pub fn region_of(&self, row: u32) -> usize {
        (row / self.region_rows.max(1)) as usize
    }

    /// The effective threshold for a row.
    pub fn threshold_for(&self, row: u32) -> u32 {
        self.regions.get(self.region_of(row)).copied().unwrap_or(self.fallback_threshold)
    }

    /// The smallest threshold anywhere (profiled regions and fallback) —
    /// what a uniform worst-case configuration would use.
    pub fn min_threshold(&self) -> u32 {
        self.regions.iter().copied().min().unwrap_or(u32::MAX).min(self.fallback_threshold)
    }

    /// The largest profiled region threshold — what a spatially unaware
    /// characterization that happened to sample a strong region would
    /// report.
    pub fn max_region_threshold(&self) -> u32 {
        self.regions.iter().copied().max().unwrap_or(self.fallback_threshold)
    }

    /// Whether every region (and the fallback) shares one threshold.
    pub fn is_flat(&self) -> bool {
        self.regions.iter().all(|&t| t == self.fallback_threshold)
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Invalid`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.region_rows == 0 {
            return Err(ProfileError::Invalid("region_rows must be positive".into()));
        }
        if self.regions.is_empty() {
            return Err(ProfileError::Invalid("profile must have at least one region".into()));
        }
        if self.regions.contains(&0) || self.fallback_threshold == 0 {
            return Err(ProfileError::Invalid("thresholds must be positive".into()));
        }
        if !(self.guardband_factor > 0.0 && self.guardband_factor <= 1.0) {
            return Err(ProfileError::Invalid("guardband_factor must be in (0, 1]".into()));
        }
        Ok(())
    }

    /// Serializes the profile as pretty JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut json =
            serde_json::to_string_pretty(self).expect("profile serialization cannot fail");
        json.push('\n');
        json
    }

    /// Parses and validates a profile from JSON text.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Parse`] on malformed JSON (including truncated
    /// files), [`ProfileError::Version`] on a format-version mismatch,
    /// [`ProfileError::Invalid`] on out-of-range fields.
    pub fn from_json(text: &str) -> Result<Self, ProfileError> {
        let profile: MitigationProfile = serde_json::from_str(text)?;
        if profile.format_version != FORMAT_VERSION {
            return Err(ProfileError::Version {
                found: profile.format_version,
                expected: FORMAT_VERSION,
            });
        }
        profile.validate()?;
        Ok(profile)
    }

    /// Writes the profile artifact to `path`.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ProfileError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Reads and validates a profile artifact from `path`.
    ///
    /// # Errors
    ///
    /// As [`MitigationProfile::from_json`], plus [`ProfileError::Io`]
    /// when the file cannot be read.
    pub fn load(path: &Path) -> Result<Self, ProfileError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

fn scaled_threshold(base: u32, relative_factor: f64, guardband: f64) -> u32 {
    let scaled = (f64::from(base) * relative_factor * guardband).floor();
    if scaled >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        (scaled as u32).max(1)
    }
}

/// Failure to read, parse, or validate a profile artifact.
#[derive(Debug)]
pub enum ProfileError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON (truncated or corrupt artifact).
    Parse(serde_json::Error),
    /// The artifact was written by an incompatible format version.
    Version {
        /// Version found in the artifact.
        found: u32,
        /// Version this library reads.
        expected: u32,
    },
    /// Structurally valid JSON with out-of-range fields.
    Invalid(String),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "profile io error: {e}"),
            ProfileError::Parse(e) => write!(f, "profile parse error: {e}"),
            ProfileError::Version { found, expected } => {
                write!(f, "profile format version {found} (this build reads {expected})")
            }
            ProfileError::Invalid(reason) => write!(f, "invalid profile: {reason}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Io(e) => Some(e),
            ProfileError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProfileError {
    fn from(e: std::io::Error) -> Self {
        ProfileError::Io(e)
    }
}

impl From<serde_json::Error> for ProfileError {
    fn from(e: serde_json::Error) -> Self {
        ProfileError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_is_flat_everywhere() {
        let p = MitigationProfile::flat(512);
        assert!(p.is_flat());
        for row in [0u32, 1, 1_000_000, u32::MAX] {
            assert_eq!(p.threshold_for(row), 512);
        }
        assert_eq!(p.min_threshold(), 512);
        assert_eq!(p.max_region_threshold(), 512);
        p.validate().expect("flat profile is valid");
    }

    #[test]
    fn region_lookup_uses_fallback_beyond_coverage() {
        let p = MitigationProfile {
            format_version: FORMAT_VERSION,
            module: "M1".into(),
            region_rows: 100,
            regions: vec![200, 400, 800],
            fallback_threshold: 150,
            guardband_factor: 1.0,
        };
        assert_eq!(p.threshold_for(0), 200);
        assert_eq!(p.threshold_for(99), 200);
        assert_eq!(p.threshold_for(100), 400);
        assert_eq!(p.threshold_for(299), 800);
        assert_eq!(p.threshold_for(300), 150, "beyond coverage falls back");
        assert_eq!(p.min_threshold(), 150);
        assert_eq!(p.max_region_threshold(), 800);
        assert!(!p.is_flat());
    }

    #[test]
    fn characterization_anchors_weakest_region_at_base() {
        let spatial = SpatialProfile::wide();
        let p = MitigationProfile::from_characterization("M1", 128, &spatial, 7, 4096, 512, 1.0);
        assert_eq!(p.regions.len(), 8);
        assert_eq!(p.min_threshold(), 128, "the weakest region sits at the measured minimum");
        assert!(
            p.max_region_threshold() > 128,
            "a wide spatial spread must produce stronger regions"
        );
        assert_eq!(p.fallback_threshold, 128, "uncovered rows assume the worst case");
        // Each region threshold is sound: no row in the region has a
        // spatial factor below what the threshold assumes.
        for (i, &t) in p.regions.iter().enumerate() {
            let start = i as u32 * 512;
            let region_min = spatial.min_factor_in(start..start + 512, 7);
            let global_min = spatial.min_factor_in(0..4096, 7);
            let implied = f64::from(t) / 128.0;
            assert!(
                implied <= region_min / global_min + 1e-9,
                "region {i}: threshold multiple {implied} exceeds spatial floor"
            );
        }
    }

    #[test]
    fn guardband_scales_thresholds_down() {
        let spatial = SpatialProfile::wide();
        let full =
            MitigationProfile::from_characterization("M1", 1000, &spatial, 3, 2048, 512, 1.0);
        let half =
            MitigationProfile::from_characterization("M1", 1000, &spatial, 3, 2048, 512, 0.5);
        for (a, b) in full.regions.iter().zip(&half.regions) {
            assert_eq!(*b, a / 2);
        }
        assert_eq!(half.fallback_threshold, 500);
    }

    #[test]
    fn json_round_trip() {
        let spatial = SpatialProfile::wide();
        let p = MitigationProfile::from_characterization("S2", 300, &spatial, 11, 4096, 512, 0.9);
        let back = MitigationProfile::from_json(&p.to_json()).expect("round trip");
        assert_eq!(back, p);
    }

    #[test]
    fn truncated_json_is_a_parse_error() {
        let json = MitigationProfile::flat(64).to_json();
        for cut in [1, json.len() / 2, json.len() - 2] {
            let err = MitigationProfile::from_json(&json[..cut])
                .expect_err("truncated artifact must not parse");
            assert!(matches!(err, ProfileError::Parse(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut p = MitigationProfile::flat(64);
        p.format_version = 999;
        let err = MitigationProfile::from_json(&p.to_json()).expect_err("version must mismatch");
        assert!(matches!(err, ProfileError::Version { found: 999, expected: FORMAT_VERSION }));
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut zero_threshold = MitigationProfile::flat(64);
        zero_threshold.regions = vec![0];
        assert!(matches!(
            MitigationProfile::from_json(&zero_threshold.to_json()),
            Err(ProfileError::Invalid(_))
        ));
        let mut no_regions = MitigationProfile::flat(64);
        no_regions.regions.clear();
        assert!(matches!(no_regions.validate(), Err(ProfileError::Invalid(_))));
        let mut bad_guardband = MitigationProfile::flat(64);
        bad_guardband.guardband_factor = 0.0;
        assert!(matches!(bad_guardband.validate(), Err(ProfileError::Invalid(_))));
    }
}
