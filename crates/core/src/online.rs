//! Online RDT profiling — a prototype of the paper's proposed future
//! work (§6.5: "develop online RDT profiling mechanisms to efficiently
//! profile DRAM chips while the chips are in use").
//!
//! The profiler opportunistically re-measures the RDT of tracked rows
//! during idle windows, maintains each row's running minimum, and
//! recommends a guardbanded operating threshold that a *runtime
//! configurable* mitigation (future-work direction 3) can adopt. Because
//! VRD makes the true minimum a moving target, the profiler also reports
//! its *confidence*: the empirical probability that yet another
//! measurement undercuts the current guardbanded recommendation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use vrd_bender::routines::guess_rdt;
use vrd_bender::TestPlatform;
use vrd_dram::TestConditions;

/// Per-row online profile state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowProfile {
    /// Smallest RDT observed so far.
    pub observed_min: u32,
    /// Number of completed measurements.
    pub measurements: u32,
    /// Number of measurements that *lowered* the running minimum (a
    /// proxy for how unsettled the estimate still is).
    pub min_updates: u32,
}

/// Online profiler over a set of tracked rows.
///
/// # Examples
///
/// ```
/// use vrd_bender::TestPlatform;
/// use vrd_core::online::OnlineProfiler;
/// use vrd_dram::TestConditions;
///
/// let mut platform = TestPlatform::small_test(5);
/// let conditions = TestConditions::foundational();
/// let mut profiler = OnlineProfiler::new(0.2, conditions);
/// // Profile opportunistically; rows without weak cells report None.
/// for _ in 0..4 {
///     profiler.profile_round(&mut platform, &[100, 101, 102]);
/// }
/// ```
#[derive(Debug)]
pub struct OnlineProfiler {
    guardband: f64,
    conditions: TestConditions,
    profiles: HashMap<u32, RowProfile>,
    /// Simulated time spent profiling (ns), charged from the platform.
    profiling_time_ns: f64,
}

impl OnlineProfiler {
    /// Creates a profiler applying the given fractional `guardband` to
    /// observed minima.
    ///
    /// # Panics
    ///
    /// Panics if `guardband` is not in `[0, 1)`.
    pub fn new(guardband: f64, conditions: TestConditions) -> Self {
        assert!((0.0..1.0).contains(&guardband), "guardband must be in [0, 1)");
        OnlineProfiler { guardband, conditions, profiles: HashMap::new(), profiling_time_ns: 0.0 }
    }

    /// The configured guardband.
    pub fn guardband(&self) -> f64 {
        self.guardband
    }

    /// Total simulated time spent profiling (ns).
    pub fn profiling_time_ns(&self) -> f64 {
        self.profiling_time_ns
    }

    /// One profiling round: re-measures each row in `rows` once (an
    /// "idle window" worth of work) and folds the results in.
    pub fn profile_round(&mut self, platform: &mut TestPlatform, rows: &[u32]) {
        for &row in rows {
            let before = platform.elapsed_ns();
            let measured = guess_rdt(platform, 0, row, &self.conditions, 1 << 20);
            self.profiling_time_ns += platform.elapsed_ns() - before;
            let Some(rdt) = measured else { continue };
            let entry = self.profiles.entry(row).or_insert(RowProfile {
                observed_min: u32::MAX,
                measurements: 0,
                min_updates: 0,
            });
            entry.measurements += 1;
            if rdt < entry.observed_min {
                entry.observed_min = rdt;
                entry.min_updates += 1;
            }
        }
    }

    /// The profile of a row, if it has been measured at least once.
    pub fn profile(&self, row: u32) -> Option<RowProfile> {
        self.profiles.get(&row).copied()
    }

    /// The guardbanded threshold recommendation for a row.
    pub fn recommended_threshold(&self, row: u32) -> Option<u32> {
        let p = self.profiles.get(&row)?;
        Some(((f64::from(p.observed_min)) * (1.0 - self.guardband)).floor().max(1.0) as u32)
    }

    /// The system-wide recommendation: the guardbanded minimum across
    /// all tracked rows (what a runtime-configurable mitigation would be
    /// programmed with).
    pub fn global_recommendation(&self) -> Option<u32> {
        self.profiles
            .values()
            .map(|p| p.observed_min)
            .min()
            .map(|min| ((f64::from(min)) * (1.0 - self.guardband)).floor().max(1.0) as u32)
    }

    /// The fraction of recent measurements that still lowered a running
    /// minimum, across all rows — an online convergence signal (near
    /// zero once the profile is trustworthy, never exactly zero under
    /// VRD).
    pub fn instability(&self) -> f64 {
        let (updates, total) = self.profiles.values().fold((0u64, 0u64), |(u, t), p| {
            (u + u64::from(p.min_updates), t + u64::from(p.measurements))
        });
        if total == 0 {
            1.0
        } else {
            updates as f64 / total as f64
        }
    }

    /// Number of rows with at least one successful measurement.
    pub fn coverage(&self) -> usize {
        self.profiles.len()
    }
}

/// Trajectory of the global recommendation over profiling rounds — the
/// artifact the `online` experiment reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// `(round, global observed min, recommendation, instability)` rows.
    pub rounds: Vec<(u32, u32, u32, f64)>,
}

/// Profiles `rows` for `rounds` idle windows and records the
/// recommendation trajectory.
pub fn convergence_trace(
    platform: &mut TestPlatform,
    profiler: &mut OnlineProfiler,
    rows: &[u32],
    rounds: u32,
) -> ConvergenceTrace {
    let mut trace = Vec::with_capacity(rounds as usize);
    for round in 0..rounds {
        profiler.profile_round(platform, rows);
        if let Some(rec) = profiler.global_recommendation() {
            let min = profiler
                .profiles
                .values()
                .map(|p| p.observed_min)
                .min()
                .expect("recommendation implies a profile");
            trace.push((round, min, rec, profiler.instability()));
        }
    }
    ConvergenceTrace { rounds: trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_core_test_util::vulnerable_rows;

    // Small local helper module so tests can find rows to track.
    mod vrd_core_test_util {
        use super::*;
        pub fn vulnerable_rows(platform: &mut TestPlatform, count: usize) -> Vec<u32> {
            let conditions = TestConditions::foundational();
            let mut rows = Vec::new();
            for row in 2..4000u32 {
                if let Some(t) = platform.device_mut().oracle_row_threshold(0, row, &conditions) {
                    if t < 20_000.0 {
                        rows.push(row);
                        if rows.len() == count {
                            break;
                        }
                    }
                }
            }
            rows
        }
    }

    #[test]
    fn running_min_is_monotone() {
        let mut platform = TestPlatform::small_test(21);
        let rows = vulnerable_rows(&mut platform, 3);
        assert!(!rows.is_empty());
        let mut profiler = OnlineProfiler::new(0.1, TestConditions::foundational());
        let mut prev_min = u32::MAX;
        for _ in 0..8 {
            profiler.profile_round(&mut platform, &rows);
            if let Some(rec) = profiler.global_recommendation() {
                assert!(rec <= prev_min, "recommendation must never rise");
                prev_min = rec;
            }
        }
        assert!(profiler.coverage() >= 1);
        assert!(profiler.profiling_time_ns() > 0.0);
    }

    #[test]
    fn recommendation_applies_guardband() {
        let mut platform = TestPlatform::small_test(22);
        let rows = vulnerable_rows(&mut platform, 1);
        let mut profiler = OnlineProfiler::new(0.25, TestConditions::foundational());
        profiler.profile_round(&mut platform, &rows);
        let p = profiler.profile(rows[0]).expect("row measured");
        let rec = profiler.recommended_threshold(rows[0]).unwrap();
        assert_eq!(rec, (f64::from(p.observed_min) * 0.75).floor() as u32);
    }

    #[test]
    fn more_rounds_lower_or_hold_the_estimate() {
        let mut platform = TestPlatform::small_test(23);
        let rows = vulnerable_rows(&mut platform, 2);
        let mut profiler = OnlineProfiler::new(0.1, TestConditions::foundational());
        let trace = convergence_trace(&mut platform, &mut profiler, &rows, 12);
        assert!(!trace.rounds.is_empty());
        for pair in trace.rounds.windows(2) {
            assert!(pair[1].1 <= pair[0].1, "observed min is monotone non-increasing");
        }
    }

    #[test]
    fn instability_decays() {
        let mut platform = TestPlatform::small_test(24);
        let rows = vulnerable_rows(&mut platform, 2);
        let mut profiler = OnlineProfiler::new(0.1, TestConditions::foundational());
        profiler.profile_round(&mut platform, &rows);
        let early = profiler.instability();
        for _ in 0..15 {
            profiler.profile_round(&mut platform, &rows);
        }
        let late = profiler.instability();
        assert!(late <= early, "instability must not grow: {late} vs {early}");
        assert!(late < 1.0);
    }

    #[test]
    #[should_panic(expected = "guardband")]
    fn invalid_guardband_panics() {
        OnlineProfiler::new(1.0, TestConditions::foundational());
    }

    #[test]
    fn untracked_row_has_no_recommendation() {
        let profiler = OnlineProfiler::new(0.1, TestConditions::foundational());
        assert_eq!(profiler.recommended_threshold(5), None);
        assert_eq!(profiler.global_recommendation(), None);
        assert_eq!(profiler.coverage(), 0);
    }
}
