//! Algorithm 1: the paper's RDT temporal-variation test.
//!
//! Two phases: `find_victim` scans rows for one that is relatively
//! vulnerable (guessed RDT below 40,000 at minimum `t_AggOn` with
//! Checkered0, as the mean of 10 guesses); `test_loop` then measures that
//! row's RDT repeatedly, each measurement sweeping hammer counts from
//! `RDT_guess/2` to `RDT_guess×3` in increments of `RDT_guess/100` and
//! recording the first hammer count that produces a bitflip.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use vrd_bender::routines::{guess_rdt, hammer_session};
use vrd_bender::TestPlatform;
use vrd_dram::TestConditions;

use crate::series::RdtSeries;

/// The paper's vulnerability cutoff for victim selection (Alg. 1 line 6).
pub const FIND_VICTIM_CUTOFF: u32 = 40_000;

/// Hammer-count sweep grid of one RDT measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// First hammer count tested.
    pub min: u32,
    /// Upper bound (exclusive).
    pub max: u32,
    /// Grid step.
    pub step: u32,
}

impl SweepSpec {
    /// The paper's sweep for a guessed RDT: `[guess/2, guess×3)` in steps
    /// of `guess/100` (Alg. 1 lines 14–16).
    ///
    /// # Panics
    ///
    /// Panics if `guess` is zero.
    pub fn from_guess(guess: u32) -> Self {
        assert!(guess > 0, "guess must be nonzero");
        SweepSpec { min: guess / 2, max: guess.saturating_mul(3), step: (guess / 100).max(1) }
    }

    /// The hammer counts of the sweep, ascending.
    pub fn grid(&self) -> impl Iterator<Item = u32> + '_ {
        (self.min..self.max).step_by(self.step as usize)
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        if self.max <= self.min {
            0
        } else {
            ((self.max - self.min) as usize).div_ceil(self.step as usize)
        }
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One RDT measurement (Alg. 1's inner loop): sweeps the grid; at each
/// hammer count, initializes the rows, hammers double-sided, and reads
/// the victim back. Returns the first hammer count with a bitflip, or
/// `None` if the row survives the whole sweep (a censored measurement).
pub fn measure_rdt_once(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    sweep: &SweepSpec,
) -> Option<u32> {
    sweep.grid().find(|&hc| !hammer_session(platform, bank, victim, hc, conditions).is_empty())
}

/// Alg. 1's `find_victim`: scans `rows` in order, guessing each row's RDT
/// as the mean of 10 quick estimates; returns the first row whose guess
/// is below `cutoff`, together with the guess.
pub fn find_victim(
    platform: &mut TestPlatform,
    bank: usize,
    conditions: &TestConditions,
    cutoff: u32,
    rows: Range<u32>,
) -> Option<(u32, u32)> {
    for row in rows {
        // A cheap probe first: rows that never flip within 4× the cutoff
        // are skipped without spending 10 estimates.
        let Some(first) = guess_rdt(platform, bank, row, conditions, cutoff.saturating_mul(4))
        else {
            continue;
        };
        let mut sum = u64::from(first);
        let mut count = 1u64;
        for _ in 1..10 {
            if let Some(g) = guess_rdt(platform, bank, row, conditions, cutoff.saturating_mul(4)) {
                sum += u64::from(g);
                count += 1;
            }
        }
        let mean = (sum / count) as u32;
        if mean < cutoff {
            return Some((row, mean));
        }
    }
    None
}

/// Alg. 1's `test_loop`: measures the victim's RDT `measurements` times
/// over the given sweep, returning the series (censored sweeps counted
/// separately).
pub fn test_loop(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    measurements: u32,
    sweep: &SweepSpec,
) -> RdtSeries {
    let mut values = Vec::with_capacity(measurements as usize);
    let mut censored = 0u32;
    for _ in 0..measurements {
        match measure_rdt_once(platform, bank, victim, conditions, sweep) {
            Some(rdt) => values.push(rdt),
            None => censored += 1,
        }
    }
    RdtSeries::new(values, censored)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_from_guess_matches_alg1() {
        let s = SweepSpec::from_guess(10_000);
        assert_eq!(s.min, 5_000);
        assert_eq!(s.max, 30_000);
        assert_eq!(s.step, 100);
        assert_eq!(s.len(), 250);
    }

    #[test]
    fn sweep_small_guess_has_unit_step() {
        let s = SweepSpec::from_guess(50);
        assert_eq!(s.step, 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn sweep_grid_is_ascending() {
        let s = SweepSpec::from_guess(1_000);
        let grid: Vec<u32> = s.grid().collect();
        assert_eq!(grid.len(), s.len());
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(grid[0], 500);
    }

    #[test]
    fn find_victim_locates_vulnerable_row() {
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let found = find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000);
        let (row, guess) = found.expect("the test platform has vulnerable rows");
        assert!(guess < FIND_VICTIM_CUTOFF);
        assert!(row >= 2);
    }

    #[test]
    fn test_loop_produces_measurements_in_sweep_range() {
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let (row, guess) =
            find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000).unwrap();
        let sweep = SweepSpec::from_guess(guess);
        let series = test_loop(&mut platform, 0, row, &conditions, 30, &sweep);
        assert_eq!(series.len() + series.censored() as usize, 30);
        for &v in series.values() {
            assert!(v >= sweep.min && v < sweep.max);
            assert_eq!((v - sweep.min) % sweep.step, 0, "values lie on the grid");
        }
    }

    #[test]
    fn repeated_measurements_vary() {
        // The VRD phenomenon itself: the measured RDT changes over time.
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let (row, guess) =
            find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000).unwrap();
        let series =
            test_loop(&mut platform, 0, row, &conditions, 60, &SweepSpec::from_guess(guess));
        assert!(series.len() >= 30, "most sweeps must find a flip");
        assert!(
            vrd_stats::histogram::unique_count(series.values()) > 1,
            "RDT must take multiple states: {:?}",
            series.values()
        );
    }

    #[test]
    fn measure_rdt_once_none_for_invulnerable_row() {
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let strong = (2..2000)
            .find(|&r| platform.device_mut().oracle_row_threshold(0, r, &conditions).is_none())
            .expect("some row has no weak cell");
        let sweep = SweepSpec { min: 100, max: 2_000, step: 100 };
        assert_eq!(measure_rdt_once(&mut platform, 0, strong, &conditions, &sweep), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_guess_panics() {
        SweepSpec::from_guess(0);
    }
}
