//! Algorithm 1: the paper's RDT temporal-variation test.
//!
//! Two phases: `find_victim` scans rows for one that is relatively
//! vulnerable (guessed RDT below 40,000 at minimum `t_AggOn` with
//! Checkered0, as the mean of 10 guesses); `test_loop` then measures that
//! row's RDT repeatedly, each measurement sweeping hammer counts from
//! `RDT_guess/2` to `RDT_guess×3` in increments of `RDT_guess/100` and
//! recording the first hammer count that produces a bitflip.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use vrd_bender::routines::{guess_rdt, hammer_session};
use vrd_bender::TestPlatform;
use vrd_dram::TestConditions;

use crate::series::RdtSeries;

/// The paper's vulnerability cutoff for victim selection (Alg. 1 line 6).
pub const FIND_VICTIM_CUTOFF: u32 = 40_000;

/// How one RDT measurement locates the first flipping hammer count on the
/// sweep grid.
///
/// Both strategies probe the *same* grid (see [`SweepSpec::grid`]) under
/// keyed per-measurement dynamics (see
/// [`vrd_dram::device::DramDevice::begin_keyed_session`]), which make the
/// flip outcome at a grid point a pure function of the measurement epoch
/// — independent of which other grid points were probed before it. The
/// flip predicate is then monotone in the hammer count, so both
/// strategies return the identical first flipping count:
///
/// - [`Linear`](SearchStrategy::Linear) walks the grid in ascending
///   order, one hammer session per point — Alg. 1 as written, O(grid).
/// - [`Adaptive`](SearchStrategy::Adaptive) gallops and bisects
///   ([`vrd_bender::search::first_true`]) — O(log grid) sessions.
///
/// `tests/search_equivalence.rs` proves the byte-identity of the two on
/// full campaigns; the default is [`Adaptive`](SearchStrategy::Adaptive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// Ascending linear scan of the sweep grid.
    Linear,
    /// Gallop + bisect over the sweep grid.
    #[default]
    Adaptive,
}

impl SearchStrategy {
    fn name(self) -> &'static str {
        match self {
            SearchStrategy::Linear => "Linear",
            SearchStrategy::Adaptive => "Adaptive",
        }
    }
}

impl Serialize for SearchStrategy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_owned())
    }
}

impl Deserialize for SearchStrategy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => {
                s.parse().map_err(|_| serde::Error(format!("unknown search strategy `{s}`")))
            }
            other => Err(serde::Error(format!(
                "expected search strategy string, found {}",
                other.kind()
            ))),
        }
    }

    /// Configs serialized before the strategy existed deserialize to the
    /// default instead of erroring.
    fn from_missing_field(_name: &str) -> Result<Self, serde::Error> {
        Ok(SearchStrategy::default())
    }
}

impl std::str::FromStr for SearchStrategy {
    type Err = String;

    /// Accepts the variant name, case-insensitively (`linear` /
    /// `adaptive`), as used by the `--search` CLI flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "linear" => Ok(SearchStrategy::Linear),
            "adaptive" => Ok(SearchStrategy::Adaptive),
            other => {
                Err(format!("unknown search strategy `{other}` (expected `linear` or `adaptive`)"))
            }
        }
    }
}

impl std::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How one RDT measurement evaluates the hammer sessions of its sweep.
///
/// Both strategies produce byte-identical results — the same flip
/// outcomes, counters, simulated time/energy, and program-cache traffic —
/// because batched evaluation replays exactly the state transitions of
/// the scalar command sequence (see
/// [`vrd_dram::batch`] and `tests/batch_equivalence.rs`):
///
/// - [`Scalar`](EvalStrategy::Scalar) executes every session as DRAM
///   command programs, re-deriving each cell's per-epoch threshold on
///   every probe.
/// - [`Batch`](EvalStrategy::Batch) draws all of the epoch's per-bit
///   thresholds once into struct-of-arrays lanes
///   ([`vrd_dram::LaneThresholds`]) and reduces each probe to one
///   branch-free `u64` lane-mask compare pass over the whole row.
///
/// Rows the batch engine cannot capture (refresh/TRR interference, edge
/// victims, asymmetric mappings) silently fall back to the scalar path,
/// so `Batch` is safe — and the default — everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EvalStrategy {
    /// Per-session DRAM command execution.
    Scalar,
    /// Whole-row struct-of-arrays evaluation per epoch.
    #[default]
    Batch,
}

impl EvalStrategy {
    fn name(self) -> &'static str {
        match self {
            EvalStrategy::Scalar => "Scalar",
            EvalStrategy::Batch => "Batch",
        }
    }
}

impl Serialize for EvalStrategy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_owned())
    }
}

impl Deserialize for EvalStrategy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => {
                s.parse().map_err(|_| serde::Error(format!("unknown eval strategy `{s}`")))
            }
            other => {
                Err(serde::Error(format!("expected eval strategy string, found {}", other.kind())))
            }
        }
    }

    /// Configs serialized before the strategy existed deserialize to the
    /// default instead of erroring.
    fn from_missing_field(_name: &str) -> Result<Self, serde::Error> {
        Ok(EvalStrategy::default())
    }
}

impl std::str::FromStr for EvalStrategy {
    type Err = String;

    /// Accepts the variant name, case-insensitively (`scalar` / `batch`),
    /// as used by the `--eval` CLI flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(EvalStrategy::Scalar),
            "batch" => Ok(EvalStrategy::Batch),
            other => Err(format!("unknown eval strategy `{other}` (expected `scalar` or `batch`)")),
        }
    }
}

impl std::fmt::Display for EvalStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hammer-count sweep grid of one RDT measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// First hammer count tested.
    pub min: u32,
    /// Upper bound (exclusive).
    pub max: u32,
    /// Grid step.
    pub step: u32,
}

impl SweepSpec {
    /// The paper's sweep for a guessed RDT: `[guess/2, guess×3)` in steps
    /// of `guess/100` (Alg. 1 lines 14–16).
    ///
    /// # Panics
    ///
    /// Panics if `guess` is zero.
    pub fn from_guess(guess: u32) -> Self {
        assert!(guess > 0, "guess must be nonzero");
        SweepSpec { min: guess / 2, max: guess.saturating_mul(3), step: (guess / 100).max(1) }
    }

    /// The hammer counts of the sweep, ascending.
    pub fn grid(&self) -> impl Iterator<Item = u32> + '_ {
        (self.min..self.max).step_by(self.step as usize)
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        if self.max <= self.min {
            0
        } else {
            ((self.max - self.min) as usize).div_ceil(self.step as usize)
        }
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th hammer count of the grid (`idx < self.len()`),
    /// i.e. the value `self.grid().nth(idx)` yields.
    pub fn point(&self, idx: usize) -> u32 {
        self.min + (idx as u32) * self.step
    }

    /// Finds the first grid point for which `probe` returns true via
    /// gallop + bisect ([`vrd_bender::search::first_true`]), in O(log
    /// grid) probes. Returns exactly what
    /// `self.grid().find(|&hc| probe(hc))` returns provided `probe` is
    /// monotone in the hammer count (false below some grid point, true
    /// from it on) — which keyed measurement dynamics guarantee for the
    /// flip predicate.
    pub fn search_grid(&self, mut probe: impl FnMut(u32) -> bool) -> Option<u32> {
        vrd_bender::search::first_true(self.len(), |i| probe(self.point(i))).map(|i| self.point(i))
    }
}

/// One RDT measurement (Alg. 1's inner loop): finds the first hammer
/// count on the sweep grid whose session flips the victim, or `None` if
/// the row survives the whole sweep (a censored measurement).
///
/// Uses the default [`SearchStrategy`]; see [`measure_rdt_once_with`].
pub fn measure_rdt_once(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    sweep: &SweepSpec,
) -> Option<u32> {
    measure_rdt_once_with(platform, bank, victim, conditions, sweep, SearchStrategy::default())
}

/// One RDT measurement with an explicit [`SearchStrategy`].
///
/// The measurement opens a new *measurement epoch* on the platform and
/// runs every hammer session of the sweep in keyed-dynamics mode: the
/// per-cell threshold draw and the between-measurement trap evolution are
/// pure functions of `(dynamics seed, epoch, cell)`, independent of how
/// many sessions ran before or in which order. Under those dynamics the
/// flip predicate is monotone in the hammer count, so
/// [`Linear`](SearchStrategy::Linear) and
/// [`Adaptive`](SearchStrategy::Adaptive) return identical results — the
/// adaptive strategy merely spends O(log grid) sessions instead of
/// O(grid).
pub fn measure_rdt_once_with(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    sweep: &SweepSpec,
    search: SearchStrategy,
) -> Option<u32> {
    measure_rdt_once_using(
        platform,
        bank,
        victim,
        conditions,
        sweep,
        search,
        EvalStrategy::default(),
    )
}

/// One RDT measurement with explicit [`SearchStrategy`] and
/// [`EvalStrategy`].
///
/// Under [`EvalStrategy::Batch`] the measurement first tries to capture
/// the epoch as a [`vrd_dram::RowBatchProfile`] (one struct-of-arrays
/// threshold draw for the whole row); each probe then costs one
/// lane-compare pass instead of a full command-program session. When the
/// row cannot be captured — or the sweep is empty, so no session would
/// run at all — the measurement falls back to the scalar command path,
/// byte-identically.
pub fn measure_rdt_once_using(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    sweep: &SweepSpec,
    search: SearchStrategy,
    eval: EvalStrategy,
) -> Option<u32> {
    let epoch = platform.begin_measurement();
    if eval == EvalStrategy::Batch && !sweep.is_empty() {
        if let Some(mut batch) = platform.prepare_batch_epoch(epoch, bank, victim, conditions) {
            let mut probe = |hc: u32| {
                let session = u64::from((hc - sweep.min) / sweep.step);
                platform.begin_keyed_session(epoch, session);
                platform.run_batched_session(&mut batch, hc)
            };
            let first = match search {
                SearchStrategy::Linear => sweep.grid().find(|&hc| probe(hc)),
                SearchStrategy::Adaptive => sweep.search_grid(probe),
            };
            platform.end_keyed_session();
            return first;
        }
    }
    let mut probe = |hc: u32| {
        let session = u64::from((hc - sweep.min) / sweep.step);
        platform.begin_keyed_session(epoch, session);
        !hammer_session(platform, bank, victim, hc, conditions).is_empty()
    };
    let first = match search {
        SearchStrategy::Linear => sweep.grid().find(|&hc| probe(hc)),
        SearchStrategy::Adaptive => sweep.search_grid(probe),
    };
    platform.end_keyed_session();
    first
}

/// Alg. 1's `find_victim`: scans `rows` in order, guessing each row's RDT
/// as the mean of 10 quick estimates; returns the first row whose guess
/// is below `cutoff`, together with the guess.
pub fn find_victim(
    platform: &mut TestPlatform,
    bank: usize,
    conditions: &TestConditions,
    cutoff: u32,
    rows: Range<u32>,
) -> Option<(u32, u32)> {
    for row in rows {
        // A cheap probe first: rows that never flip within 4× the cutoff
        // are skipped without spending 10 estimates.
        let Some(first) = guess_rdt(platform, bank, row, conditions, cutoff.saturating_mul(4))
        else {
            continue;
        };
        let mut sum = u64::from(first);
        let mut count = 1u64;
        for _ in 1..10 {
            if let Some(g) = guess_rdt(platform, bank, row, conditions, cutoff.saturating_mul(4)) {
                sum += u64::from(g);
                count += 1;
            }
        }
        let mean = (sum / count) as u32;
        if mean < cutoff {
            return Some((row, mean));
        }
    }
    None
}

/// Alg. 1's `test_loop`: measures the victim's RDT `measurements` times
/// over the given sweep, returning the series (censored sweeps counted
/// separately). Uses the default [`SearchStrategy`].
pub fn test_loop(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    measurements: u32,
    sweep: &SweepSpec,
) -> RdtSeries {
    test_loop_with(
        platform,
        bank,
        victim,
        conditions,
        measurements,
        sweep,
        SearchStrategy::default(),
    )
}

/// Alg. 1's `test_loop` with an explicit [`SearchStrategy`] (see
/// [`measure_rdt_once_with`]).
pub fn test_loop_with(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    measurements: u32,
    sweep: &SweepSpec,
    search: SearchStrategy,
) -> RdtSeries {
    test_loop_using(
        platform,
        bank,
        victim,
        conditions,
        measurements,
        sweep,
        search,
        EvalStrategy::default(),
    )
}

/// Alg. 1's `test_loop` with explicit [`SearchStrategy`] and
/// [`EvalStrategy`] (see [`measure_rdt_once_using`]).
#[allow(clippy::too_many_arguments)]
pub fn test_loop_using(
    platform: &mut TestPlatform,
    bank: usize,
    victim: u32,
    conditions: &TestConditions,
    measurements: u32,
    sweep: &SweepSpec,
    search: SearchStrategy,
    eval: EvalStrategy,
) -> RdtSeries {
    let mut values = Vec::with_capacity(measurements as usize);
    let mut censored = 0u32;
    for _ in 0..measurements {
        match measure_rdt_once_using(platform, bank, victim, conditions, sweep, search, eval) {
            Some(rdt) => values.push(rdt),
            None => censored += 1,
        }
    }
    RdtSeries::new(values, censored)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_from_guess_matches_alg1() {
        let s = SweepSpec::from_guess(10_000);
        assert_eq!(s.min, 5_000);
        assert_eq!(s.max, 30_000);
        assert_eq!(s.step, 100);
        assert_eq!(s.len(), 250);
    }

    #[test]
    fn sweep_small_guess_has_unit_step() {
        let s = SweepSpec::from_guess(50);
        assert_eq!(s.step, 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn sweep_grid_is_ascending() {
        let s = SweepSpec::from_guess(1_000);
        let grid: Vec<u32> = s.grid().collect();
        assert_eq!(grid.len(), s.len());
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(grid[0], 500);
    }

    #[test]
    fn find_victim_locates_vulnerable_row() {
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let found = find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000);
        let (row, guess) = found.expect("the test platform has vulnerable rows");
        assert!(guess < FIND_VICTIM_CUTOFF);
        assert!(row >= 2);
    }

    #[test]
    fn test_loop_produces_measurements_in_sweep_range() {
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let (row, guess) =
            find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000).unwrap();
        let sweep = SweepSpec::from_guess(guess);
        let series = test_loop(&mut platform, 0, row, &conditions, 30, &sweep);
        assert_eq!(series.len() + series.censored() as usize, 30);
        for &v in series.values() {
            assert!(v >= sweep.min && v < sweep.max);
            assert_eq!((v - sweep.min) % sweep.step, 0, "values lie on the grid");
        }
    }

    #[test]
    fn repeated_measurements_vary() {
        // The VRD phenomenon itself: the measured RDT changes over time.
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let (row, guess) =
            find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000).unwrap();
        let series =
            test_loop(&mut platform, 0, row, &conditions, 60, &SweepSpec::from_guess(guess));
        assert!(series.len() >= 30, "most sweeps must find a flip");
        assert!(
            vrd_stats::histogram::unique_count(series.values()) > 1,
            "RDT must take multiple states: {:?}",
            series.values()
        );
    }

    #[test]
    fn measure_rdt_once_none_for_invulnerable_row() {
        let mut platform = TestPlatform::small_test(9);
        let conditions = TestConditions::foundational();
        let strong = (2..2000)
            .find(|&r| platform.device_mut().oracle_row_threshold(0, r, &conditions).is_none())
            .expect("some row has no weak cell");
        let sweep = SweepSpec { min: 100, max: 2_000, step: 100 };
        assert_eq!(measure_rdt_once(&mut platform, 0, strong, &conditions, &sweep), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_guess_panics() {
        SweepSpec::from_guess(0);
    }

    #[test]
    fn point_matches_grid_order() {
        let s = SweepSpec::from_guess(10_000);
        for (i, hc) in s.grid().enumerate() {
            assert_eq!(s.point(i), hc);
        }
    }

    #[test]
    fn search_strategy_parses_and_roundtrips() {
        use serde::{Deserialize as _, Serialize as _};
        assert_eq!("linear".parse::<SearchStrategy>().unwrap(), SearchStrategy::Linear);
        assert_eq!("Adaptive".parse::<SearchStrategy>().unwrap(), SearchStrategy::Adaptive);
        assert!("fast".parse::<SearchStrategy>().is_err());
        for s in [SearchStrategy::Linear, SearchStrategy::Adaptive] {
            assert_eq!(SearchStrategy::from_value(&s.to_value()).unwrap(), s);
            assert_eq!(s.to_string().parse::<SearchStrategy>().unwrap(), s);
        }
        // Configs from before the field existed keep deserializing.
        assert_eq!(
            SearchStrategy::from_missing_field("search").unwrap(),
            SearchStrategy::default()
        );
    }

    #[test]
    fn linear_and_adaptive_measure_identical_series() {
        let conditions = TestConditions::foundational();
        let measure = |search| {
            let mut platform = TestPlatform::small_test(9);
            let (row, guess) =
                find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000).unwrap();
            let sweep = SweepSpec::from_guess(guess);
            let before = platform.hammer_sessions();
            let series = test_loop_with(&mut platform, 0, row, &conditions, 40, &sweep, search);
            (series, platform.hammer_sessions() - before)
        };
        let (linear, linear_sessions) = measure(SearchStrategy::Linear);
        let (adaptive, adaptive_sessions) = measure(SearchStrategy::Adaptive);
        assert_eq!(linear, adaptive, "strategies must measure identical RDT series");
        assert!(
            adaptive_sessions * 4 <= linear_sessions,
            "adaptive must use ≤¼ the sessions ({adaptive_sessions} vs {linear_sessions})"
        );
    }

    #[test]
    fn linear_and_adaptive_agree_on_censored_sweeps() {
        let conditions = TestConditions::foundational();
        let run = |search| {
            let mut platform = TestPlatform::small_test(9);
            let strong = (2..2000)
                .find(|&r| platform.device_mut().oracle_row_threshold(0, r, &conditions).is_none())
                .expect("some row has no weak cell");
            let sweep = SweepSpec { min: 100, max: 2_000, step: 100 };
            test_loop_with(&mut platform, 0, strong, &conditions, 10, &sweep, search)
        };
        let linear = run(SearchStrategy::Linear);
        let adaptive = run(SearchStrategy::Adaptive);
        assert_eq!(linear, adaptive);
        assert_eq!(adaptive.censored(), 10);
    }

    #[test]
    fn eval_strategy_parses_and_roundtrips() {
        use serde::{Deserialize as _, Serialize as _};
        assert_eq!("scalar".parse::<EvalStrategy>().unwrap(), EvalStrategy::Scalar);
        assert_eq!("Batch".parse::<EvalStrategy>().unwrap(), EvalStrategy::Batch);
        assert!("vector".parse::<EvalStrategy>().is_err());
        for e in [EvalStrategy::Scalar, EvalStrategy::Batch] {
            assert_eq!(EvalStrategy::from_value(&e.to_value()).unwrap(), e);
            assert_eq!(e.to_string().parse::<EvalStrategy>().unwrap(), e);
        }
        // Configs from before the field existed keep deserializing.
        assert_eq!(EvalStrategy::from_missing_field("eval").unwrap(), EvalStrategy::default());
    }

    #[test]
    fn scalar_and_batch_measure_identical_series() {
        let conditions = TestConditions::foundational();
        let measure = |eval| {
            let mut platform = TestPlatform::small_test(9);
            let (row, guess) =
                find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000).unwrap();
            let sweep = SweepSpec::from_guess(guess);
            let series = test_loop_using(
                &mut platform,
                0,
                row,
                &conditions,
                40,
                &sweep,
                SearchStrategy::Adaptive,
                eval,
            );
            (series, platform.hammer_sessions(), platform.elapsed_ns(), platform.energy_j())
        };
        let scalar = measure(EvalStrategy::Scalar);
        let batch = measure(EvalStrategy::Batch);
        assert_eq!(scalar.0, batch.0, "strategies must measure identical RDT series");
        assert_eq!(scalar.1, batch.1, "hammer-session counters must match");
        assert_eq!(scalar.2.to_bits(), batch.2.to_bits(), "simulated time must match bitwise");
        assert_eq!(scalar.3.to_bits(), batch.3.to_bits(), "simulated energy must match bitwise");
    }

    #[test]
    fn batch_falls_back_when_refresh_is_enabled() {
        // With refresh (and thus TRR) on, the batch engine must decline
        // and the scalar fallback must still measure.
        let conditions = TestConditions::foundational();
        let mut platform = TestPlatform::small_test(9);
        let (row, guess) =
            find_victim(&mut platform, 0, &conditions, FIND_VICTIM_CUTOFF, 2..2000).unwrap();
        platform.set_refresh_enabled(true);
        let sweep = SweepSpec::from_guess(guess);
        let batch = test_loop_using(
            &mut platform,
            0,
            row,
            &conditions,
            5,
            &sweep,
            SearchStrategy::Adaptive,
            EvalStrategy::Batch,
        );
        assert_eq!(batch.len() + batch.censored() as usize, 5);
    }
}
