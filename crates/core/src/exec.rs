//! Deterministic parallel campaign executor.
//!
//! The paper's campaigns are embarrassingly parallel — §4 measures one
//! row per module across the fleet, §5 sweeps 150 rows × data-pattern ×
//! `t_AggOn` × temperature grids — but naive parallelism would make the
//! results depend on scheduling: the device's dynamics RNG advances with
//! every measurement, so whichever unit runs first draws different
//! numbers.
//!
//! This executor makes parallel campaigns **bit-identical regardless of
//! thread count or scheduling order** by construction:
//!
//! 1. Work is split into *units* (module × row × condition cell), each
//!    identified by a stable [`UnitKey`].
//! 2. Every unit derives its own ChaCha seed from
//!    `(campaign_seed, unit_key)` via [`derive_unit_seed`] and reseeds
//!    its platform's dynamics RNG with it, so no unit observes RNG state
//!    left behind by another.
//! 3. Results are collected over a channel tagged with the unit's input
//!    index and emitted in input order, so the output sequence is stable
//!    no matter which worker finished first.
//!
//! Scheduling is work-stealing: each worker owns a queue (striped
//! round-robin at submission), pops locally, and steals half of the
//! largest other queue when it runs dry. A panicking unit is caught,
//! reported as [`UnitOutcome::Panicked`], and never blocks the pool.
//!
//! Shared progress lives in [`Progress`] (atomic counters behind
//! `parking_lot`-style locks only where needed): units done, bitflips
//! found, and simulated test time consumed, for CLI throughput
//! rendering while a campaign runs.
//!
//! Runs can be **cancelled** cooperatively: [`execute_cancellable`]
//! takes an `AtomicBool` flag checked before each unit is popped. Units
//! never started report [`UnitOutcome::Skipped`]; in-flight units finish
//! normally unless they poll [`UnitCtx::is_cancelled`] themselves and
//! yield via [`UnitCtx::interrupt`] (long per-unit loops, like the
//! discovery campaign's epoch loop, do — an interrupted unit also
//! reports `Skipped` and reruns on resume).
//! [`crate::checkpoint`] builds crash-safe resume on top of
//! this, and the cfg-gated [`faults`] module turns the flag into a
//! deterministic kill switch for testing.
//!
//! Runs can be **observed**: [`execute_run`] additionally emits
//! [`crate::obs::Event::UnitStarted`] / `UnitFinished` (with per-unit
//! wall time, simulated test time/energy, and bitflips) into an
//! [`Observer`], feeding JSONL traces and `metrics.json`. Observation is
//! purely additive — it never touches seeds, scheduling, or outputs.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::algorithm::{EvalStrategy, SearchStrategy};
use crate::obs::{Event, NullObserver, Observer, OutcomeKind};

#[cfg(feature = "fault-injection")]
pub mod faults;

/// Executor configuration: worker-thread count and the campaign seed all
/// unit seeds derive from.
///
/// `#[non_exhaustive]`: construct through [`ExecConfig::new`],
/// [`ExecConfig::serial`], or [`ExecConfig::builder`], so future fields
/// are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ExecConfig {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// The campaign seed; combined with each [`UnitKey`] into the
    /// per-unit dynamics seed.
    pub campaign_seed: u64,
    /// How RDT measurements locate the first flipping grid point. Both
    /// strategies produce byte-identical campaign results (see
    /// [`SearchStrategy`]); [`Adaptive`](SearchStrategy::Adaptive) — the
    /// default — spends O(log grid) hammer sessions per measurement
    /// instead of O(grid).
    pub search: SearchStrategy,
    /// How RDT measurements evaluate the hammer sessions they probe.
    /// Both strategies produce byte-identical campaign results (see
    /// [`EvalStrategy`]); [`Batch`](EvalStrategy::Batch) — the default —
    /// evaluates a whole row per measurement epoch in one
    /// struct-of-arrays pass instead of per-session command programs.
    pub eval: EvalStrategy,
}

impl ExecConfig {
    /// A parallel configuration with the given thread count.
    pub fn new(threads: usize, campaign_seed: u64) -> Self {
        ExecConfig {
            threads,
            campaign_seed,
            search: SearchStrategy::default(),
            eval: EvalStrategy::default(),
        }
    }

    /// A single-threaded configuration (the reference ordering; parallel
    /// runs must match it byte for byte).
    pub fn serial(campaign_seed: u64) -> Self {
        ExecConfig {
            threads: 1,
            campaign_seed,
            search: SearchStrategy::default(),
            eval: EvalStrategy::default(),
        }
    }

    /// A builder seeded with the defaults (all cores, campaign seed 0).
    pub fn builder() -> ExecConfigBuilder {
        ExecConfigBuilder { cfg: ExecConfig::new(0, 0) }
    }

    /// A builder seeded with this configuration's values.
    pub fn to_builder(self) -> ExecConfigBuilder {
        ExecConfigBuilder { cfg: self }
    }

    /// The effective worker count for `unit_count` units.
    pub fn effective_threads(&self, unit_count: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.threads
        };
        configured.clamp(1, unit_count.max(1))
    }
}

/// Builder for [`ExecConfig`]; obtained from [`ExecConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct ExecConfigBuilder {
    cfg: ExecConfig,
}

impl ExecConfigBuilder {
    /// Sets the worker-thread count (0 = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Sets the campaign seed.
    pub fn campaign_seed(mut self, campaign_seed: u64) -> Self {
        self.cfg.campaign_seed = campaign_seed;
        self
    }

    /// Sets the RDT search strategy.
    pub fn search(mut self, search: SearchStrategy) -> Self {
        self.cfg.search = search;
        self
    }

    /// Sets the hammer-session evaluation strategy.
    pub fn eval(mut self, eval: EvalStrategy) -> Self {
        self.cfg.eval = eval;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ExecConfig {
        self.cfg
    }
}

/// Stable identity of one work unit. The seed derivation uses the key's
/// *contents* (not its position), so inserting or removing units never
/// shifts the seeds of the others.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnitKey {
    /// Module name (paper Table 1).
    pub module: String,
    /// Row address, or [`UnitKey::WHOLE_MODULE`] for module-level units.
    pub row: u32,
    /// Condition-grid index, or [`UnitKey::WHOLE_MODULE`] for
    /// module-level units.
    pub condition: u32,
}

impl UnitKey {
    /// Sentinel row/condition for units spanning a whole module.
    pub const WHOLE_MODULE: u32 = u32::MAX;

    /// Key of a module-level unit (e.g. one foundational campaign run or
    /// the in-depth row-selection phase).
    pub fn module(name: &str) -> Self {
        UnitKey { module: name.to_owned(), row: Self::WHOLE_MODULE, condition: Self::WHOLE_MODULE }
    }

    /// Key of a (module × row × condition) measurement cell.
    pub fn cell(module: &str, row: u32, condition: u32) -> Self {
        UnitKey { module: module.to_owned(), row, condition }
    }
}

/// Derives the per-unit ChaCha seed from the campaign seed and the unit
/// key: FNV-1a over the module name folded with a splitmix64 finalizer
/// over `(row, condition)`. Documented in EXPERIMENTS.md; changing this
/// changes every campaign's numbers, so it is locked by the golden
/// tests.
pub fn derive_unit_seed(campaign_seed: u64, key: &UnitKey) -> u64 {
    let mut h = campaign_seed ^ 0xCAFE_F00D_D15E_A5E5_u64;
    for b in key.module.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h ^= u64::from(key.row).rotate_left(32) ^ u64::from(key.condition);
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// One schedulable unit: a stable key plus the payload the work closure
/// consumes.
#[derive(Debug, Clone)]
pub struct Unit<I> {
    /// Stable identity (drives the seed and output labelling).
    pub key: UnitKey,
    /// Input handed to the work closure.
    pub payload: I,
}

impl<I> Unit<I> {
    /// Bundles a key with its payload.
    pub fn new(key: UnitKey, payload: I) -> Self {
        Unit { key, payload }
    }
}

/// Shared live progress counters of one executor run. Cheap to read
/// concurrently; the experiments CLI polls this from a heartbeat thread
/// while the campaign runs.
#[derive(Debug, Default)]
pub struct Progress {
    total: AtomicUsize,
    done: AtomicUsize,
    panicked: AtomicUsize,
    flips: AtomicU64,
    hammer_sessions: AtomicU64,
    measurement_epochs: AtomicU64,
    sim_time_ns: AtomicU64,
    sim_energy_pj: AtomicU64,
}

impl Progress {
    /// Fresh counters (total is set by the executor on entry).
    pub fn new() -> Self {
        Progress::default()
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            units_total: self.total.load(Ordering::Relaxed),
            units_done: self.done.load(Ordering::Relaxed),
            units_panicked: self.panicked.load(Ordering::Relaxed),
            flips_found: self.flips.load(Ordering::Relaxed),
            hammer_sessions: self.hammer_sessions.load(Ordering::Relaxed),
            measurement_epochs: self.measurement_epochs.load(Ordering::Relaxed),
            sim_time_ns: self.sim_time_ns.load(Ordering::Relaxed) as f64,
            sim_energy_j: self.sim_energy_pj.load(Ordering::Relaxed) as f64 * 1e-12,
        }
    }

    /// Enrolls another batch of units. Counters accumulate, so one
    /// `Progress` can observe a multi-phase campaign (selection units
    /// first, then measurement cells) as a single progress bar.
    fn enroll(&self, total: usize) {
        self.total.fetch_add(total, Ordering::Relaxed);
    }

    fn record_flips(&self, n: u64) {
        self.flips.fetch_add(n, Ordering::Relaxed);
    }

    fn record_hammer_sessions(&self, n: u64) {
        self.hammer_sessions.fetch_add(n, Ordering::Relaxed);
    }

    fn record_measurement_epochs(&self, n: u64) {
        self.measurement_epochs.fetch_add(n, Ordering::Relaxed);
    }

    fn record_sim_time_ns(&self, ns: f64) {
        // Whole nanoseconds are plenty for throughput display.
        self.sim_time_ns.fetch_add(ns.max(0.0) as u64, Ordering::Relaxed);
    }

    fn record_sim_energy_j(&self, joules: f64) {
        // Stored in whole picojoules: plenty of resolution for display
        // and aggregation, and an atomic u64 holds up to ~18 MJ.
        self.sim_energy_pj.fetch_add((joules.max(0.0) * 1e12) as u64, Ordering::Relaxed);
    }

    /// Enrolls `n` units restored from a checkpoint journal as already
    /// done, so a resumed campaign's progress bar starts where the
    /// previous run left off.
    pub(crate) fn restore(&self, n: usize) {
        self.total.fetch_add(n, Ordering::Relaxed);
        self.done.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time view of [`Progress`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Units submitted to this run.
    pub units_total: usize,
    /// Units finished (completed or panicked).
    pub units_done: usize,
    /// Units that panicked.
    pub units_panicked: usize,
    /// Bitflips (successful RDT measurements) reported by units so far.
    pub flips_found: u64,
    /// Hammer sessions (init + hammer + read) executed so far — the unit
    /// of work the RDT search strategy minimizes.
    pub hammer_sessions: u64,
    /// RDT measurement epochs opened so far. Search and eval strategies
    /// may change how many *sessions* an epoch costs, never how many
    /// epochs a campaign opens — the regression tests pin this.
    pub measurement_epochs: u64,
    /// Simulated DRAM test time consumed so far (ns).
    pub sim_time_ns: f64,
    /// Estimated DRAM test energy consumed so far (J), per the bender
    /// platform's Appendix-A energy model.
    pub sim_energy_j: f64,
}

impl ProgressSnapshot {
    /// Simulated test time in seconds.
    pub fn sim_time_s(&self) -> f64 {
        self.sim_time_ns * 1e-9
    }
}

/// Per-unit tallies of what the work closure reported, kept on the
/// worker's stack so the `UnitFinished` event can carry the unit's own
/// deltas (the shared [`Progress`] only holds campaign-wide sums).
#[derive(Debug, Default)]
struct UnitTally {
    flips: Cell<u64>,
    hammer_sessions: Cell<u64>,
    sim_time_ns: Cell<f64>,
    sim_energy_j: Cell<f64>,
    /// Set by [`UnitCtx::interrupt`]: the closure yielded mid-unit to a
    /// cancellation request, so its return value is partial and must not
    /// be committed.
    interrupted: Cell<bool>,
}

/// Per-unit context handed to the work closure.
#[derive(Clone, Copy)]
pub struct UnitCtx<'a> {
    /// The unit's derived dynamics seed; reseed the platform with this.
    pub seed: u64,
    /// The unit's stable key.
    pub key: &'a UnitKey,
    progress: &'a Progress,
    tally: &'a UnitTally,
    cancel: Option<&'a AtomicBool>,
}

impl UnitCtx<'_> {
    /// Reports successful RDT measurements (bitflips found).
    pub fn record_flips(&self, n: u64) {
        self.progress.record_flips(n);
        self.tally.flips.set(self.tally.flips.get() + n);
    }

    /// Reports hammer sessions executed (read from
    /// [`vrd_bender::TestPlatform::hammer_sessions`] deltas).
    pub fn record_hammer_sessions(&self, n: u64) {
        self.progress.record_hammer_sessions(n);
        self.tally.hammer_sessions.set(self.tally.hammer_sessions.get() + n);
    }

    /// Reports measurement epochs opened (read from
    /// [`vrd_bender::TestPlatform::measurement_epochs`] deltas).
    pub fn record_measurement_epochs(&self, n: u64) {
        self.progress.record_measurement_epochs(n);
    }

    /// Reports simulated test time consumed (ns).
    pub fn record_sim_time_ns(&self, ns: f64) {
        self.progress.record_sim_time_ns(ns);
        self.tally.sim_time_ns.set(self.tally.sim_time_ns.get() + ns);
    }

    /// Reports estimated test energy consumed (J).
    pub fn record_sim_energy_j(&self, joules: f64) {
        self.progress.record_sim_energy_j(joules);
        self.tally.sim_energy_j.set(self.tally.sim_energy_j.get() + joules);
    }

    /// Whether the run's cancellation flag has flipped. Long-running
    /// units (the discovery campaign's per-row epoch loops) poll this to
    /// yield mid-unit instead of finishing a row the run no longer
    /// wants.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    /// Marks this unit as interrupted: its return value is partial and
    /// must be discarded, not committed. The executor reports the unit
    /// as [`UnitOutcome::Skipped`] (so a resume reruns it) and the
    /// checkpointed path skips the journal append.
    pub fn interrupt(&self) {
        self.tally.interrupted.set(true);
    }

    /// Whether [`UnitCtx::interrupt`] was called on this unit.
    pub fn was_interrupted(&self) -> bool {
        self.tally.interrupted.get()
    }
}

/// How one unit ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitOutcome<T> {
    /// The unit ran to completion.
    Completed(T),
    /// The unit panicked; the message is the panic payload.
    Panicked(String),
    /// The run was cancelled before the unit was started.
    Skipped,
}

impl<T> UnitOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            UnitOutcome::Completed(v) => Some(v),
            UnitOutcome::Panicked(_) | UnitOutcome::Skipped => None,
        }
    }

    /// Whether the unit panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, UnitOutcome::Panicked(_))
    }

    /// Whether the unit was skipped by cancellation.
    pub fn is_skipped(&self) -> bool {
        matches!(self, UnitOutcome::Skipped)
    }
}

/// The executor's result: one outcome per unit, **in input order**, plus
/// the final progress snapshot.
#[derive(Debug)]
pub struct ExecReport<T> {
    /// Per-unit outcomes, index-aligned with the submitted units.
    pub outcomes: Vec<UnitOutcome<T>>,
    /// Final counters.
    pub progress: ProgressSnapshot,
}

impl<T> ExecReport<T> {
    /// Unwraps all outcomes into their values.
    ///
    /// # Panics
    ///
    /// Re-raises the first unit panic (campaign code treats a panicking
    /// unit as a bug, matching the old `crossbeam::scope` behaviour).
    pub fn into_results(self) -> Vec<T> {
        self.outcomes
            .into_iter()
            .map(|o| match o {
                UnitOutcome::Completed(v) => v,
                UnitOutcome::Panicked(msg) => panic!("campaign unit panicked: {msg}"),
                UnitOutcome::Skipped => panic!("campaign unit skipped: run was cancelled"),
            })
            .collect()
    }
}

/// Runs every unit through `f` on a work-stealing pool and returns the
/// outcomes in input order. See the [module docs](self) for the
/// determinism contract.
pub fn execute<I, T, F>(cfg: &ExecConfig, units: Vec<Unit<I>>, f: F) -> ExecReport<T>
where
    I: Send + Sync,
    T: Send,
    F: Fn(UnitCtx<'_>, &I) -> T + Sync,
{
    let progress = Progress::new();
    execute_observed(cfg, units, &progress, f)
}

/// Like [`execute`], but reports progress into caller-owned counters so
/// a heartbeat thread can watch the run.
pub fn execute_observed<I, T, F>(
    cfg: &ExecConfig,
    units: Vec<Unit<I>>,
    progress: &Progress,
    f: F,
) -> ExecReport<T>
where
    I: Send + Sync,
    T: Send,
    F: Fn(UnitCtx<'_>, &I) -> T + Sync,
{
    execute_cancellable(cfg, units, progress, None, f)
}

/// Like [`execute_observed`], but cooperatively cancellable: when
/// `cancel` flips to `true`, workers stop popping new units (in-flight
/// units finish and report normally) and every never-started unit comes
/// back as [`UnitOutcome::Skipped`]. Passing `None` is exactly
/// [`execute_observed`].
pub fn execute_cancellable<I, T, F>(
    cfg: &ExecConfig,
    units: Vec<Unit<I>>,
    progress: &Progress,
    cancel: Option<&AtomicBool>,
    f: F,
) -> ExecReport<T>
where
    I: Send + Sync,
    T: Send,
    F: Fn(UnitCtx<'_>, &I) -> T + Sync,
{
    execute_run(cfg, units, progress, cancel, &NullObserver, f)
}

/// The fully-general executor entry point: cancellable like
/// [`execute_cancellable`], and additionally emits
/// [`Event::UnitStarted`] and [`Event::UnitFinished`] (with the unit's
/// wall time and its own bitflip / simulated-time / simulated-energy
/// deltas) into `observer`. Events are emitted from worker threads, so
/// their interleaving is scheduling-dependent; their contents are not
/// (see [`crate::obs::canonical`]).
pub fn execute_run<I, T, F>(
    cfg: &ExecConfig,
    units: Vec<Unit<I>>,
    progress: &Progress,
    cancel: Option<&AtomicBool>,
    observer: &dyn Observer,
    f: F,
) -> ExecReport<T>
where
    I: Send + Sync,
    T: Send,
    F: Fn(UnitCtx<'_>, &I) -> T + Sync,
{
    progress.enroll(units.len());
    if units.is_empty() {
        return ExecReport { outcomes: Vec::new(), progress: progress.snapshot() };
    }
    let threads = cfg.effective_threads(units.len());

    // Striped initial assignment: unit i starts on queue i mod threads,
    // so every worker begins with a share of early (often larger) units.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..units.len() {
        queues[i % threads].lock().push_back(i);
    }

    let (tx, rx) = crossbeam::channel::unbounded::<(usize, UnitOutcome<T>)>();
    let units = &units;
    let queues = &queues;
    let f = &f;

    let mut slots: Vec<Option<UnitOutcome<T>>> = Vec::new();
    slots.resize_with(units.len(), || None);
    crossbeam::scope(|scope| {
        for worker in 0..threads {
            let tx = tx.clone();
            scope.spawn(move |_| {
                while !cancel.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
                    let Some(index) = next_unit(worker, queues) else { break };
                    let unit = &units[index];
                    observer.on_event(&Event::UnitStarted { key: unit.key.clone() });
                    let tally = UnitTally::default();
                    let started = Instant::now();
                    let ctx = UnitCtx {
                        seed: derive_unit_seed(cfg.campaign_seed, &unit.key),
                        key: &unit.key,
                        progress,
                        tally: &tally,
                        cancel,
                    };
                    let caught = catch_unwind(AssertUnwindSafe(|| f(ctx, &unit.payload)));
                    let interrupted = tally.interrupted.get();
                    let outcome = match caught {
                        // An interrupted closure's value is partial; report
                        // the unit as never-finished so a resume reruns it.
                        Ok(_) if interrupted => UnitOutcome::Skipped,
                        Ok(value) => UnitOutcome::Completed(value),
                        Err(payload) => {
                            progress.panicked.fetch_add(1, Ordering::Relaxed);
                            UnitOutcome::Panicked(panic_message(payload.as_ref()))
                        }
                    };
                    if !interrupted {
                        progress.done.fetch_add(1, Ordering::Relaxed);
                    }
                    observer.on_event(&Event::UnitFinished {
                        key: unit.key.clone(),
                        outcome: match &outcome {
                            UnitOutcome::Panicked(msg) => OutcomeKind::Panicked(msg.clone()),
                            UnitOutcome::Skipped => OutcomeKind::Interrupted,
                            UnitOutcome::Completed(_) => OutcomeKind::Completed,
                        },
                        wall_ns: started.elapsed().as_nanos() as u64,
                        sim_time_ns: tally.sim_time_ns.get(),
                        sim_energy_j: tally.sim_energy_j.get(),
                        bitflips: tally.flips.get(),
                    });
                    // The receiver outlives the scope; send cannot fail.
                    tx.send((index, outcome)).expect("receiver alive");
                }
            });
        }
        drop(tx); // workers hold the remaining senders
                  // Collect on the scope's own thread, overlapping execution; the
                  // iterator ends once every worker has exited and dropped its
                  // sender.
        for (index, outcome) in rx.iter() {
            slots[index] = Some(outcome);
        }
    })
    .expect("executor scope");

    ExecReport {
        // A slot left empty means its unit was never popped before
        // cancellation; without a cancel flag every slot is filled.
        outcomes: slots.into_iter().map(|s| s.unwrap_or(UnitOutcome::Skipped)).collect(),
        progress: progress.snapshot(),
    }
}

/// Pops the worker's next unit: its own queue first, then a steal of
/// half the largest other queue. Returns `None` when no queue holds
/// work (the pool is draining; remaining in-flight units are owned by
/// other workers).
fn next_unit(worker: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(index) = queues[worker].lock().pop_front() {
        return Some(index);
    }
    // Pick the victim with the most queued work, then steal the back
    // half of its queue (the owner keeps draining the front).
    let victim =
        (0..queues.len()).filter(|&q| q != worker).max_by_key(|&q| queues[q].lock().len())?;
    let stolen: VecDeque<usize> = {
        let mut victim_queue = queues[victim].lock();
        let keep = victim_queue.len().div_ceil(2);
        victim_queue.split_off(keep)
    };
    if stolen.is_empty() {
        return None;
    }
    let mut own = queues[worker].lock();
    *own = stolen;
    own.pop_front()
}

/// Renders a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unit panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Unit<usize>> {
        (0..n).map(|i| Unit::new(UnitKey::cell("M1", i as u32, 0), i)).collect()
    }

    #[test]
    fn output_order_matches_input_order() {
        for threads in [1, 2, 8] {
            let cfg = ExecConfig::new(threads, 1);
            let report = execute(&cfg, keys(37), |_, &i| i * 2);
            let values = report.into_results();
            assert_eq!(values, (0..37).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn unit_seeds_are_thread_invariant_and_key_derived() {
        let cfg1 = ExecConfig::serial(9);
        let cfg8 = ExecConfig::new(8, 9);
        let seeds = |cfg: &ExecConfig| execute(cfg, keys(20), |ctx, _| ctx.seed).into_results();
        let serial = seeds(&cfg1);
        assert_eq!(serial, seeds(&cfg8), "seeds must not depend on thread count");
        assert_eq!(serial.len(), 20);
        let distinct: std::collections::HashSet<u64> = serial.iter().copied().collect();
        assert_eq!(distinct.len(), 20, "every unit key gets its own seed");
    }

    #[test]
    fn seed_depends_on_campaign_seed_and_every_key_field() {
        let base = derive_unit_seed(1, &UnitKey::cell("M1", 5, 2));
        assert_ne!(base, derive_unit_seed(2, &UnitKey::cell("M1", 5, 2)));
        assert_ne!(base, derive_unit_seed(1, &UnitKey::cell("M2", 5, 2)));
        assert_ne!(base, derive_unit_seed(1, &UnitKey::cell("M1", 6, 2)));
        assert_ne!(base, derive_unit_seed(1, &UnitKey::cell("M1", 5, 3)));
    }

    #[test]
    fn panicking_units_are_reported_not_fatal() {
        let cfg = ExecConfig::new(4, 0);
        let report = execute(&cfg, keys(10), |_, &i| {
            assert!(i != 3 && i != 7, "unit {i} exploded");
            i
        });
        assert_eq!(report.progress.units_done, 10);
        assert_eq!(report.progress.units_panicked, 2);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.is_panicked(), i == 3 || i == 7, "unit {i}");
        }
    }

    #[test]
    fn progress_counters_accumulate() {
        let cfg = ExecConfig::new(2, 0);
        let report = execute(&cfg, keys(6), |ctx, &i| {
            ctx.record_flips(10);
            ctx.record_sim_time_ns(1_000.0);
            ctx.record_sim_energy_j(2e-9);
            i
        });
        assert_eq!(report.progress.units_total, 6);
        assert_eq!(report.progress.flips_found, 60);
        assert!((report.progress.sim_time_ns - 6_000.0).abs() < 1.0);
        assert!((report.progress.sim_energy_j - 12e-9).abs() < 1e-12);
    }

    #[test]
    fn observer_sees_each_unit_start_and_finish_with_its_own_deltas() {
        use crate::obs::{Event, MemorySink, OutcomeKind};
        let cfg = ExecConfig::new(2, 7);
        let sink = MemorySink::new();
        let progress = Progress::new();
        execute_run(&cfg, keys(5), &progress, None, &sink, |ctx, &i| {
            ctx.record_flips(i as u64);
            ctx.record_sim_time_ns(100.0 * i as f64);
            ctx.record_sim_energy_j(1e-9 * i as f64);
            assert!(i != 3, "unit 3 exploded");
            i
        });
        let events = sink.events();
        let started = events.iter().filter(|e| matches!(e, Event::UnitStarted { .. })).count();
        assert_eq!(started, 5);
        let mut finished = 0;
        for event in &events {
            let Event::UnitFinished { key, outcome, sim_time_ns, sim_energy_j, bitflips, .. } =
                event
            else {
                continue;
            };
            finished += 1;
            let i = u64::from(key.row);
            // Per-unit deltas, not campaign-wide sums.
            assert_eq!(*bitflips, i, "unit {i}");
            assert!((sim_time_ns - 100.0 * i as f64).abs() < 1e-9);
            assert!((sim_energy_j - 1e-9 * i as f64).abs() < 1e-18);
            assert_eq!(matches!(outcome, OutcomeKind::Panicked(_)), i == 3);
        }
        assert_eq!(finished, 5);
    }

    #[test]
    fn empty_unit_list_is_fine() {
        let cfg = ExecConfig::new(4, 0);
        let report = execute(&cfg, Vec::<Unit<u32>>::new(), |_, &v| v);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.progress.units_total, 0);
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        let cfg = ExecConfig::new(64, 0);
        let values = execute(&cfg, keys(3), |_, &i| i).into_results();
        assert_eq!(values, vec![0, 1, 2]);
    }

    #[test]
    fn cancelled_run_skips_unstarted_units() {
        let cfg = ExecConfig::serial(0);
        let cancel = AtomicBool::new(false);
        let progress = Progress::new();
        let report = execute_cancellable(&cfg, keys(10), &progress, Some(&cancel), |_, &i| {
            if i == 2 {
                cancel.store(true, Ordering::SeqCst);
            }
            i
        });
        let done = report.outcomes.iter().filter(|o| !o.is_skipped()).count();
        assert_eq!(done, 3, "serial run stops right after the flag flips");
        assert!(report.outcomes[3..].iter().all(UnitOutcome::is_skipped));
        assert_eq!(report.progress.units_done, 3);
        assert_eq!(report.progress.units_total, 10);
    }

    #[test]
    fn unset_cancel_flag_changes_nothing() {
        let cfg = ExecConfig::new(4, 1);
        let cancel = AtomicBool::new(false);
        let progress = Progress::new();
        let report = execute_cancellable(&cfg, keys(12), &progress, Some(&cancel), |_, &i| i * 3);
        assert_eq!(report.into_results(), (0..12).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "campaign unit skipped")]
    fn into_results_reraises_skips() {
        let cfg = ExecConfig::serial(0);
        let cancel = AtomicBool::new(true);
        let progress = Progress::new();
        let report = execute_cancellable(&cfg, keys(2), &progress, Some(&cancel), |_, &i| i);
        let _ = report.into_results();
    }

    #[test]
    #[should_panic(expected = "campaign unit panicked")]
    fn into_results_reraises_unit_panics() {
        let cfg = ExecConfig::serial(0);
        let report = execute(&cfg, keys(2), |_, &i| {
            assert!(i != 1, "boom");
            i
        });
        let _ = report.into_results();
    }
}
