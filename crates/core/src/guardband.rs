//! Guardband + ECC evaluation (paper §6.3–6.4, Fig. 16, Table 3 inputs).
//!
//! The experiment: estimate a row's minimum RDT from a handful of
//! measurements (the paper uses 5, "to maintain a reasonable testing
//! time"), then repeatedly hammer at guardbanded hammer counts
//! (`min_estimate × (1 − margin)` for margins 50%…10%) and record which
//! bits flip anyway — i.e. how often VRD drops the true threshold below
//! the guardbanded operating point. Flipped bits are attributed to DRAM
//! chips and ECC codewords so the results feed the paper's SECDED /
//! Chipkill discussion directly.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use vrd_bender::routines::{guess_rdt, hammer_session};
use vrd_bender::TestPlatform;
use vrd_dram::spec::ModuleSpec;
use vrd_dram::{DataPattern, TestConditions};

use crate::campaign::select_rows;

/// Configuration of the guardband experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardbandConfig {
    /// Guardband margins as fractions (paper: 0.5, 0.4, 0.3, 0.2, 0.1).
    pub margins: Vec<f64>,
    /// Measurements used to estimate the minimum RDT (paper: 5).
    pub estimate_measurements: u32,
    /// Guardbanded hammer trials per margin (paper: 10,000).
    pub trials: u32,
    /// Rows tested per module (paper: 50).
    pub rows: usize,
    /// Data patterns (paper: Checkered0 and Checkered1 at min `t_RAS`,
    /// 50 °C).
    pub patterns: Vec<DataPattern>,
    /// Device seed.
    pub seed: u64,
    /// Row size in bytes.
    pub row_bytes: u32,
}

impl Default for GuardbandConfig {
    fn default() -> Self {
        GuardbandConfig {
            margins: vec![0.5, 0.4, 0.3, 0.2, 0.1],
            estimate_measurements: 5,
            trials: 10_000,
            rows: 50,
            patterns: vec![DataPattern::Checkered0, DataPattern::Checkered1],
            seed: 6025,
            row_bytes: 8192,
        }
    }
}

impl GuardbandConfig {
    /// Reduced configuration for tests.
    pub fn quick() -> Self {
        GuardbandConfig {
            margins: vec![0.5, 0.1],
            estimate_measurements: 3,
            trials: 200,
            rows: 3,
            patterns: vec![DataPattern::Checkered0],
            seed: 6025,
            row_bytes: 1024,
        }
    }
}

/// Outcome of hammering one row at one guardband margin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginResult {
    /// The guardband margin.
    pub margin: f64,
    /// The guardbanded hammer count used.
    pub hammer_count: u32,
    /// Distinct bit positions that flipped across all trials (Fig. 16's
    /// "unique bitflips in a DRAM row").
    pub unique_flip_bits: Vec<u32>,
    /// Number of trials in which at least one bitflip occurred.
    pub trials_with_flip: u32,
    /// Distinct DRAM chips the flipped bits map to.
    pub unique_chips: usize,
    /// Worst-case flips within one 64-bit (SECDED-data) word.
    pub max_flips_per_secded_word: usize,
    /// Worst-case flips within one 128-bit (Chipkill-SSC-data) word.
    pub max_flips_per_ssc_word: usize,
}

/// Guardband results of one row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowGuardbandResult {
    /// Row address.
    pub row: u32,
    /// The data pattern tested.
    pub pattern: DataPattern,
    /// Estimated minimum RDT from the few pre-measurements.
    pub min_estimate: u32,
    /// One entry per margin.
    pub per_margin: Vec<MarginResult>,
}

/// Runs the §6.4 guardband experiment against one module.
pub fn run_guardband(spec: &ModuleSpec, cfg: &GuardbandConfig) -> Vec<RowGuardbandResult> {
    let mut platform =
        TestPlatform::for_module_with_row_bytes(spec.clone(), cfg.seed, cfg.row_bytes);
    platform.set_temperature_c(50.0);
    let selection = TestConditions::foundational();
    let rows = select_rows(&mut platform, 0, &selection, 512, cfg.rows.div_ceil(3), 2);

    let mut results = Vec::new();
    for (row, _) in rows.into_iter().take(cfg.rows) {
        for &pattern in &cfg.patterns {
            let conditions = TestConditions::foundational().with_pattern(pattern);
            // Estimate the row's minimum RDT from a few measurements.
            let mut min_estimate: Option<u32> = None;
            for _ in 0..cfg.estimate_measurements {
                if let Some(g) = guess_rdt(&mut platform, 0, row, &conditions, 1 << 20) {
                    min_estimate = Some(min_estimate.map_or(g, |m| m.min(g)));
                }
            }
            let Some(min_estimate) = min_estimate else {
                continue;
            };

            let mut per_margin = Vec::with_capacity(cfg.margins.len());
            for &margin in &cfg.margins {
                let hc = ((f64::from(min_estimate)) * (1.0 - margin)).round() as u32;
                let mut unique: BTreeSet<u32> = BTreeSet::new();
                let mut trials_with_flip = 0u32;
                for _ in 0..cfg.trials {
                    let flips = hammer_session(&mut platform, 0, row, hc, &conditions);
                    if !flips.is_empty() {
                        trials_with_flip += 1;
                        unique.extend(flips.iter().map(|f| f.bit));
                    }
                }
                let bits: Vec<u32> = unique.into_iter().collect();
                per_margin.push(MarginResult {
                    margin,
                    hammer_count: hc,
                    unique_chips: count_chips(spec, &bits),
                    max_flips_per_secded_word: max_per_word(&bits, 64),
                    max_flips_per_ssc_word: max_per_word(&bits, 128),
                    trials_with_flip,
                    unique_flip_bits: bits,
                });
            }
            results.push(RowGuardbandResult { row, pattern, min_estimate, per_margin });
        }
    }
    results
}

/// Number of distinct module chips (or pseudo-channels, for HBM2)
/// covering the given row-bit positions, under the family's bit→chip
/// mapping.
fn count_chips(spec: &ModuleSpec, bits: &[u32]) -> usize {
    let mapping = spec.family().chip_mapping;
    bits.iter().map(|&b| mapping.chip_of_bit(b)).collect::<BTreeSet<_>>().len()
}

/// Worst-case number of flips within any aligned `word_bits` window.
fn max_per_word(bits: &[u32], word_bits: u32) -> usize {
    let mut best = 0usize;
    let mut counts = std::collections::HashMap::new();
    for &b in bits {
        let e = counts.entry(b / word_bits).or_insert(0usize);
        *e += 1;
        best = best.max(*e);
    }
    best
}

/// The worst observed bit error rate across all margin results at the
/// given margin, as bits flipped per row bit (the paper's 7.6e-5 input to
/// Table 3).
pub fn worst_bit_error_rate(results: &[RowGuardbandResult], margin: f64, row_bits: u32) -> f64 {
    results
        .iter()
        .flat_map(|r| r.per_margin.iter())
        .filter(|m| (m.margin - margin).abs() < 1e-9)
        .map(|m| m.unique_flip_bits.len() as f64 / f64::from(row_bits))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_per_word_windows() {
        assert_eq!(max_per_word(&[], 64), 0);
        assert_eq!(max_per_word(&[1, 2, 3], 64), 3);
        assert_eq!(max_per_word(&[1, 65, 129], 64), 1);
        assert_eq!(max_per_word(&[1, 65, 129], 128), 2);
    }

    #[test]
    fn chip_attribution() {
        let spec = ModuleSpec::by_name("H0").unwrap();
        assert_eq!(count_chips(&spec, &[0, 1, 7]), 1);
        assert_eq!(count_chips(&spec, &[0, 8, 16]), 3);
    }

    #[test]
    fn guardband_experiment_runs() {
        let spec = ModuleSpec::by_name("M4").unwrap();
        let results = run_guardband(&spec, &GuardbandConfig::quick());
        assert!(!results.is_empty(), "some rows must be testable");
        for r in &results {
            assert!(r.min_estimate > 0);
            assert_eq!(r.per_margin.len(), 2);
            // Larger margins hammer less.
            assert!(r.per_margin[0].hammer_count < r.per_margin[1].hammer_count);
        }
    }

    #[test]
    fn wider_margin_never_flips_more() {
        // Aggregate across rows: the 50% margin must see at most as many
        // trials-with-flip as the 10% margin (monotonicity of hammering).
        let spec = ModuleSpec::by_name("M4").unwrap();
        let results = run_guardband(&spec, &GuardbandConfig::quick());
        let total_at = |margin: f64| -> u32 {
            results
                .iter()
                .flat_map(|r| r.per_margin.iter())
                .filter(|m| (m.margin - margin).abs() < 1e-9)
                .map(|m| m.trials_with_flip)
                .sum()
        };
        assert!(total_at(0.5) <= total_at(0.1));
    }

    #[test]
    fn worst_ber_is_zero_without_flips() {
        let results = vec![RowGuardbandResult {
            row: 1,
            pattern: DataPattern::Checkered0,
            min_estimate: 1000,
            per_margin: vec![MarginResult {
                margin: 0.1,
                hammer_count: 900,
                unique_flip_bits: vec![],
                trials_with_flip: 0,
                unique_chips: 0,
                max_flips_per_secded_word: 0,
                max_flips_per_ssc_word: 0,
            }],
        }];
        assert_eq!(worst_bit_error_rate(&results, 0.1, 65536), 0.0);
    }
}
