//! Crash-safe campaign checkpointing.
//!
//! The paper's characterization campaigns represent months of simulated
//! hammer time; losing a campaign to a crash, OOM kill, or preempted
//! shard is not acceptable at that scale. This module persists every
//! finished work unit to an append-only, checksummed journal so a killed
//! campaign can be resumed — and, because unit seeds derive from
//! `(campaign_seed, unit_key)` rather than scheduling order (see
//! [`crate::exec`]), a resumed campaign is **byte-identical** to one
//! that never crashed. The fault-injection suite in
//! `tests/checkpoint_resume.rs` proves exactly that.
//!
//! # On-disk layout
//!
//! A checkpoint directory holds two files:
//!
//! - `manifest.json` — a pretty-printed [`CheckpointManifest`] binding
//!   the journal to one campaign: format version, campaign label,
//!   config hash, campaign seed, roster shard (`index`/`count`), and a
//!   roster fingerprint. [`Checkpoint::open`] rejects a directory whose
//!   manifest disagrees with the caller's on *any* field — a stale or
//!   foreign checkpoint is an error, never silently merged.
//! - `journal.jsonl` — one record per finished unit:
//!
//!   ```text
//!   vrd1 <16-hex fnv1a64> {"key":<UnitKey>,"value":<result>}
//!   ```
//!
//!   The checksum covers the JSON payload bytes. Records are appended
//!   and flushed as each unit commits, so a crash can lose at most the
//!   record being written.
//!
//! # Recovery semantics
//!
//! On open, the journal is scanned front to back. A record that fails
//! to parse or checksum in the **tail position** (the last line, or
//! trailing bytes with no newline) is a torn write: it is dropped, the
//! file is truncated back to the last valid record, and the unit simply
//! reruns. A bad record anywhere *before* the tail means the file was
//! tampered with or the disk is lying — that is
//! [`CheckpointError::Corrupted`], a hard error.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};

use crate::exec::{self, ExecConfig, ExecReport, Progress, Unit, UnitCtx, UnitKey, UnitOutcome};
use crate::obs::{Event, NullObserver, Observer};

/// Version tag of the journal/manifest format; bump on incompatible
/// layout changes so old checkpoints are rejected instead of misread.
pub const FORMAT_VERSION: u32 = 1;

/// Magic prefix of every journal record.
const RECORD_MAGIC: &str = "vrd1";

/// File names inside a checkpoint directory.
const MANIFEST_FILE: &str = "manifest.json";
const JOURNAL_FILE: &str = "journal.jsonl";

/// FNV-1a over a byte string; the journal's record checksum and the
/// config hash both use it (no cryptographic strength needed — this
/// guards against torn writes and stale configs, not adversaries).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Hashes a campaign configuration for the manifest: FNV-1a over its
/// canonical (compact) JSON serialization. Any config field change —
/// measurement count, condition grid, row bytes — changes the hash and
/// invalidates old checkpoints.
pub fn config_hash<T: Serialize>(config: &T) -> u64 {
    let json = serde_json::to_string(config).expect("config serializes");
    fnv1a64(json.as_bytes())
}

/// Identity of the campaign a checkpoint belongs to. Every field must
/// match for a resume to be accepted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Journal format version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Campaign label (e.g. `"foundational"`, `"in_depth"`), so two
    /// campaigns never share a journal even under one directory root.
    pub campaign: String,
    /// [`config_hash`] of the campaign configuration.
    pub config_hash: u64,
    /// The campaign seed every unit seed derives from.
    pub campaign_seed: u64,
    /// Roster shard index (0 when unsharded).
    pub shard_index: u64,
    /// Roster shard count (1 when unsharded).
    pub shard_count: u64,
    /// Fingerprint of the (sharded) module roster, from
    /// `vrd_dram::fleet::roster_fingerprint`.
    pub roster_fingerprint: u64,
}

impl CheckpointManifest {
    /// Compares against a manifest found on disk, naming the first
    /// mismatching field.
    fn verify_against(&self, found: &CheckpointManifest) -> Result<(), CheckpointError> {
        let fields: [(&'static str, String, String); 7] = [
            ("format_version", self.format_version.to_string(), found.format_version.to_string()),
            ("campaign", self.campaign.clone(), found.campaign.clone()),
            ("config_hash", self.config_hash.to_string(), found.config_hash.to_string()),
            ("campaign_seed", self.campaign_seed.to_string(), found.campaign_seed.to_string()),
            ("shard_index", self.shard_index.to_string(), found.shard_index.to_string()),
            ("shard_count", self.shard_count.to_string(), found.shard_count.to_string()),
            (
                "roster_fingerprint",
                self.roster_fingerprint.to_string(),
                found.roster_fingerprint.to_string(),
            ),
        ];
        for (field, expected, actual) in fields {
            if expected != actual {
                return Err(CheckpointError::ManifestMismatch { field, expected, found: actual });
            }
        }
        Ok(())
    }
}

/// Why a checkpoint could not be opened, read, or completed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The directory belongs to a different campaign/config/shard.
    ManifestMismatch {
        /// First manifest field that disagreed.
        field: &'static str,
        /// The value the running campaign expected.
        expected: String,
        /// The value found on disk.
        found: String,
    },
    /// The manifest or a non-tail journal record is unreadable.
    Corrupted {
        /// 1-based journal line (0 for the manifest).
        line: usize,
        /// What failed to parse or verify.
        reason: String,
    },
    /// A journaled value no longer decodes as the campaign's result
    /// type (format drift without a version bump).
    Decode {
        /// The unit whose record failed to decode.
        key: UnitKey,
        /// The decode failure.
        reason: String,
    },
    /// The run was cancelled (e.g. by an injected fault) before every
    /// unit finished; completed units are journaled and resumable.
    Interrupted {
        /// Units whose results are safely in the journal.
        completed: usize,
        /// Units the campaign needed in total.
        total: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::ManifestMismatch { field, expected, found } => write!(
                f,
                "checkpoint belongs to a different campaign: manifest field `{field}` is \
                 {found}, expected {expected}; refusing to merge (use a fresh directory)"
            ),
            CheckpointError::Corrupted { line, reason } => {
                write!(f, "checkpoint corrupted at journal line {line}: {reason}")
            }
            CheckpointError::Decode { key, reason } => write!(
                f,
                "journaled result for unit {}/{}/{} does not decode: {reason}",
                key.module, key.row, key.condition
            ),
            CheckpointError::Interrupted { completed, total } => write!(
                f,
                "campaign interrupted after {completed}/{total} units; rerun with --resume"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Hooks around unit execution. The checkpointed executor calls these
/// at well-defined points; the cfg-gated `exec::faults::FaultPlan` uses
/// them to inject deterministic failures, and they default to no-ops so
/// production campaigns pay nothing.
pub trait UnitHooks: Sync {
    /// Called before a unit's work closure runs (on the worker thread).
    fn before_unit(&self, _key: &UnitKey) {}

    /// Called after a unit's record has been appended **and flushed** to
    /// the journal — the unit is durable once this fires.
    fn after_commit(&self, _key: &UnitKey) {}

    /// A cooperative cancellation flag checked by the executor before
    /// popping each unit.
    fn cancel_flag(&self) -> Option<&std::sync::atomic::AtomicBool> {
        None
    }
}

/// An open checkpoint: the verified manifest, the set of units already
/// completed by previous runs, and an append handle to the journal.
pub struct Checkpoint {
    dir: PathBuf,
    manifest: CheckpointManifest,
    /// Journaled results by unit key, as compact JSON of the value.
    completed: HashMap<UnitKey, String>,
    /// Whether opening dropped a torn tail record.
    recovered_torn_tail: bool,
    writer: Mutex<File>,
}

impl fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("dir", &self.dir)
            .field("manifest", &self.manifest)
            .field("completed", &self.completed.len())
            .field("recovered_torn_tail", &self.recovered_torn_tail)
            .finish()
    }
}

impl Checkpoint {
    /// Opens (creating if absent) the checkpoint directory `dir` for the
    /// campaign described by `manifest`.
    ///
    /// # Errors
    ///
    /// - [`CheckpointError::ManifestMismatch`] when `dir` already holds a
    ///   checkpoint for a different campaign, config, seed, or shard.
    /// - [`CheckpointError::Corrupted`] when the manifest or a non-tail
    ///   journal record is unreadable (a torn *tail* record is recovered
    ///   silently instead; see [`Checkpoint::recovered_torn_tail`]).
    /// - [`CheckpointError::Io`] on filesystem failure.
    pub fn open(
        dir: impl AsRef<Path>,
        manifest: CheckpointManifest,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)?;
            let found: CheckpointManifest = serde_json::from_str(text.trim()).map_err(|e| {
                CheckpointError::Corrupted { line: 0, reason: format!("manifest unreadable: {e}") }
            })?;
            manifest.verify_against(&found)?;
        } else {
            // Write-then-rename so a crash mid-write never leaves a
            // half-written manifest behind.
            let tmp = dir.join("manifest.json.tmp");
            let text = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
            fs::write(&tmp, format!("{text}\n"))?;
            fs::rename(&tmp, &manifest_path)?;
        }

        let journal_path = dir.join(JOURNAL_FILE);
        let (completed, valid_len, recovered_torn_tail) = load_journal(&journal_path)?;
        // truncate(false): the valid journal prefix must survive the open; any
        // torn tail is cut explicitly by the set_len below.
        let mut file =
            OpenOptions::new().create(true).write(true).truncate(false).open(&journal_path)?;
        // Drop any torn tail and position at the end of the valid prefix;
        // subsequent appends extend the intact journal.
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;

        Ok(Checkpoint { dir, manifest, completed, recovered_torn_tail, writer: Mutex::new(file) })
    }

    /// The manifest this checkpoint was opened with.
    pub fn manifest(&self) -> &CheckpointManifest {
        &self.manifest
    }

    /// Number of units already completed by previous runs.
    pub fn completed_units(&self) -> usize {
        self.completed.len()
    }

    /// Whether opening dropped a torn (truncated or corrupt) tail
    /// record; the affected unit reruns.
    pub fn recovered_torn_tail(&self) -> bool {
        self.recovered_torn_tail
    }

    /// Path of the journal file (tests and tooling).
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// The journaled result for `key`, decoded as `T`, if present.
    fn cached<T: Deserialize>(&self, key: &UnitKey) -> Result<Option<T>, CheckpointError> {
        let Some(json) = self.completed.get(key) else { return Ok(None) };
        match serde_json::from_str::<T>(json) {
            Ok(v) => Ok(Some(v)),
            Err(e) => Err(CheckpointError::Decode { key: key.clone(), reason: e.to_string() }),
        }
    }

    /// Journals an auxiliary record under `key` and flushes it — the
    /// mid-unit counterpart of the executor's per-unit commit, used by
    /// the discovery campaign to persist a row's sequential state every
    /// few epochs. Repeated stashes under one key supersede each other
    /// (the journal replays front to back, last record wins), and a torn
    /// stash at the crash point simply falls back to the previous one.
    ///
    /// Use a key that can never collide with a real unit (e.g. a
    /// sentinel condition index): a stash record under a unit's own key
    /// would be restored as that unit's final result.
    ///
    /// # Errors
    ///
    /// The underlying I/O error when the append or flush fails.
    pub fn stash<T: Serialize>(&self, key: &UnitKey, value: &T) -> std::io::Result<()> {
        self.append(key, value)
    }

    /// The most recent [`Checkpoint::stash`] record under `key` from any
    /// previous run, decoded as `T`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] when the journaled record no longer
    /// decodes as `T`.
    pub fn stashed<T: Deserialize>(&self, key: &UnitKey) -> Result<Option<T>, CheckpointError> {
        self.cached(key)
    }

    /// Appends one finished unit and flushes, making it durable.
    fn append<T: Serialize>(&self, key: &UnitKey, value: &T) -> std::io::Result<()> {
        let body = format!(
            "{{\"key\":{},\"value\":{}}}",
            serde_json::to_string(key).expect("key serializes"),
            serde_json::to_string(value).expect("value serializes"),
        );
        let line = format!("{RECORD_MAGIC} {:016x} {body}\n", fnv1a64(body.as_bytes()));
        let mut file = self.writer.lock();
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

/// Scans the journal, returning the completed-unit map, the byte length
/// of the valid prefix, and whether a torn tail record was dropped.
fn load_journal(path: &Path) -> Result<(HashMap<UnitKey, String>, u64, bool), CheckpointError> {
    if !path.exists() {
        return Ok((HashMap::new(), 0, false));
    }
    let bytes = fs::read(path)?;

    // Split into newline-terminated lines, remembering each line's end
    // offset; trailing bytes without a newline are a torn write.
    let mut lines: Vec<(usize, &[u8])> = Vec::new(); // (end offset incl. \n, line)
    let mut start = 0;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        lines.push((start + nl + 1, &bytes[start..start + nl]));
        start += nl + 1;
    }
    let mut torn = start < bytes.len();

    let mut completed = HashMap::new();
    let mut valid_len = 0u64;
    for (i, &(end, line)) in lines.iter().enumerate() {
        match parse_record(line) {
            Ok((key, value_json)) => {
                completed.insert(key, value_json);
                valid_len = end as u64;
            }
            Err(reason) => {
                // Only the final record may be bad (torn write at the
                // crash point); anything earlier is real corruption.
                if i + 1 == lines.len() && !torn {
                    torn = true;
                    break;
                }
                return Err(CheckpointError::Corrupted { line: i + 1, reason });
            }
        }
    }
    Ok((completed, valid_len, torn))
}

/// Parses and verifies one journal record line.
fn parse_record(line: &[u8]) -> Result<(UnitKey, String), String> {
    let line = std::str::from_utf8(line).map_err(|e| format!("not UTF-8: {e}"))?;
    let rest = line
        .strip_prefix(RECORD_MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("missing `{RECORD_MAGIC}` magic"))?;
    let (checksum_hex, body) =
        rest.split_once(' ').ok_or_else(|| "missing checksum field".to_owned())?;
    let checksum =
        u64::from_str_radix(checksum_hex, 16).map_err(|e| format!("bad checksum field: {e}"))?;
    if checksum_hex.len() != 16 {
        return Err("bad checksum field: wrong width".to_owned());
    }
    let actual = fnv1a64(body.as_bytes());
    if actual != checksum {
        return Err(format!("checksum mismatch: recorded {checksum:016x}, actual {actual:016x}"));
    }
    let record: Value =
        serde_json::from_str(body).map_err(|e| format!("record is not JSON: {e}"))?;
    let key = record
        .get("key")
        .ok_or_else(|| "record has no `key`".to_owned())
        .and_then(|v| UnitKey::from_value(v).map_err(|e| format!("bad unit key: {e}")))?;
    let value = record.get("value").ok_or_else(|| "record has no `value`".to_owned())?;
    let value_json = serde_json::to_string(value).expect("value re-serializes");
    Ok((key, value_json))
}

/// Runs `units` through `f` like [`exec::execute_observed`], but backed
/// by a checkpoint: units already in the journal are restored without
/// running (counted as done in `progress`), and every freshly finished
/// unit is appended and flushed before the run moves on.
///
/// The optional `hooks` observe unit boundaries; a hook's
/// [`UnitHooks::cancel_flag`] makes the run cooperatively cancellable,
/// in which case [`CheckpointError::Interrupted`] reports how much of
/// the campaign is safely journaled.
///
/// # Errors
///
/// - [`CheckpointError::Decode`] when a journaled record does not decode
///   as `T` (checkpoint written by an incompatible build).
/// - [`CheckpointError::Interrupted`] when cancellation skipped units.
///
/// # Panics
///
/// Panics when the journal append itself fails (disk full / I/O error):
/// continuing would silently lose crash safety.
pub fn execute_checkpointed<I, T, F>(
    cfg: &ExecConfig,
    units: Vec<Unit<I>>,
    progress: &Progress,
    checkpoint: &Checkpoint,
    hooks: Option<&dyn UnitHooks>,
    f: F,
) -> Result<ExecReport<T>, CheckpointError>
where
    I: Send + Sync,
    T: Serialize + Deserialize + Send,
    F: Fn(UnitCtx<'_>, &I) -> T + Sync,
{
    execute_checkpointed_run(cfg, units, progress, checkpoint, hooks, None, &NullObserver, f)
}

/// Like [`execute_checkpointed`], but cancellable through an explicit
/// flag (merged with the hooks' [`UnitHooks::cancel_flag`]) and
/// observed: every unit restored from the journal emits
/// [`Event::UnitRestored`], and every fresh append+flush emits
/// [`Event::CheckpointCommitted`] with the measured commit latency, on
/// top of the executor's own unit lifecycle events.
#[allow(clippy::too_many_arguments)] // the RunOptions facade in `crate::run` is the public surface
pub fn execute_checkpointed_run<I, T, F>(
    cfg: &ExecConfig,
    units: Vec<Unit<I>>,
    progress: &Progress,
    checkpoint: &Checkpoint,
    hooks: Option<&dyn UnitHooks>,
    cancel: Option<&AtomicBool>,
    observer: &dyn Observer,
    f: F,
) -> Result<ExecReport<T>, CheckpointError>
where
    I: Send + Sync,
    T: Serialize + Deserialize + Send,
    F: Fn(UnitCtx<'_>, &I) -> T + Sync,
{
    let total = units.len();
    let mut slots: Vec<Option<UnitOutcome<T>>> = Vec::new();
    slots.resize_with(total, || None);

    // Partition into journaled (restored) and pending (run live) units.
    let mut pending: Vec<Unit<I>> = Vec::new();
    let mut pending_slots: Vec<usize> = Vec::new();
    for (i, unit) in units.into_iter().enumerate() {
        match checkpoint.cached::<T>(&unit.key)? {
            Some(value) => {
                observer.on_event(&Event::UnitRestored { key: unit.key.clone() });
                slots[i] = Some(UnitOutcome::Completed(value));
            }
            None => {
                pending_slots.push(i);
                pending.push(unit);
            }
        }
    }
    progress.restore(total - pending.len());

    let cancel = cancel.or_else(|| hooks.and_then(UnitHooks::cancel_flag));
    let report = exec::execute_run(cfg, pending, progress, cancel, observer, |ctx, payload| {
        let key = ctx.key;
        if let Some(h) = hooks {
            h.before_unit(key);
        }
        let value = f(ctx, payload);
        if ctx.was_interrupted() {
            // The closure yielded mid-unit to cancellation: its value is
            // partial, so it must not be journaled — the executor reports
            // the unit as skipped and a resume reruns it (from whatever
            // the closure stashed).
            return value;
        }
        let commit_started = Instant::now();
        if let Err(e) = checkpoint.append(key, &value) {
            panic!("checkpoint journal append failed: {e}");
        }
        observer.on_event(&Event::CheckpointCommitted {
            key: key.clone(),
            latency_ns: commit_started.elapsed().as_nanos() as u64,
        });
        if let Some(h) = hooks {
            h.after_commit(key);
        }
        value
    });

    let mut skipped = 0usize;
    for (slot, outcome) in pending_slots.into_iter().zip(report.outcomes) {
        if outcome.is_skipped() {
            skipped += 1;
        }
        slots[slot] = Some(outcome);
    }
    if skipped > 0 {
        return Err(CheckpointError::Interrupted { completed: total - skipped, total });
    }
    Ok(ExecReport {
        outcomes: slots.into_iter().map(|s| s.expect("every slot filled")).collect(),
        progress: progress.snapshot(),
    })
}
