//! Metrics aggregation sink: folds the event stream into per-campaign
//! [`MetricsReport`]s — per-unit wall-time histograms, units/s
//! throughput, checkpoint-commit latency, and the simulated-vs-wall
//! time ratio (how far the host run is from DRAM real time, the
//! quantity Appendix A budgets). The experiments runner serializes the
//! reports as `metrics.json` next to the campaign outputs.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use super::{Event, Observer, OutcomeKind};

/// Summary statistics plus a log2-bucketed histogram of a duration
/// sample set (nanoseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationHistogram {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (ns); 0 when empty.
    pub min_ns: u64,
    /// Largest sample (ns); 0 when empty.
    pub max_ns: u64,
    /// Arithmetic mean (ns); 0 when empty.
    pub mean_ns: f64,
    /// Median, nearest-rank (ns).
    pub p50_ns: u64,
    /// 90th percentile, nearest-rank (ns).
    pub p90_ns: u64,
    /// 99th percentile, nearest-rank (ns).
    pub p99_ns: u64,
    /// Occupied power-of-two buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

/// One occupied histogram bucket: samples with `ns <= le_ns` (and above
/// the previous bucket's bound).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (`2^k - 1` ns).
    pub le_ns: u64,
    /// Samples in the bucket.
    pub count: u64,
}

impl DurationHistogram {
    /// Builds the histogram from raw samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
            sorted[rank - 1]
        };
        // log2 buckets: sample n lands in the bucket [2^k, 2^(k+1)-1]
        // containing it; bound stored as 2^(k+1)-1.
        let mut by_bucket = std::collections::BTreeMap::new();
        for &s in &sorted {
            let bits = 64 - s.leading_zeros(); // 0 for s == 0
            let le_ns = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
            *by_bucket.entry(le_ns).or_insert(0u64) += 1;
        }
        DurationHistogram {
            count,
            min_ns: sorted.first().copied().unwrap_or(0),
            max_ns: sorted.last().copied().unwrap_or(0),
            mean_ns: if count == 0 {
                0.0
            } else {
                sorted.iter().map(|&s| s as f64).sum::<f64>() / count as f64
            },
            p50_ns: pct(0.50),
            p90_ns: pct(0.90),
            p99_ns: pct(0.99),
            buckets: by_bucket
                .into_iter()
                .map(|(le_ns, count)| HistogramBucket { le_ns, count })
                .collect(),
        }
    }
}

/// Early-stopping statistics of a discovery campaign: how many epochs
/// the sequential stopping rule actually spent per row (the quantity
/// DiscoRD minimizes against a fixed-epoch characterization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryMetrics {
    /// Rows whose stopping rule fired (one per
    /// [`Event::DiscoveryStopped`]).
    pub rows: usize,
    /// Measurement epochs summed over those rows.
    pub epochs_total: u64,
    /// Mean epochs per row.
    pub mean_epochs_per_row: f64,
}

/// Checkpoint-journal commit statistics for one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMetrics {
    /// Journal records appended (one per freshly finished unit).
    pub commits: usize,
    /// Units restored from the journal instead of re-running.
    pub restored: usize,
    /// Append+flush latency distribution.
    pub commit_latency: DurationHistogram,
}

/// The aggregated metrics of one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Campaign label (`"foundational"`, `"in_depth"`, ...).
    pub campaign: String,
    /// Units submitted across all phases.
    pub units_total: usize,
    /// Units finished (ran to completion or panicked) this run.
    pub units_done: usize,
    /// Units that panicked.
    pub units_panicked: usize,
    /// Bitflips reported by the units.
    pub bitflips: u64,
    /// Campaign wall-clock time (ns).
    pub wall_time_ns: u64,
    /// Units finished per wall-clock second (0 when wall time is 0).
    pub throughput_units_per_s: f64,
    /// Per-unit wall-time distribution.
    pub unit_wall_time: DurationHistogram,
    /// Simulated DRAM test time consumed (ns), summed over units.
    pub sim_time_ns_total: f64,
    /// Estimated DRAM test energy (J), summed over units.
    pub sim_energy_j_total: f64,
    /// Simulated test time over host wall time: > 1 means the host
    /// outruns DRAM real time, the ROADMAP's "fast as the hardware
    /// allows" direction.
    pub sim_to_wall_ratio: f64,
    /// Checkpoint statistics; `None` when the run had no checkpoint.
    pub checkpoint: Option<CheckpointMetrics>,
    /// Early-stopping statistics; `None` unless the campaign emitted
    /// [`Event::DiscoveryStopped`] events.
    pub discovery: Option<DiscoveryMetrics>,
}

#[derive(Default)]
struct CampaignAccum {
    campaign: String,
    unit_wall_ns: Vec<u64>,
    units_panicked: usize,
    commit_latency_ns: Vec<u64>,
    restored: usize,
    discovery_rows: usize,
    discovery_epochs: u64,
}

impl CampaignAccum {
    fn finish(&mut self, summary: &super::CampaignSummary) -> MetricsReport {
        let wall_s = summary.wall_ns as f64 / 1e9;
        let discovery = if self.discovery_rows == 0 {
            None
        } else {
            Some(DiscoveryMetrics {
                rows: self.discovery_rows,
                epochs_total: self.discovery_epochs,
                mean_epochs_per_row: self.discovery_epochs as f64 / self.discovery_rows as f64,
            })
        };
        let checkpoint = if self.commit_latency_ns.is_empty() && self.restored == 0 {
            None
        } else {
            Some(CheckpointMetrics {
                commits: self.commit_latency_ns.len(),
                restored: self.restored,
                commit_latency: DurationHistogram::from_samples(&self.commit_latency_ns),
            })
        };
        MetricsReport {
            campaign: std::mem::take(&mut self.campaign),
            units_total: summary.units_total,
            units_done: summary.units_done,
            units_panicked: self.units_panicked,
            bitflips: summary.bitflips,
            wall_time_ns: summary.wall_ns,
            throughput_units_per_s: if wall_s > 0.0 {
                self.unit_wall_ns.len() as f64 / wall_s
            } else {
                0.0
            },
            unit_wall_time: DurationHistogram::from_samples(&self.unit_wall_ns),
            sim_time_ns_total: summary.sim_time_ns,
            sim_energy_j_total: summary.sim_energy_j,
            sim_to_wall_ratio: if summary.wall_ns > 0 {
                summary.sim_time_ns / summary.wall_ns as f64
            } else {
                0.0
            },
            checkpoint,
            discovery,
        }
    }
}

/// Folds events into per-campaign [`MetricsReport`]s. One sink can
/// observe several campaigns in sequence (the CLI's `all` mode); each
/// `CampaignFinished` closes out one report.
pub struct MetricsSink {
    state: Mutex<MetricsState>,
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink { state: Mutex::new(MetricsState::default()) }
    }
}

#[derive(Default)]
struct MetricsState {
    current: CampaignAccum,
    reports: Vec<MetricsReport>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// The reports of all campaigns finished so far.
    pub fn reports(&self) -> Vec<MetricsReport> {
        self.state.lock().reports.clone()
    }
}

impl Observer for MetricsSink {
    fn on_event(&self, event: &Event) {
        let mut state = self.state.lock();
        match event {
            Event::CampaignStarted { campaign } => {
                state.current = CampaignAccum { campaign: campaign.clone(), ..Default::default() };
            }
            Event::UnitFinished { outcome, wall_ns, .. } => {
                state.current.unit_wall_ns.push(*wall_ns);
                if matches!(outcome, OutcomeKind::Panicked(_)) {
                    state.current.units_panicked += 1;
                }
            }
            Event::UnitRestored { .. } => state.current.restored += 1,
            Event::CheckpointCommitted { latency_ns, .. } => {
                state.current.commit_latency_ns.push(*latency_ns);
            }
            Event::DiscoveryStopped { epochs_used, .. } => {
                state.current.discovery_rows += 1;
                state.current.discovery_epochs += u64::from(*epochs_used);
            }
            Event::CampaignFinished { summary, .. } => {
                let report = state.current.finish(summary);
                state.reports.push(report);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::CampaignSummary;
    use super::*;
    use crate::exec::UnitKey;

    #[test]
    fn histogram_statistics_are_exact_on_known_samples() {
        let h = DurationHistogram::from_samples(&[1, 2, 3, 4, 100]);
        assert_eq!(h.count, 5);
        assert_eq!(h.min_ns, 1);
        assert_eq!(h.max_ns, 100);
        assert_eq!(h.p50_ns, 3);
        assert_eq!(h.p99_ns, 100);
        assert!((h.mean_ns - 22.0).abs() < 1e-9);
        // 1 -> le 1; 2,3 -> le 3; 4 -> le 7; 100 -> le 127.
        let bounds: Vec<u64> = h.buckets.iter().map(|b| b.le_ns).collect();
        assert_eq!(bounds, vec![1, 3, 7, 127]);
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 5);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = DurationHistogram::from_samples(&[]);
        assert_eq!((h.count, h.min_ns, h.max_ns, h.p50_ns), (0, 0, 0, 0));
        assert!(h.buckets.is_empty());
    }

    #[test]
    fn sink_folds_a_campaign_into_one_report() {
        let sink = MetricsSink::new();
        sink.on_event(&Event::CampaignStarted { campaign: "foundational".into() });
        sink.on_event(&Event::PhaseStarted {
            campaign: "foundational".into(),
            phase: "measure".into(),
            units: 3,
        });
        sink.on_event(&Event::UnitRestored { key: UnitKey::module("M0") });
        for (row, wall) in [(1u32, 1_000u64), (2, 3_000)] {
            sink.on_event(&Event::UnitStarted { key: UnitKey::cell("M1", row, 0) });
            sink.on_event(&Event::UnitFinished {
                key: UnitKey::cell("M1", row, 0),
                outcome: OutcomeKind::Completed,
                wall_ns: wall,
                sim_time_ns: 500.0,
                sim_energy_j: 1e-9,
                bitflips: 2,
            });
            sink.on_event(&Event::CheckpointCommitted {
                key: UnitKey::cell("M1", row, 0),
                latency_ns: 10,
            });
        }
        sink.on_event(&Event::CampaignFinished {
            campaign: "foundational".into(),
            summary: CampaignSummary {
                units_total: 3,
                units_done: 3,
                units_panicked: 0,
                bitflips: 4,
                sim_time_ns: 1_000.0,
                sim_energy_j: 2e-9,
                wall_ns: 8_000,
            },
        });

        let reports = sink.reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.campaign, "foundational");
        assert_eq!(r.units_total, 3);
        assert_eq!(r.unit_wall_time.count, 2);
        assert_eq!(r.bitflips, 4);
        let ckpt = r.checkpoint.as_ref().expect("checkpointed");
        assert_eq!(ckpt.commits, 2);
        assert_eq!(ckpt.restored, 1);
        // 2 units in 8 µs of wall time = 250k units/s.
        assert!((r.throughput_units_per_s - 250_000.0).abs() < 1e-6);
        assert!((r.sim_to_wall_ratio - 0.125).abs() < 1e-12);
    }

    #[test]
    fn discovery_stops_fold_into_their_own_section() {
        let sink = MetricsSink::new();
        sink.on_event(&Event::CampaignStarted { campaign: "discovery".into() });
        for (row, epochs) in [(3u32, 40u32), (9, 60)] {
            sink.on_event(&Event::DiscoveryStopped {
                key: UnitKey::cell("M1", row, 0),
                epochs_used: epochs,
                bound: 4_000,
                confidence: 0.9,
            });
        }
        sink.on_event(&Event::CampaignFinished {
            campaign: "discovery".into(),
            summary: CampaignSummary {
                units_total: 2,
                units_done: 2,
                units_panicked: 0,
                bitflips: 100,
                sim_time_ns: 1.0,
                sim_energy_j: 0.0,
                wall_ns: 10,
            },
        });
        let reports = sink.reports();
        let d = reports[0].discovery.as_ref().expect("discovery section");
        assert_eq!((d.rows, d.epochs_total), (2, 100));
        assert!((d.mean_epochs_per_row - 50.0).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_json() {
        let sink = MetricsSink::new();
        sink.on_event(&Event::CampaignStarted { campaign: "c".into() });
        sink.on_event(&Event::UnitFinished {
            key: UnitKey::module("M1"),
            outcome: OutcomeKind::Panicked("x".into()),
            wall_ns: 5,
            sim_time_ns: 1.0,
            sim_energy_j: 0.0,
            bitflips: 0,
        });
        sink.on_event(&Event::CampaignFinished {
            campaign: "c".into(),
            summary: CampaignSummary {
                units_total: 1,
                units_done: 1,
                units_panicked: 1,
                bitflips: 0,
                sim_time_ns: 1.0,
                sim_energy_j: 0.0,
                wall_ns: 10,
            },
        });
        let reports = sink.reports();
        let json = serde_json::to_string(&reports).unwrap();
        let back: Vec<MetricsReport> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reports);
    }
}
