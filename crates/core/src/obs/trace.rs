//! JSONL trace sink: one JSON object per event, written as events
//! arrive. The format is line-delimited and externally tagged
//! (`{"UnitFinished":{...}}`), so a trace is trivially parseable
//! line-by-line and convertible to chrome://tracing's event format
//! (`UnitStarted`/`UnitFinished` pairs carry the wall-clock durations).

use std::io::Write;

use parking_lot::Mutex;

use super::{Event, Observer};

/// Writes every event as one JSON line to the wrapped writer, flushing
/// per line so a crash loses at most the event in flight (the same
/// contract as the checkpoint journal).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Mutex::new(writer) }
    }

    /// Unwraps the inner writer (flushing is per-line, so nothing is
    /// buffered here).
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

impl<W: Write + Send> Observer for JsonlSink<W> {
    fn on_event(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("event serializes");
        let mut w = self.writer.lock();
        // Trace output is best-effort telemetry: a full disk must not
        // abort a week-long campaign, so IO errors are swallowed.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Parses a JSONL trace back into events, failing on the first
/// malformed line. The inverse of [`JsonlSink`]; tests use it to prove
/// `--trace-out` streams are parseable.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str::<Event>(line).map_err(|e| format!("trace line {}: {e:?}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::{CampaignSummary, Level, OutcomeKind};
    use super::*;
    use crate::exec::UnitKey;

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = vec![
            Event::CampaignStarted { campaign: "foundational".into() },
            Event::PhaseStarted {
                campaign: "foundational".into(),
                phase: "measure".into(),
                units: 1,
            },
            Event::UnitRestored { key: UnitKey::module("M1") },
            Event::UnitStarted { key: UnitKey::cell("M1", 4, 1) },
            Event::UnitFinished {
                key: UnitKey::cell("M1", 4, 1),
                outcome: OutcomeKind::Panicked("boom".into()),
                wall_ns: 12,
                sim_time_ns: 3.5,
                sim_energy_j: 2e-9,
                bitflips: 0,
            },
            Event::CheckpointCommitted { key: UnitKey::module("M1"), latency_ns: 9 },
            Event::Message { level: Level::Info, body: "status".into() },
            Event::Artifact { id: "fig3".into(), text: "rendered".into() },
            Event::CampaignFinished {
                campaign: "foundational".into(),
                summary: CampaignSummary {
                    units_total: 1,
                    units_done: 1,
                    units_panicked: 1,
                    bitflips: 0,
                    sim_time_ns: 3.5,
                    sim_energy_j: 2e-9,
                    wall_ns: 40,
                },
            },
        ];
        let sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.on_event(e);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), events.len());
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_position() {
        let err =
            parse_jsonl("{\"CampaignStarted\":{\"campaign\":\"x\"}}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
