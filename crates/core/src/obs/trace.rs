//! JSONL trace sink: one JSON object per event, written as events
//! arrive. The format is line-delimited and externally tagged
//! (`{"UnitFinished":{...}}`), so a trace is trivially parseable
//! line-by-line and convertible to chrome://tracing's event format
//! (`UnitStarted`/`UnitFinished` pairs carry the wall-clock durations).

use std::collections::BTreeMap;
use std::io::Write;

use parking_lot::Mutex;

use super::{Event, Observer};

/// Writes every event as one JSON line to the wrapped writer, flushing
/// per line so a crash loses at most the event in flight (the same
/// contract as the checkpoint journal).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Mutex::new(writer) }
    }

    /// Unwraps the inner writer (flushing is per-line, so nothing is
    /// buffered here).
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

impl<W: Write + Send> Observer for JsonlSink<W> {
    fn on_event(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("event serializes");
        let mut w = self.writer.lock();
        // Trace output is best-effort telemetry: a full disk must not
        // abort a week-long campaign, so IO errors are swallowed.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Parses a JSONL trace back into events, failing on the first
/// malformed line. The inverse of [`JsonlSink`]; tests use it to prove
/// `--trace-out` streams are parseable.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str::<Event>(line).map_err(|e| format!("trace line {}: {e:?}", i + 1))
        })
        .collect()
}

/// Splits a multiplexed service stream back into per-job streams:
/// every [`Event::JobScoped`] is unwrapped into its job's bucket (in
/// arrival order, which for one job is that job's own emission order).
/// Unscoped events — the service's own messages — are ignored. The
/// stream-conformance suite feeds each bucket to
/// [`super::canonical_jsonl`] and diffs it against the job's own trace
/// file.
pub fn demux_jobs(events: &[Event]) -> BTreeMap<String, Vec<Event>> {
    let mut jobs: BTreeMap<String, Vec<Event>> = BTreeMap::new();
    for event in events {
        if let Event::JobScoped { job, event } = event {
            jobs.entry(job.clone()).or_default().push((**event).clone());
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::super::{CampaignSummary, Level, OutcomeKind};
    use super::*;
    use crate::exec::UnitKey;

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = vec![
            Event::CampaignStarted { campaign: "foundational".into() },
            Event::PhaseStarted {
                campaign: "foundational".into(),
                phase: "measure".into(),
                units: 1,
            },
            Event::UnitRestored { key: UnitKey::module("M1") },
            Event::UnitStarted { key: UnitKey::cell("M1", 4, 1) },
            Event::UnitFinished {
                key: UnitKey::cell("M1", 4, 1),
                outcome: OutcomeKind::Panicked("boom".into()),
                wall_ns: 12,
                sim_time_ns: 3.5,
                sim_energy_j: 2e-9,
                bitflips: 0,
            },
            Event::CheckpointCommitted { key: UnitKey::module("M1"), latency_ns: 9 },
            Event::Message { level: Level::Info, body: "status".into() },
            Event::Artifact { id: "fig3".into(), text: "rendered".into() },
            Event::CampaignFinished {
                campaign: "foundational".into(),
                summary: CampaignSummary {
                    units_total: 1,
                    units_done: 1,
                    units_panicked: 1,
                    bitflips: 0,
                    sim_time_ns: 3.5,
                    sim_energy_j: 2e-9,
                    wall_ns: 40,
                },
            },
        ];
        let sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.on_event(e);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), events.len());
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_position() {
        let err =
            parse_jsonl("{\"CampaignStarted\":{\"campaign\":\"x\"}}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    /// Events from one campaign, as a trace sink would write them.
    fn campaign_stream(campaign: &str, module: &str) -> Vec<Event> {
        vec![
            Event::CampaignStarted { campaign: campaign.into() },
            Event::PhaseStarted { campaign: campaign.into(), phase: "measure".into(), units: 1 },
            Event::UnitStarted { key: UnitKey::module(module) },
            Event::UnitFinished {
                key: UnitKey::module(module),
                outcome: OutcomeKind::Completed,
                wall_ns: 7,
                sim_time_ns: 1.0,
                sim_energy_j: 1e-9,
                bitflips: 2,
            },
            Event::CampaignFinished {
                campaign: campaign.into(),
                summary: CampaignSummary {
                    units_total: 1,
                    units_done: 1,
                    units_panicked: 0,
                    bitflips: 2,
                    sim_time_ns: 1.0,
                    sim_energy_j: 1e-9,
                    wall_ns: 9,
                },
            },
        ]
    }

    #[test]
    fn parse_accepts_interleaved_multi_campaign_input() {
        // Two concurrent campaigns' sinks append to one file: lines
        // interleave arbitrarily but each line stays a complete event.
        let a = campaign_stream("foundational", "M1");
        let b = campaign_stream("discovery", "S0");
        let sink = JsonlSink::new(Vec::new());
        for pair in a.iter().zip(b.iter()) {
            sink.on_event(pair.0);
            sink.on_event(pair.1);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), a.len() + b.len());
        // Both campaigns' events all survive, in their own order.
        let of = |c: &str| -> Vec<Event> {
            parsed
                .iter()
                .filter(|e| match e {
                    Event::CampaignStarted { campaign }
                    | Event::PhaseStarted { campaign, .. }
                    | Event::CampaignFinished { campaign, .. } => campaign == c,
                    Event::UnitStarted { key } | Event::UnitFinished { key, .. } => {
                        key.module == if c == "foundational" { "M1" } else { "S0" }
                    }
                    _ => false,
                })
                .cloned()
                .collect()
        };
        assert_eq!(of("foundational"), a);
        assert_eq!(of("discovery"), b);
    }

    #[test]
    fn demux_recovers_per_job_streams_from_a_multiplexed_feed() {
        let a = campaign_stream("foundational", "M1");
        let b = campaign_stream("in_depth", "S0");
        // Multiplex: wrap each job's events and interleave them.
        let mut feed: Vec<Event> = Vec::new();
        feed.push(Event::Message { level: Level::Info, body: "service boot".into() });
        for pair in a.iter().zip(b.iter()) {
            feed.push(Event::JobScoped {
                job: "job-00002".into(),
                event: Box::new(pair.1.clone()),
            });
            feed.push(Event::JobScoped {
                job: "job-00001".into(),
                event: Box::new(pair.0.clone()),
            });
        }
        // The multiplexed feed itself parses line-by-line.
        let sink = JsonlSink::new(Vec::new());
        for e in &feed {
            sink.on_event(e);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, feed);
        // Demux recovers each job's exact stream; unscoped events drop.
        let jobs = demux_jobs(&parsed);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs["job-00001"], a);
        assert_eq!(jobs["job-00002"], b);
        assert_eq!(
            super::super::canonical_jsonl(&jobs["job-00001"]),
            super::super::canonical_jsonl(&a),
        );
    }
}
