//! [`RdtSeries`]: a row's repeated RDT measurements.

use serde::{Deserialize, Serialize};

use vrd_stats::{BoxSummary, StatsError, Summary};

/// A series of repeated read-disturbance-threshold measurements of one
/// DRAM row, in measurement order.
///
/// Measurements where no bitflip occurred within the sweep range are
/// recorded as *censored* and excluded from the numeric series (the
/// paper's test loop simply writes the RDT at the first flip; a sweep
/// that never flips produces no sample).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdtSeries {
    values: Vec<u32>,
    censored: u32,
}

impl RdtSeries {
    /// Wraps measured values (`censored` counts sweeps with no flip).
    pub fn new(values: Vec<u32>, censored: u32) -> Self {
        RdtSeries { values, censored }
    }

    /// The measurements in order.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Number of successful measurements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no successful measurement.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of sweeps that produced no bitflip.
    pub fn censored(&self) -> u32 {
        self.censored
    }

    /// Smallest measured RDT.
    pub fn min(&self) -> Option<u32> {
        self.values.iter().copied().min()
    }

    /// Largest measured RDT.
    pub fn max(&self) -> Option<u32> {
        self.values.iter().copied().max()
    }

    /// Index (0-based) of the *first* occurrence of the minimum — the
    /// paper's "the smallest RDT value can appear after 94,467
    /// measurements" metric.
    pub fn first_min_index(&self) -> Option<usize> {
        let min = self.min()?;
        self.values.iter().position(|&v| v == min)
    }

    /// How many measurements yielded the minimum (Finding 9's "only 1 of
    /// 1,000 measurements yields the minimum" rows).
    pub fn min_count(&self) -> usize {
        match self.min() {
            Some(min) => self.values.iter().filter(|&&v| v == min).count(),
            None => 0,
        }
    }

    /// Max-over-min ratio (Finding 5's 3.5× worst case).
    pub fn max_over_min(&self) -> Option<f64> {
        let min = self.min()?;
        let max = self.max()?;
        if min == 0 {
            None
        } else {
            Some(f64::from(max) / f64::from(min))
        }
    }

    /// Descriptive summary.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty series.
    pub fn summary(&self) -> Result<Summary, StatsError> {
        Summary::from_u32(&self.values)
    }

    /// Box-and-whiskers summary (paper Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty series.
    pub fn box_summary(&self) -> Result<BoxSummary, StatsError> {
        BoxSummary::from_u32(&self.values)
    }

    /// Coefficient of variation across the series (paper Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns a [`StatsError`] for an empty series.
    pub fn cv(&self) -> Result<f64, StatsError> {
        Ok(self.summary()?.cv)
    }

    /// The measurements as `f64` (for the statistics substrate).
    pub fn to_f64(&self) -> Vec<f64> {
        self.values.iter().map(|&v| f64::from(v)).collect()
    }

    /// Per-chunk `(mean, min, max)` summaries over windows of
    /// `chunk` measurements — the circles-and-error-bars view of Fig. 1.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunk_summaries(&self, chunk: usize) -> Vec<(f64, u32, u32)> {
        assert!(chunk > 0, "chunk must be nonzero");
        self.values
            .chunks(chunk)
            .map(|c| {
                let mean = c.iter().map(|&v| f64::from(v)).sum::<f64>() / c.len() as f64;
                let min = *c.iter().min().expect("non-empty chunk");
                let max = *c.iter().max().expect("non-empty chunk");
                (mean, min, max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> RdtSeries {
        RdtSeries::new(vec![500, 400, 500, 450, 400, 600], 2)
    }

    #[test]
    fn basic_accessors() {
        let s = series();
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
        assert_eq!(s.censored(), 2);
        assert_eq!(s.min(), Some(400));
        assert_eq!(s.max(), Some(600));
    }

    #[test]
    fn first_min_index_finds_earliest() {
        assert_eq!(series().first_min_index(), Some(1));
        assert_eq!(RdtSeries::new(vec![], 0).first_min_index(), None);
    }

    #[test]
    fn min_count_counts_all() {
        assert_eq!(series().min_count(), 2);
    }

    #[test]
    fn max_over_min_ratio() {
        assert_eq!(series().max_over_min(), Some(1.5));
        assert_eq!(RdtSeries::new(vec![0, 5], 0).max_over_min(), None);
    }

    #[test]
    fn empty_series_summary_errors() {
        assert!(RdtSeries::new(vec![], 3).summary().is_err());
    }

    #[test]
    fn chunk_summaries_shapes() {
        let s = series();
        let chunks = s.chunk_summaries(3);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0], ((500.0 + 400.0 + 500.0) / 3.0, 400, 500));
        assert_eq!(chunks[1].2, 600);
    }

    #[test]
    fn cv_positive_for_varying_series() {
        assert!(series().cv().unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk")]
    fn zero_chunk_panics() {
        series().chunk_summaries(0);
    }
}
