//! VRD metrics over an [`RdtSeries`]: state counts, run lengths, and the
//! Finding-3 statistics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use vrd_stats::runlength;

use crate::series::RdtSeries;

/// Aggregate Finding-2/3 metrics of one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesMetrics {
    /// Number of distinct measured RDT values (Finding 2's "states").
    pub unique_states: usize,
    /// Histogram of run lengths: `run length → count` (Fig. 5).
    pub run_length_histogram: BTreeMap<usize, u64>,
    /// Fraction of state changes occurring after a single measurement
    /// (Finding 3's 79.0%); `None` when the series never changes state.
    pub immediate_change_fraction: Option<f64>,
    /// Longest streak of identical consecutive measurements.
    pub longest_run: usize,
    /// 0-based index of the first occurrence of the minimum RDT.
    pub first_min_index: Option<usize>,
    /// Number of measurements equal to the minimum.
    pub min_count: usize,
}

impl SeriesMetrics {
    /// Computes all metrics of `series`.
    pub fn of(series: &RdtSeries) -> Self {
        let values = series.values();
        SeriesMetrics {
            unique_states: vrd_stats::histogram::unique_count(values),
            run_length_histogram: runlength::run_length_histogram(values),
            immediate_change_fraction: runlength::immediate_change_fraction(values),
            longest_run: runlength::longest_run(values),
            first_min_index: series.first_min_index(),
            min_count: series.min_count(),
        }
    }

    /// Merges another row's run-length histogram into this one (the paper
    /// aggregates Fig. 5 across all 14 tested rows).
    pub fn merge_run_lengths(&mut self, other: &SeriesMetrics) {
        for (&len, &count) in &other.run_length_histogram {
            *self.run_length_histogram.entry(len).or_insert(0) += count;
        }
        self.longest_run = self.longest_run.max(other.longest_run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> RdtSeries {
        RdtSeries::new(vec![5, 5, 6, 6, 6, 5, 7, 7], 0)
    }

    #[test]
    fn unique_states_counted() {
        assert_eq!(SeriesMetrics::of(&series()).unique_states, 3);
    }

    #[test]
    fn run_lengths_match() {
        let m = SeriesMetrics::of(&series());
        // Runs: [2, 3, 1, 2].
        assert_eq!(m.run_length_histogram.get(&1), Some(&1));
        assert_eq!(m.run_length_histogram.get(&2), Some(&2));
        assert_eq!(m.run_length_histogram.get(&3), Some(&1));
        assert_eq!(m.longest_run, 3);
    }

    #[test]
    fn immediate_change_fraction_matches() {
        // Changing runs: [2, 3, 1]; one of three has length 1.
        let m = SeriesMetrics::of(&series());
        let f = m.immediate_change_fraction.unwrap();
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_statistics() {
        let m = SeriesMetrics::of(&series());
        assert_eq!(m.first_min_index, Some(0));
        assert_eq!(m.min_count, 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SeriesMetrics::of(&series());
        let b = SeriesMetrics::of(&RdtSeries::new(vec![1, 1, 1, 1, 2], 0));
        a.merge_run_lengths(&b);
        assert_eq!(a.run_length_histogram.get(&4), Some(&1));
        assert_eq!(a.longest_run, 4);
    }
}
