//! Structured campaign observability: typed events and pluggable sinks.
//!
//! The paper's campaigns are week-long measurement runs whose test time
//! and energy are budgeted explicitly (Appendix A); follow-ups such as
//! DiscoRD exist precisely because RDT-discovery cost must be measured
//! before it can be minimized. This module gives every campaign a
//! structured telemetry stream instead of ad-hoc prints:
//!
//! - [`Event`] — the typed event vocabulary: campaign/phase boundaries,
//!   per-unit lifecycle with wall time, simulated test time, estimated
//!   test energy (from the bender platform's Appendix-A energy model),
//!   and bitflip counts, checkpoint-commit latencies, and free-form
//!   messages/artifacts from the CLI layer.
//! - [`Observer`] — the sink trait. The executor ([`crate::exec`]), the
//!   checkpoint journal ([`crate::checkpoint`]), and the campaign entry
//!   points ([`crate::campaign`]) all emit into one observer.
//! - Sinks: [`NullObserver`] (default, zero-cost), [`MemorySink`] (test
//!   capture), [`MultiObserver`] (fan-out), [`trace::JsonlSink`] (one
//!   JSON line per event, `--trace-out`), and [`metrics::MetricsSink`]
//!   (wall-time histograms, throughput, checkpoint latency,
//!   simulated-vs-wall ratio → `metrics.json`).
//!
//! # Determinism
//!
//! Unit-scoped events are emitted from worker threads, so their raw
//! interleaving depends on scheduling. The event *contents* do not:
//! everything except the wall-clock fields derives from
//! `(campaign_seed, unit_key)`. [`canonical`] normalizes a stream —
//! zeroing wall-clock fields and sorting unit events between structural
//! boundaries — into a form that is byte-identical at any thread count,
//! which the observer test suite asserts at `--threads 1/2/8`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::exec::UnitKey;

pub mod metrics;
pub mod trace;

/// Message severity for [`Event::Message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Routine progress/status.
    Info,
    /// Something surprising but survivable.
    Warn,
    /// A failure the run cannot recover from.
    Error,
}

/// How a unit's work closure ended (the event-layer mirror of
/// [`crate::exec::UnitOutcome`], without the payload).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Ran to completion.
    Completed,
    /// Panicked with the contained message.
    Panicked(String),
    /// Yielded mid-unit to a cancellation request
    /// ([`crate::exec::UnitCtx::interrupt`]); the unit reruns on resume.
    Interrupted,
}

/// End-of-campaign roll-up carried by [`Event::CampaignFinished`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Units submitted across all phases.
    pub units_total: usize,
    /// Units finished (completed or panicked), including units restored
    /// from a checkpoint.
    pub units_done: usize,
    /// Units that panicked.
    pub units_panicked: usize,
    /// Bitflips (successful RDT measurements) found.
    pub bitflips: u64,
    /// Simulated DRAM test time consumed (ns).
    pub sim_time_ns: f64,
    /// Estimated DRAM test energy (J), from the bender platform's
    /// Appendix-A command/background energy model.
    pub sim_energy_j: f64,
    /// Host wall-clock time of the campaign (ns). Zeroed by
    /// [`canonical`].
    pub wall_ns: u64,
}

/// One observability event. Serialized externally tagged
/// (`{"UnitFinished": {...}}`), one JSON object per line in the trace
/// stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A campaign entry point was invoked.
    CampaignStarted {
        /// Campaign label (`"foundational"`, `"in_depth"`, ...).
        campaign: String,
    },
    /// A phase (one executor pass) is about to run.
    PhaseStarted {
        /// The owning campaign's label.
        campaign: String,
        /// Phase label (`"measure"`, `"select"`, ...).
        phase: String,
        /// Units submitted to this phase, including ones that will be
        /// restored from a checkpoint instead of running.
        units: usize,
    },
    /// A unit was restored from the checkpoint journal (it does not
    /// run, and reports no `UnitStarted`/`UnitFinished`).
    UnitRestored {
        /// The restored unit.
        key: UnitKey,
    },
    /// A worker popped the unit and is about to run it.
    UnitStarted {
        /// The unit.
        key: UnitKey,
    },
    /// A unit's work closure returned (or panicked).
    UnitFinished {
        /// The unit.
        key: UnitKey,
        /// How the closure ended.
        outcome: OutcomeKind,
        /// Host wall-clock time the unit took (ns). Zeroed by
        /// [`canonical`].
        wall_ns: u64,
        /// Simulated DRAM test time the unit consumed (ns).
        sim_time_ns: f64,
        /// Estimated DRAM test energy the unit consumed (J).
        sim_energy_j: f64,
        /// Bitflips (successful RDT measurements) the unit reported.
        bitflips: u64,
    },
    /// A freshly finished unit's record was appended **and flushed** to
    /// the checkpoint journal.
    CheckpointCommitted {
        /// The committed unit.
        key: UnitKey,
        /// Time the append + flush took (ns). Zeroed by [`canonical`].
        latency_ns: u64,
    },
    /// A discovery-campaign row unit's sequential stopping rule fired:
    /// the row's reliable-RDT bound is certified at the configured
    /// confidence after `epochs_used` measurement epochs (instead of a
    /// fixed-epoch characterization).
    DiscoveryStopped {
        /// The row unit.
        key: UnitKey,
        /// Measurement epochs the row consumed before stopping.
        epochs_used: u32,
        /// The guardbanded reliable-RDT lower bound reported for the
        /// row.
        bound: u32,
        /// The confidence target the stopping rule certified.
        confidence: f64,
    },
    /// A campaign entry point returned successfully.
    CampaignFinished {
        /// Campaign label.
        campaign: String,
        /// The roll-up.
        summary: CampaignSummary,
    },
    /// A free-form log line (the CLI's status messages).
    Message {
        /// Severity.
        level: Level,
        /// The message body.
        body: String,
    },
    /// A rendered experiment artifact (a figure/table the CLI would
    /// print to stdout in human mode).
    Artifact {
        /// Artifact id (`"fig5"`, `"tab7"`, ...).
        id: String,
        /// The rendered text.
        text: String,
    },
    /// An event from one job of a multi-job service run, wrapped with
    /// the job's id. The fleet service multiplexes every job's stream
    /// into one feed of these; [`trace::demux_jobs`] recovers the
    /// per-job streams. Never nested: the inner event is always one of
    /// the plain variants.
    JobScoped {
        /// Owning job id.
        job: String,
        /// The job's own event.
        event: Box<Event>,
    },
}

impl Event {
    /// The event with every host wall-clock field zeroed; all remaining
    /// fields are deterministic functions of `(campaign_seed,
    /// unit_key)`.
    pub fn without_wall_clock(&self) -> Event {
        let mut e = self.clone();
        match &mut e {
            Event::UnitFinished { wall_ns, .. } => *wall_ns = 0,
            Event::CheckpointCommitted { latency_ns, .. } => *latency_ns = 0,
            Event::CampaignFinished { summary, .. } => summary.wall_ns = 0,
            Event::JobScoped { event, .. } => **event = event.without_wall_clock(),
            _ => {}
        }
        e
    }

    /// Whether the event is emitted from worker threads (and therefore
    /// interleaves nondeterministically under parallel execution).
    pub fn is_unit_scoped(&self) -> bool {
        matches!(
            self,
            Event::UnitStarted { .. }
                | Event::UnitFinished { .. }
                | Event::UnitRestored { .. }
                | Event::CheckpointCommitted { .. }
                | Event::DiscoveryStopped { .. }
        )
    }
}

/// Receives events. Implementations must be cheap and non-blocking
/// relative to unit cost: they run on worker threads, inline with the
/// campaign.
pub trait Observer: Sync {
    /// Handles one event.
    fn on_event(&self, event: &Event);
}

/// The do-nothing sink (the default observer of every run).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&self, _event: &Event) {}
}

/// Captures every event in memory, for tests and post-hoc inspection.
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl Default for MemorySink {
    fn default() -> Self {
        MemorySink { events: Mutex::new(Vec::new()) }
    }
}

impl std::fmt::Debug for MemorySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySink").field("events", &self.len()).finish()
    }
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything captured so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Observer for MemorySink {
    fn on_event(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// Fans every event out to several sinks, in order.
pub struct MultiObserver<'a> {
    sinks: Vec<&'a dyn Observer>,
}

impl<'a> MultiObserver<'a> {
    /// Builds the fan-out from borrowed sinks.
    pub fn new(sinks: Vec<&'a dyn Observer>) -> Self {
        MultiObserver { sinks }
    }
}

impl Observer for MultiObserver<'_> {
    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }
}

/// Rank used to order a unit's own events when sorting
/// ([`UnitRestored`](Event::UnitRestored) <
/// [`UnitStarted`](Event::UnitStarted) <
/// [`CheckpointCommitted`](Event::CheckpointCommitted) <
/// [`DiscoveryStopped`](Event::DiscoveryStopped) <
/// [`UnitFinished`](Event::UnitFinished)).
fn unit_event_rank(event: &Event) -> u8 {
    match event {
        Event::UnitRestored { .. } => 0,
        Event::UnitStarted { .. } => 1,
        Event::CheckpointCommitted { .. } => 2,
        Event::DiscoveryStopped { .. } => 3,
        Event::UnitFinished { .. } => 4,
        _ => 5,
    }
}

fn unit_event_key(event: &Event) -> Option<&UnitKey> {
    match event {
        Event::UnitRestored { key }
        | Event::UnitStarted { key }
        | Event::CheckpointCommitted { key, .. }
        | Event::DiscoveryStopped { key, .. }
        | Event::UnitFinished { key, .. } => Some(key),
        _ => None,
    }
}

/// Normalizes an event stream into its canonical, scheduling-independent
/// form: wall-clock fields are zeroed, and runs of unit-scoped events
/// between structural events (campaign/phase boundaries, messages,
/// artifacts) are sorted by `(module, row, condition, rank)`.
///
/// Two runs of the same campaign at different thread counts produce
/// canonical streams that serialize to identical bytes; the observer
/// test suite pins exactly that.
pub fn canonical(events: &[Event]) -> Vec<Event> {
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    let mut run: Vec<Event> = Vec::new();
    let flush = |run: &mut Vec<Event>, out: &mut Vec<Event>| {
        run.sort_by(|a, b| {
            let ka = unit_event_key(a).expect("unit-scoped");
            let kb = unit_event_key(b).expect("unit-scoped");
            (&ka.module, ka.row, ka.condition, unit_event_rank(a)).cmp(&(
                &kb.module,
                kb.row,
                kb.condition,
                unit_event_rank(b),
            ))
        });
        out.append(run);
    };
    for event in events {
        let normalized = event.without_wall_clock();
        if normalized.is_unit_scoped() {
            run.push(normalized);
        } else {
            flush(&mut run, &mut out);
            out.push(normalized);
        }
    }
    flush(&mut run, &mut out);
    out
}

/// Serializes a canonical stream as JSONL (one event per line) — the
/// byte-comparable form the determinism tests diff.
pub fn canonical_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in canonical(events) {
        out.push_str(&serde_json::to_string(&event).expect("event serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(module: &str, row: u32, wall: u64) -> Event {
        Event::UnitFinished {
            key: UnitKey::cell(module, row, 0),
            outcome: OutcomeKind::Completed,
            wall_ns: wall,
            sim_time_ns: 10.0,
            sim_energy_j: 1e-6,
            bitflips: 3,
        }
    }

    #[test]
    fn canonical_zeroes_wall_clock_and_sorts_units() {
        let scrambled = vec![
            Event::PhaseStarted { campaign: "c".into(), phase: "p".into(), units: 2 },
            finished("M1", 7, 999),
            Event::UnitStarted { key: UnitKey::cell("M1", 7, 0) },
            finished("M1", 2, 1),
            Event::UnitStarted { key: UnitKey::cell("M1", 2, 0) },
        ];
        let ordered = vec![
            Event::PhaseStarted { campaign: "c".into(), phase: "p".into(), units: 2 },
            Event::UnitStarted { key: UnitKey::cell("M1", 2, 0) },
            finished("M1", 2, 5),
            Event::UnitStarted { key: UnitKey::cell("M1", 7, 0) },
            finished("M1", 7, 6),
        ];
        assert_eq!(canonical_jsonl(&scrambled), canonical_jsonl(&ordered));
    }

    #[test]
    fn structural_events_are_order_preserving_barriers() {
        let stream = vec![
            Event::PhaseStarted { campaign: "c".into(), phase: "a".into(), units: 1 },
            finished("Z", 1, 0),
            Event::PhaseStarted { campaign: "c".into(), phase: "b".into(), units: 1 },
            finished("A", 1, 0),
        ];
        let canon = canonical(&stream);
        // The phase barrier keeps Z's unit ahead of A's despite Z > A.
        assert!(matches!(&canon[1], Event::UnitFinished { key, .. } if key.module == "Z"));
        assert!(matches!(&canon[3], Event::UnitFinished { key, .. } if key.module == "A"));
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::CampaignStarted { campaign: "foundational".into() },
            finished("M1", 3, 42),
            Event::CheckpointCommitted { key: UnitKey::module("M1"), latency_ns: 17 },
            Event::DiscoveryStopped {
                key: UnitKey::cell("M1", 9, 0),
                epochs_used: 57,
                bound: 4_180,
                confidence: 0.9,
            },
            Event::UnitFinished {
                key: UnitKey::cell("M1", 9, 0),
                outcome: OutcomeKind::Interrupted,
                wall_ns: 1,
                sim_time_ns: 2.0,
                sim_energy_j: 3e-9,
                bitflips: 0,
            },
            Event::Message { level: Level::Warn, body: "hello".into() },
            Event::Artifact { id: "fig5".into(), text: "table".into() },
            Event::CampaignFinished {
                campaign: "foundational".into(),
                summary: CampaignSummary {
                    units_total: 1,
                    units_done: 1,
                    units_panicked: 0,
                    bitflips: 3,
                    sim_time_ns: 10.0,
                    sim_energy_j: 1e-6,
                    wall_ns: 5,
                },
            },
        ];
        for event in &events {
            let json = serde_json::to_string(event).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, event);
        }
    }

    #[test]
    fn job_scoped_round_trips_and_normalizes_recursively() {
        let event =
            Event::JobScoped { job: "job-00003".into(), event: Box::new(finished("M1", 7, 1234)) };
        let json = serde_json::to_string(&event).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
        let normalized = event.without_wall_clock();
        let Event::JobScoped { job, event: inner } = &normalized else {
            panic!("variant preserved");
        };
        assert_eq!(job, "job-00003");
        assert!(matches!(**inner, Event::UnitFinished { wall_ns: 0, .. }));
        // Job-scoped events are structural: the multiplexed stream keeps
        // arrival order, and per-job canonicalization happens after demux.
        assert!(!event.is_unit_scoped());
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let sink = MemorySink::new();
        sink.on_event(&Event::CampaignStarted { campaign: "x".into() });
        sink.on_event(&finished("M1", 1, 2));
        assert_eq!(sink.len(), 2);
        assert!(matches!(sink.events()[0], Event::CampaignStarted { .. }));
    }

    #[test]
    fn multi_observer_fans_out() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let multi = MultiObserver::new(vec![&a, &b]);
        multi.on_event(&Event::CampaignStarted { campaign: "x".into() });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
