//! The VRD paper's primary contribution, as a library.
//!
//! This crate implements the characterization methodology of
//! *"Variable Read Disturbance: An Experimental Analysis of Temporal
//! Variation in DRAM Read Disturbance"* (HPCA 2025) on top of the
//! device-model and testing-infrastructure substrates:
//!
//! - [`algorithm`] — Algorithm 1: `find_victim` (row selection by guessed
//!   RDT) and the repeated-measurement `test_loop` sweeping hammer counts
//!   from `RDT_guess/2` to `RDT_guess×3` in steps of `RDT_guess/100`.
//! - [`series`] — the [`RdtSeries`] type holding one row's repeated RDT
//!   measurements plus the summary operations the figures need.
//! - [`metrics`] — VRD metrics: coefficient of variation, unique RDT
//!   states, run lengths (Fig. 5), first occurrence of the minimum.
//! - [`predictability`] — §4.1: chi-square goodness of fit against a
//!   fitted normal and autocorrelation comparison with white noise.
//! - [`montecarlo`] — §5.1: probability of finding the minimum RDT with N
//!   measurements, expected normalized minimum RDT, and within-margin
//!   probabilities — both by Monte-Carlo simulation (as the paper does)
//!   and in closed form (for cross-validation).
//! - [`campaign`] — the foundational (§4) and in-depth (§5) measurement
//!   campaigns against simulated modules.
//! - [`discovery`] — the DiscoRD-style early-stopping campaign: bound
//!   each row's reliable RDT with a sequential quiet-streak stopping
//!   rule instead of a fixed measurement budget.
//! - [`exec`] — the deterministic work-stealing executor that shards
//!   campaign work units across threads with per-unit derived seeds, so
//!   parallel campaigns are bit-identical to serial ones.
//! - [`checkpoint`] — crash-safe campaign persistence: an append-only,
//!   checksummed journal of finished units plus a manifest binding it to
//!   one campaign config/seed/shard, so a killed campaign resumes to
//!   byte-identical output.
//! - [`obs`] — structured observability: typed campaign events
//!   (unit/phase/checkpoint lifecycle with wall time, simulated test
//!   time/energy, and bitflips) flowing to pluggable sinks — JSONL
//!   traces, metrics aggregation, in-memory capture.
//! - [`run`] — the unified campaign-run surface: [`run::RunOptions`]
//!   bundles executor config, observer, checkpoint, and cancellation,
//!   so observed/checkpointed are configurations of one entry point
//!   instead of separate functions.
//! - [`scheduler`] — deterministic fair-share scheduling for
//!   multi-tenant campaign services: stride scheduling across tenants
//!   with a replayable op log, so dispatch order is a pure function of
//!   `(service_seed, submission log)`.
//! - [`guardband`] — §6.3/6.4: guardbanded hammering, unique-bitflip
//!   accounting (Fig. 16), and ECC codeword classification.
//!
//! # Examples
//!
//! Measure a row's RDT a few times and inspect the variation:
//!
//! ```
//! use vrd_bender::TestPlatform;
//! use vrd_core::algorithm::{find_victim, test_loop, SweepSpec};
//! use vrd_dram::TestConditions;
//!
//! let mut platform = TestPlatform::small_test(3);
//! let conditions = TestConditions::foundational();
//! let (row, guess) =
//!     find_victim(&mut platform, 0, &conditions, 40_000, 2..2000).expect("vulnerable row");
//! let series = test_loop(&mut platform, 0, row, &conditions, 20, &SweepSpec::from_guess(guess));
//! assert_eq!(series.len(), 20);
//! ```

pub mod algorithm;
pub mod campaign;
pub mod checkpoint;
pub mod discovery;
pub mod exec;
pub mod guardband;
pub mod metrics;
pub mod montecarlo;
pub mod obs;
pub mod online;
pub mod predictability;
pub mod profile;
pub mod run;
pub mod scheduler;
pub mod series;

pub use algorithm::{
    find_victim, test_loop, test_loop_using, test_loop_with, EvalStrategy, SearchStrategy,
    SweepSpec,
};
pub use series::RdtSeries;
