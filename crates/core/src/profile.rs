//! Consolidated VRD profiles — the paper's Table 7 as a library type.
//!
//! A [`VrdProfile`] summarizes one module's in-depth campaign the way the
//! paper's Table 7 does: the expected normalized value of the minimum RDT
//! for N ∈ {1, 5, 50, 500} (median and maximum across rows and condition
//! combinations) plus the minimum observed RDT at the RowHammer and
//! RowPress on-times.

use serde::{Deserialize, Serialize};

use vrd_dram::conditions::{T_AGG_ON_MIN_TRAS_NS, T_AGG_ON_TREFI_NS};

use crate::campaign::InDepthResult;
use crate::montecarlo::exact_stats;

/// The measurement counts Table 7 reports.
pub const TABLE7_N_VALUES: [usize; 4] = [1, 5, 50, 500];

/// `(median, max)` of the expected normalized minimum RDT at one N.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormMinSummary {
    /// Subsample size N.
    pub n: usize,
    /// Median across rows × conditions.
    pub median: f64,
    /// Maximum (the worst row).
    pub max: f64,
}

/// One module's VRD profile (a Table-7 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VrdProfile {
    /// Module name.
    pub module: String,
    /// Rows contributing series.
    pub rows_measured: usize,
    /// Expected-normalized-minimum summaries per N.
    pub norm_min: Vec<NormMinSummary>,
    /// Minimum observed RDT at `t_AggOn` ≈ min `t_RAS` (RowHammer).
    pub min_rdt_tras: Option<u32>,
    /// Minimum observed RDT at `t_AggOn` = `t_REFI` (RowPress).
    pub min_rdt_trefi: Option<u32>,
    /// Largest max/min ratio over any single series (Finding 5's 3.5×).
    pub worst_max_over_min: f64,
}

impl VrdProfile {
    /// Builds the profile from an in-depth campaign result.
    pub fn from_in_depth(result: &InDepthResult) -> Self {
        let mut norm_min = Vec::new();
        for &n in &TABLE7_N_VALUES {
            let mut values = Vec::new();
            for row in &result.rows {
                for cs in &row.per_condition {
                    if cs.series.len() >= n {
                        values.push(exact_stats(&cs.series, n).expected_normalized_min);
                    }
                }
            }
            if values.is_empty() {
                continue;
            }
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            norm_min.push(NormMinSummary {
                n,
                median: values[values.len() / 2],
                max: *values.last().expect("non-empty"),
            });
        }

        let min_at = |target: f64, tolerance: f64| -> Option<u32> {
            result
                .rows
                .iter()
                .flat_map(|r| r.per_condition.iter())
                .filter(|cs| (cs.conditions.t_agg_on_ns - target).abs() <= tolerance)
                .filter_map(|cs| cs.series.min())
                .min()
        };
        let worst_max_over_min = result
            .rows
            .iter()
            .flat_map(|r| r.per_condition.iter())
            .filter_map(|cs| cs.series.max_over_min())
            .fold(1.0, f64::max);

        VrdProfile {
            module: result.module.clone(),
            rows_measured: result.rows.len(),
            norm_min,
            min_rdt_tras: min_at(T_AGG_ON_MIN_TRAS_NS, 50.0),
            min_rdt_trefi: min_at(T_AGG_ON_TREFI_NS, 1.0),
            worst_max_over_min,
        }
    }

    /// The summary for a given N, if measured.
    pub fn at_n(&self, n: usize) -> Option<NormMinSummary> {
        self.norm_min.iter().copied().find(|s| s.n == n)
    }

    /// The smallest RDT observed at any measured on-time — the
    /// worst-case anchor a mitigation threshold (or a per-region
    /// mitigation profile derived from it) must not exceed. `None` when
    /// the campaign measured no series at the profiled on-times.
    pub fn min_observed_rdt(&self) -> Option<u32> {
        match (self.min_rdt_tras, self.min_rdt_trefi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether this profile is *worse* than `other` at N = 1 (the paper's
    /// density/revision comparison, Finding 11): higher median expected
    /// normalized minimum.
    pub fn worse_than(&self, other: &VrdProfile) -> Option<bool> {
        Some(self.at_n(1)?.median > other.at_n(1)?.median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_in_depth, InDepthConfig};
    use vrd_dram::ModuleSpec;

    fn quick_profile(name: &str) -> VrdProfile {
        let spec = ModuleSpec::by_name(name).expect("Table-1 module");
        let result = run_in_depth(&spec, &InDepthConfig::quick());
        VrdProfile::from_in_depth(&result)
    }

    #[test]
    fn profile_has_monotone_norm_min() {
        let p = quick_profile("M1");
        assert_eq!(p.module, "M1");
        assert!(p.rows_measured > 0);
        let mut prev = f64::INFINITY;
        for s in &p.norm_min {
            assert!(s.median >= 1.0 - 1e-9, "N={}: median {}", s.n, s.median);
            assert!(s.max >= s.median - 1e-12);
            assert!(s.median <= prev + 1e-9, "median must shrink with N");
            prev = s.median;
        }
    }

    #[test]
    fn worst_ratio_at_least_one() {
        let p = quick_profile("S2");
        assert!(p.worst_max_over_min >= 1.0);
    }

    #[test]
    fn at_n_lookup() {
        let p = quick_profile("H3");
        assert!(p.at_n(1).is_some());
        assert_eq!(p.at_n(999), None);
    }

    #[test]
    fn min_rdt_tras_present_for_quick_grid() {
        // The quick config tests only the foundational conditions (min
        // tRAS), so the tRAS minimum exists and the tREFI one does not.
        let p = quick_profile("M4");
        assert!(p.min_rdt_tras.is_some());
        assert_eq!(p.min_rdt_trefi, None);
    }

    #[test]
    fn min_observed_rdt_takes_the_smaller_on_time_minimum() {
        let mut p = quick_profile("M1");
        assert_eq!(p.min_observed_rdt(), p.min_rdt_tras, "quick grid has only tRAS minima");
        p.min_rdt_trefi = Some(1);
        assert_eq!(p.min_observed_rdt(), Some(1));
        p.min_rdt_tras = None;
        assert_eq!(p.min_observed_rdt(), Some(1));
        p.min_rdt_trefi = None;
        assert_eq!(p.min_observed_rdt(), None);
    }
}
