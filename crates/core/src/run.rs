//! The unified campaign-run surface.
//!
//! PRs 1–3 grew each campaign into a `run_X_campaign` / `_observed` /
//! `_checkpointed` triad — a combinatorial API that every new capability
//! (cancellation, tracing, metrics) would double again. [`RunOptions`]
//! collapses the axes into one value: *observed* and *checkpointed* are
//! configurations, not separate functions. The campaign entry points in
//! [`crate::campaign`] take `&RunOptions` and behave like whichever
//! member of the old triad the options describe.
//!
//! ```
//! use vrd_core::campaign::{foundational_campaign, FoundationalConfig};
//! use vrd_core::exec::ExecConfig;
//! use vrd_core::obs::MemorySink;
//! use vrd_core::run::RunOptions;
//! use vrd_dram::spec::ModuleSpec;
//!
//! let specs = vec![ModuleSpec::by_name("M1").unwrap()];
//! let cfg =
//!     FoundationalConfig::builder().measurements(50).row_bytes(512).scan_rows(3000).build();
//! let sink = MemorySink::new();
//! let opts = RunOptions::new(ExecConfig::serial(7)).observer(&sink);
//! let results = foundational_campaign(&specs, &cfg, &opts).unwrap();
//! assert_eq!(results.len(), 1);
//! assert!(!sink.events().is_empty());
//! ```

use std::sync::atomic::AtomicBool;

use serde::{Deserialize, Serialize};

use crate::checkpoint::{self, Checkpoint, CheckpointError, UnitHooks};
use crate::exec::{self, ExecConfig, ExecReport, Progress, Unit, UnitCtx};
use crate::obs::{Event, NullObserver, Observer};

/// Everything configurable about one campaign run: the executor, an
/// event sink, shared progress counters, a checkpoint, unit hooks, and
/// a cancellation flag. Borrowed pieces default to inert values
/// ([`NullObserver`], no checkpoint, no cancel), so
/// `RunOptions::new(exec)` alone reproduces the plain triad member.
///
/// `#[non_exhaustive]`: construct with [`RunOptions::new`] and the
/// chaining setters.
#[derive(Clone, Copy)]
#[non_exhaustive]
pub struct RunOptions<'a> {
    exec: ExecConfig,
    observer: &'a dyn Observer,
    progress: Option<&'a Progress>,
    checkpoint: Option<&'a Checkpoint>,
    hooks: Option<&'a dyn UnitHooks>,
    cancel: Option<&'a AtomicBool>,
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("exec", &self.exec)
            .field("progress", &self.progress.is_some())
            .field("checkpoint", &self.checkpoint)
            .field("hooks", &self.hooks.is_some())
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

impl<'a> RunOptions<'a> {
    /// A plain run: the given executor config, no observer, no
    /// checkpoint, no cancellation.
    pub fn new(exec: ExecConfig) -> Self {
        RunOptions {
            exec,
            observer: &NullObserver,
            progress: None,
            checkpoint: None,
            hooks: None,
            cancel: None,
        }
    }

    /// Sends campaign events to `observer` (fan out with
    /// [`crate::obs::MultiObserver`]).
    pub fn observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Accumulates progress into caller-owned counters (for live
    /// polling); without this, each run uses its own private counters.
    pub fn progress(mut self, progress: &'a Progress) -> Self {
        self.progress = progress.into();
        self
    }

    /// Journals every finished unit into `checkpoint` and restores
    /// already-journaled units instead of re-running them.
    pub fn checkpoint(mut self, checkpoint: &'a Checkpoint) -> Self {
        self.checkpoint = checkpoint.into();
        self
    }

    /// Installs unit-boundary hooks (fault injection, commit callbacks).
    pub fn hooks(mut self, hooks: &'a dyn UnitHooks) -> Self {
        self.hooks = hooks.into();
        self
    }

    /// Makes the run cooperatively cancellable: when the flag flips,
    /// unstarted units are skipped and the run reports
    /// [`CheckpointError::Interrupted`].
    pub fn cancel(mut self, cancel: &'a AtomicBool) -> Self {
        self.cancel = cancel.into();
        self
    }

    /// The executor configuration.
    pub fn exec(&self) -> &ExecConfig {
        &self.exec
    }

    /// The event sink.
    pub fn observer_ref(&self) -> &'a dyn Observer {
        self.observer
    }

    /// Whether caller-owned progress counters are installed.
    pub fn has_progress(&self) -> bool {
        self.progress.is_some()
    }

    /// The shared progress counters, if any.
    pub fn progress_ref(&self) -> Option<&'a Progress> {
        self.progress
    }

    /// The checkpoint, if any.
    pub fn checkpoint_ref(&self) -> Option<&'a Checkpoint> {
        self.checkpoint
    }

    /// The unit-boundary hooks, if any. Campaign code that commits
    /// mid-unit state (the discovery campaign's [`Checkpoint::stash`])
    /// fires [`UnitHooks::after_commit`] through this, so fault plans
    /// count stash commits like unit commits.
    pub fn hooks_ref(&self) -> Option<&'a dyn UnitHooks> {
        self.hooks
    }

    /// The effective cancellation flag: the explicit one, else the
    /// hooks' flag.
    pub fn effective_cancel(&self) -> Option<&'a AtomicBool> {
        self.cancel.or_else(|| self.hooks.and_then(UnitHooks::cancel_flag))
    }
}

/// Runs one phase of a campaign under `opts`: emits
/// [`Event::PhaseStarted`], dispatches to the checkpointed or plain
/// executor, and turns cancellation into
/// [`CheckpointError::Interrupted`].
///
/// Campaign entry points call this once per phase; the multi-phase
/// in-depth campaign calls it twice under one set of options, so the
/// phases share progress counters, the checkpoint journal, and the
/// event stream.
///
/// # Errors
///
/// - [`CheckpointError::Interrupted`] when cancellation skipped units.
/// - Checkpoint open/decode errors when a checkpoint is configured.
pub fn run_units<I, T, F>(
    opts: &RunOptions<'_>,
    campaign: &str,
    phase: &str,
    units: Vec<Unit<I>>,
    f: F,
) -> Result<ExecReport<T>, CheckpointError>
where
    I: Send + Sync,
    T: Serialize + Deserialize + Send,
    F: Fn(UnitCtx<'_>, &I) -> T + Sync,
{
    opts.observer.on_event(&Event::PhaseStarted {
        campaign: campaign.to_owned(),
        phase: phase.to_owned(),
        units: units.len(),
    });
    let own_progress;
    let progress = match opts.progress {
        Some(p) => p,
        None => {
            own_progress = Progress::new();
            &own_progress
        }
    };
    let cancel = opts.effective_cancel();
    let total = units.len();

    let report = match opts.checkpoint {
        Some(ckpt) => checkpoint::execute_checkpointed_run(
            &opts.exec,
            units,
            progress,
            ckpt,
            opts.hooks,
            cancel,
            opts.observer,
            f,
        )?,
        None => {
            let hooks = opts.hooks;
            let report =
                exec::execute_run(&opts.exec, units, progress, cancel, opts.observer, |ctx, p| {
                    if let Some(h) = hooks {
                        h.before_unit(ctx.key);
                    }
                    f(ctx, p)
                });
            let skipped = report.outcomes.iter().filter(|o| o.is_skipped()).count();
            if skipped > 0 {
                return Err(CheckpointError::Interrupted { completed: total - skipped, total });
            }
            report
        }
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::Ordering;

    use super::*;
    use crate::exec::UnitKey;
    use crate::obs::MemorySink;

    fn units(n: usize) -> Vec<Unit<usize>> {
        (0..n).map(|i| Unit::new(UnitKey::cell("M1", i as u32, 0), i)).collect()
    }

    #[test]
    fn plain_run_completes_and_reports_phase() {
        let sink = MemorySink::new();
        let opts = RunOptions::new(ExecConfig::serial(1)).observer(&sink);
        let report = run_units(&opts, "c", "p", units(4), |_, &i| i * 2).unwrap();
        assert_eq!(report.into_results(), vec![0, 2, 4, 6]);
        let events = sink.events();
        assert!(matches!(
            &events[0],
            Event::PhaseStarted { campaign, phase, units: 4 }
                if campaign == "c" && phase == "p"
        ));
        let finished = events.iter().filter(|e| matches!(e, Event::UnitFinished { .. })).count();
        assert_eq!(finished, 4);
    }

    #[test]
    fn explicit_cancel_interrupts_a_plain_run() {
        let cancel = AtomicBool::new(false);
        let opts = RunOptions::new(ExecConfig::serial(1)).cancel(&cancel);
        let err = run_units(&opts, "c", "p", units(5), |_, &i| {
            if i == 1 {
                cancel.store(true, Ordering::SeqCst);
            }
            i
        })
        .unwrap_err();
        let CheckpointError::Interrupted { completed, total } = err else {
            panic!("expected Interrupted, got {err:?}");
        };
        assert_eq!((completed, total), (2, 5));
    }

    #[test]
    fn shared_progress_spans_phases() {
        let progress = Progress::new();
        let opts = RunOptions::new(ExecConfig::serial(1)).progress(&progress);
        run_units(&opts, "c", "a", units(3), |_, &i| i).unwrap();
        run_units(&opts, "c", "b", units(2), |_, &i| i).unwrap();
        let snap = progress.snapshot();
        assert_eq!((snap.units_total, snap.units_done), (5, 5));
    }
}
