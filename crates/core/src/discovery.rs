//! DiscoRD-style early-stopping discovery campaign.
//!
//! The in-depth campaign (§5) characterizes each selected row with a
//! *fixed* number of RDT measurements. That is the right tool for
//! studying temporal variation, but wasteful when the question is only
//! "what RDT can this row be trusted down to?" — most rows settle their
//! running minimum long before the fixed budget runs out. Following the
//! DiscoRD observation (see `PAPERS.md`), [`discovery_campaign`] bounds
//! each row's reliable RDT with a *sequential* stopping rule instead:
//! it keeps measuring until the running minimum has survived a long
//! enough quiet streak that, at the configured confidence, the
//! probability of a future epoch undercutting it is below
//! [`DiscoveryConfig::epsilon`] (see [`vrd_stats::StoppingRule`]).
//!
//! Row selection is byte-identical to the in-depth campaign's phase 1
//! (same platform construction, same scan), and each row's measurement
//! stream replays the in-depth campaign's condition-0 cell exactly: the
//! discovery unit key equals the in-depth cell key, so the derived unit
//! seed — and therefore every keyed measurement epoch — matches. A
//! discovery run that stops after `k` epochs has observed a strict
//! *prefix* of what the in-depth campaign observes for the same cell,
//! which is the anchor of the soundness suite
//! (`tests/discovery_validation.rs`).
//!
//! The reported [`DiscoveryRowResult::bound`] applies a multiplicative
//! guardband below the observed minimum, mirroring how a deployed
//! mitigation would derate the discovered threshold.
//!
//! Mid-row checkpointing: with a [`Checkpoint`] configured, every
//! [`DiscoveryConfig::stash_every`] epochs the row's observation stream
//! so far is stashed under a sentinel key ([`DISCOVERY_STATE_CONDITION`])
//! via [`Checkpoint::stash`]. A resumed run replays the stash by
//! fast-forwarding the platform's epoch counter — measured values are
//! pure functions of `(unit seed, epoch)`, so the continuation is
//! byte-identical to an uninterrupted run.

use serde::{Deserialize, Serialize};

use vrd_bender::routines::guess_rdt;
use vrd_bender::TestPlatform;
use vrd_dram::spec::ModuleSpec;
use vrd_dram::TestConditions;
use vrd_stats::{
    chi_square_gof_normal, ks_test_two_sample, SequentialMin, StatsError, StoppingRule,
};

use crate::algorithm::{
    measure_rdt_once_using, EvalStrategy, SearchStrategy, SweepSpec, FIND_VICTIM_CUTOFF,
};
use crate::campaign::{run_campaign_phases, select_unit_with};
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::exec::{Unit, UnitCtx, UnitKey};
use crate::obs::Event;
use crate::run::{run_units, RunOptions};
use crate::series::RdtSeries;

/// Campaign label of the discovery campaign, used in events and
/// checkpoint manifests.
pub const DISCOVERY: &str = "discovery";

/// Sentinel condition index for a row's mid-measurement stash key.
/// Distinct from [`UnitKey::WHOLE_MODULE`] and far above any real
/// condition index, so stash records never collide with unit records in
/// a shared journal.
pub const DISCOVERY_STATE_CONDITION: u32 = u32::MAX - 1;

/// Configuration of the discovery campaign.
///
/// `#[non_exhaustive]`: construct via [`DiscoveryConfig::default`],
/// [`DiscoveryConfig::quick`], or [`DiscoveryConfig::builder`], so
/// future fields are not breaking changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct DiscoveryConfig {
    /// Confidence target of the stopping rule (in `(0, 1)`).
    pub confidence: f64,
    /// Tolerated per-epoch undercut probability once stopped.
    pub epsilon: f64,
    /// Epoch floor: no row stops earlier.
    pub min_epochs: u32,
    /// Epoch ceiling: every row stops here at the latest.
    pub max_epochs: u32,
    /// Multiplicative derating applied below the observed minimum when
    /// reporting [`DiscoveryRowResult::bound`] (in `[0, 1)`).
    pub guardband: f64,
    /// Stash the row's observation stream into the checkpoint every
    /// this many epochs (0 disables mid-row stashing).
    pub stash_every: u32,
    /// Rows scanned per segment during selection (as in-depth).
    pub segment_rows: u32,
    /// Rows selected per segment (as in-depth).
    pub picks_per_segment: usize,
    /// Test conditions of the measurement stream.
    pub conditions: TestConditions,
    /// Device seed.
    pub seed: u64,
    /// Row size in bytes for the device model.
    pub row_bytes: u32,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            confidence: 0.9,
            epsilon: 0.05,
            min_epochs: 10,
            max_epochs: 400,
            guardband: 0.15,
            stash_every: 16,
            segment_rows: 1_024,
            picks_per_segment: 50,
            conditions: TestConditions::foundational(),
            seed: 5025,
            row_bytes: 2048,
        }
    }
}

impl DiscoveryConfig {
    /// A reduced configuration for tests and quick runs. Selection
    /// parameters match [`crate::campaign::InDepthConfig::quick`], so
    /// both campaigns pick identical rows.
    pub fn quick() -> Self {
        DiscoveryConfig {
            max_epochs: 120,
            stash_every: 8,
            segment_rows: 96,
            picks_per_segment: 4,
            row_bytes: 512,
            ..DiscoveryConfig::default()
        }
    }

    /// A builder seeded with the defaults.
    pub fn builder() -> DiscoveryConfigBuilder {
        DiscoveryConfigBuilder { cfg: DiscoveryConfig::default() }
    }

    /// A builder seeded with this configuration's values.
    pub fn to_builder(&self) -> DiscoveryConfigBuilder {
        DiscoveryConfigBuilder { cfg: self.clone() }
    }

    /// The stopping rule this configuration describes.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] when the confidence, epsilon,
    /// or epoch bounds are out of range (see [`StoppingRule::new`]).
    pub fn stopping_rule(&self) -> Result<StoppingRule, StatsError> {
        StoppingRule::new(self.confidence, self.epsilon, self.min_epochs, self.max_epochs)
    }
}

/// Builder for [`DiscoveryConfig`]; obtained from
/// [`DiscoveryConfig::builder`] or [`DiscoveryConfig::to_builder`].
#[derive(Debug, Clone)]
pub struct DiscoveryConfigBuilder {
    cfg: DiscoveryConfig,
}

impl DiscoveryConfigBuilder {
    /// Sets the confidence target.
    pub fn confidence(mut self, confidence: f64) -> Self {
        self.cfg.confidence = confidence;
        self
    }

    /// Sets the tolerated per-epoch undercut probability.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.cfg.epsilon = epsilon;
        self
    }

    /// Sets the epoch floor.
    pub fn min_epochs(mut self, min_epochs: u32) -> Self {
        self.cfg.min_epochs = min_epochs;
        self
    }

    /// Sets the epoch ceiling.
    pub fn max_epochs(mut self, max_epochs: u32) -> Self {
        self.cfg.max_epochs = max_epochs;
        self
    }

    /// Sets the reporting guardband.
    pub fn guardband(mut self, guardband: f64) -> Self {
        self.cfg.guardband = guardband;
        self
    }

    /// Sets the mid-row stash cadence (0 disables stashing).
    pub fn stash_every(mut self, stash_every: u32) -> Self {
        self.cfg.stash_every = stash_every;
        self
    }

    /// Sets the rows scanned per segment.
    pub fn segment_rows(mut self, segment_rows: u32) -> Self {
        self.cfg.segment_rows = segment_rows;
        self
    }

    /// Sets the rows selected per segment.
    pub fn picks_per_segment(mut self, picks_per_segment: usize) -> Self {
        self.cfg.picks_per_segment = picks_per_segment;
        self
    }

    /// Sets the test conditions.
    pub fn conditions(mut self, conditions: TestConditions) -> Self {
        self.cfg.conditions = conditions;
        self
    }

    /// Sets the device seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the device-model row size in bytes.
    pub fn row_bytes(mut self, row_bytes: u32) -> Self {
        self.cfg.row_bytes = row_bytes;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// When the stopping-rule parameters are invalid (confidence or
    /// epsilon outside `(0, 1)`, `min_epochs == 0`,
    /// `max_epochs < min_epochs`) or the guardband is outside `[0, 1)`.
    pub fn build(self) -> DiscoveryConfig {
        self.cfg.stopping_rule().expect("discovery stopping-rule parameters must be valid");
        assert!(
            self.cfg.guardband >= 0.0 && self.cfg.guardband < 1.0,
            "guardband must be in [0, 1)"
        );
        self.cfg
    }
}

/// The stash payload of one partially measured row: the observation
/// stream so far, in epoch order (`None` = censored epoch). Replaying
/// it reconstructs the sequential state exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryRowState {
    /// Per-epoch outcomes, in epoch order.
    pub observations: Vec<Option<u32>>,
}

/// Discovery outcome for one row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryRowResult {
    /// Row address.
    pub row: u32,
    /// Selection-time mean RDT guess.
    pub selection_guess: u32,
    /// The re-guessed RDT parameterizing the sweep.
    pub rdt_guess: u32,
    /// The reliable-RDT bound: the observed minimum derated by the
    /// guardband.
    pub bound: u32,
    /// Smallest RDT observed before stopping.
    pub min_observed: u32,
    /// Measurement epochs spent (including censored ones).
    pub epochs_used: u32,
    /// Whether the quiet-streak rule stopped the row before the
    /// `max_epochs` ceiling forced it.
    pub stopped_early: bool,
    /// The confidence target the stopping rule was run at.
    pub confidence: f64,
    /// The full observed series (for downstream statistics).
    pub series: RdtSeries,
    /// Split-half two-sample KS p-value of the observed stream — a
    /// sanity check that early and late epochs are exchangeable.
    /// `None` when either half is too small.
    pub ks_split_p: Option<f64>,
    /// Chi-square normality p-value of the observed stream. `None`
    /// when the sample is too small or degenerate.
    pub chi_square_p: Option<f64>,
}

/// Discovery campaign result for one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryResult {
    /// Module name.
    pub module: String,
    /// Per-row outcomes, in selection order (rows whose measurement
    /// stream was fully censored are omitted).
    pub rows: Vec<DiscoveryRowResult>,
}

/// Runs the early-stopping discovery campaign across a fleet of modules
/// on the deterministic executor, under [`RunOptions`], in two phases:
///
/// 1. **Selection** — identical to the in-depth campaign's phase 1.
/// 2. **Discovery** — one unit per selected row, keyed like the
///    in-depth campaign's condition-0 cell. Each unit measures the row
///    repeatedly under the configured conditions and stops as soon as
///    the [`StoppingRule`] is satisfied, emitting
///    [`Event::DiscoveryStopped`] with the epochs spent and the bound.
///
/// Output order follows `specs`; within a module, rows follow selection
/// order, independent of the thread count.
///
/// When `opts` carries a checkpoint, finished rows restore from the
/// journal and *unfinished* rows restore their stashed prefix (see the
/// module docs); a resumed campaign is byte-identical to an
/// uninterrupted one. When cancellation fires mid-row, the row stashes
/// its progress and reports itself interrupted instead of committing a
/// truncated result.
///
/// # Errors
///
/// [`CheckpointError::Interrupted`] when cancellation stopped the run
/// early, plus checkpoint open/decode errors. A run without checkpoint
/// or cancellation cannot fail.
///
/// # Panics
///
/// When `cfg` describes an invalid stopping rule (impossible for
/// configurations produced by the builder, which validates).
pub fn discovery_campaign(
    specs: &[ModuleSpec],
    cfg: &DiscoveryConfig,
    opts: &RunOptions<'_>,
) -> Result<Vec<DiscoveryResult>, CheckpointError> {
    let search = opts.exec().search;
    let eval = opts.exec().eval;
    let rule = cfg.stopping_rule().expect("discovery stopping-rule parameters must be valid");
    run_campaign_phases(opts, DISCOVERY, |opts| {
        // Phase 1: per-module row selection, exactly as in-depth.
        let selection_units: Vec<Unit<ModuleSpec>> =
            specs.iter().map(|s| Unit::new(UnitKey::module(&s.name), s.clone())).collect();
        let selections: Vec<Vec<(u32, u32)>> =
            run_units(opts, DISCOVERY, "select", selection_units, |ctx, spec| {
                select_unit_with(
                    spec,
                    cfg.seed,
                    cfg.row_bytes,
                    cfg.segment_rows,
                    cfg.picks_per_segment,
                    &ctx,
                )
            })?
            .into_results();

        // Phase 2: one unit per selected row, all modules in one pool.
        let units = row_units(specs, &selections);
        let rows: Vec<Option<DiscoveryRowResult>> =
            run_units(opts, DISCOVERY, "discover", units, |ctx, &(module_idx, row, guess)| {
                discover_row(&specs[module_idx], cfg, &rule, row, guess, search, eval, &ctx, opts)
            })?
            .into_results();

        Ok(merge_discovery(specs, selections, rows))
    })
}

/// Runs the discovery campaign against one module, serially.
pub fn run_discovery(spec: &ModuleSpec, cfg: &DiscoveryConfig) -> DiscoveryResult {
    use crate::exec::ExecConfig;
    discovery_campaign(
        std::slice::from_ref(spec),
        cfg,
        &RunOptions::new(ExecConfig::serial(cfg.seed)),
    )
    .expect("plain campaign run cannot fail")
    .pop()
    .expect("one module in, one result out")
}

/// Phase-2 units: one per (module × selected row), keyed exactly like
/// the in-depth campaign's condition-0 cell so the derived unit seed —
/// and with it every measurement epoch — matches.
fn row_units(specs: &[ModuleSpec], selections: &[Vec<(u32, u32)>]) -> Vec<Unit<(usize, u32, u32)>> {
    let mut units = Vec::new();
    for (module_idx, spec) in specs.iter().enumerate() {
        for &(row, selection_guess) in &selections[module_idx] {
            units.push(Unit::new(
                UnitKey::cell(&spec.name, row, 0),
                (module_idx, row, selection_guess),
            ));
        }
    }
    units
}

/// Merges phase-2 rows back into per-module results in stable
/// (module, selection) order.
fn merge_discovery(
    specs: &[ModuleSpec],
    selections: Vec<Vec<(u32, u32)>>,
    rows: Vec<Option<DiscoveryRowResult>>,
) -> Vec<DiscoveryResult> {
    let mut rows = rows.into_iter();
    specs
        .iter()
        .zip(selections)
        .map(|(spec, selected)| DiscoveryResult {
            module: spec.name.clone(),
            rows: selected.iter().filter_map(|_| rows.next().flatten()).collect(),
        })
        .collect()
}

/// Stashes a row's observation stream and fires the commit plumbing —
/// the [`Event::CheckpointCommitted`] event and the
/// [`crate::checkpoint::UnitHooks::after_commit`] hook — so observers
/// and fault plans count stash commits like unit commits.
fn stash_row_state(
    ckpt: &Checkpoint,
    opts: &RunOptions<'_>,
    key: &UnitKey,
    observations: &[Option<u32>],
) {
    let state = DiscoveryRowState { observations: observations.to_vec() };
    let commit_started = std::time::Instant::now();
    ckpt.stash(key, &state).expect("checkpoint stash write failed");
    opts.observer_ref().on_event(&Event::CheckpointCommitted {
        key: key.clone(),
        latency_ns: commit_started.elapsed().as_nanos() as u64,
    });
    if let Some(hooks) = opts.hooks_ref() {
        hooks.after_commit(key);
    }
}

/// One discovery unit: bound one row's reliable RDT with the sequential
/// stopping rule. Returns `None` when the row never flips within range
/// (no guess) or every epoch before stopping was censored — and also,
/// vacuously, when the unit is interrupted mid-row (the executor then
/// discards the value and reports the unit skipped).
#[allow(clippy::too_many_arguments)]
fn discover_row(
    spec: &ModuleSpec,
    cfg: &DiscoveryConfig,
    rule: &StoppingRule,
    row: u32,
    selection_guess: u32,
    search: SearchStrategy,
    eval: EvalStrategy,
    ctx: &UnitCtx<'_>,
    opts: &RunOptions<'_>,
) -> Option<DiscoveryRowResult> {
    let mut platform =
        TestPlatform::for_module_with_row_bytes(spec.clone(), cfg.seed, cfg.row_bytes);
    platform.reseed_dynamics(ctx.seed);
    platform.set_temperature_c(cfg.conditions.temperature_c);
    let guess = guess_rdt(&mut platform, 0, row, &cfg.conditions, FIND_VICTIM_CUTOFF * 8)?;
    let sweep = SweepSpec::from_guess(guess);

    let ckpt = opts.checkpoint_ref();
    let stash_key = UnitKey::cell(&spec.name, row, DISCOVERY_STATE_CONDITION);
    let mut observations: Vec<Option<u32>> = Vec::new();
    let mut state = SequentialMin::new();
    if let Some(ckpt) = ckpt {
        match ckpt.stashed::<DiscoveryRowState>(&stash_key) {
            Ok(Some(stash)) => {
                // Fast-forward: each measured value is a pure function
                // of (dynamics seed, epoch), so replaying an already
                // observed epoch only needs the epoch counter advanced.
                for &observed in &stash.observations {
                    platform.begin_measurement();
                    state.observe(observed);
                }
                observations = stash.observations;
            }
            Ok(None) => {}
            Err(e) => panic!("discovery stash for {}/{row} does not decode: {e}", spec.name),
        }
    }

    let mut stashed_len = observations.len();
    while !rule.should_stop(&state) {
        if ctx.is_cancelled() {
            if let Some(ckpt) = ckpt {
                if observations.len() > stashed_len {
                    stash_row_state(ckpt, opts, &stash_key, &observations);
                }
            }
            ctx.interrupt();
            return None;
        }
        let value =
            measure_rdt_once_using(&mut platform, 0, row, &cfg.conditions, &sweep, search, eval);
        state.observe(value);
        observations.push(value);
        if let Some(ckpt) = ckpt {
            // No stash once the rule is satisfied: the final commit is
            // the unit's own journal record.
            if cfg.stash_every > 0
                && (observations.len() - stashed_len) >= cfg.stash_every as usize
                && !rule.should_stop(&state)
            {
                stash_row_state(ckpt, opts, &stash_key, &observations);
                stashed_len = observations.len();
            }
        }
    }

    ctx.record_hammer_sessions(platform.hammer_sessions());
    ctx.record_measurement_epochs(platform.measurement_epochs());
    ctx.record_sim_time_ns(platform.elapsed_ns());
    ctx.record_sim_energy_j(platform.energy_j());

    let values: Vec<u32> = observations.iter().flatten().copied().collect();
    let censored = (observations.len() - values.len()) as u32;
    ctx.record_flips(values.len() as u64);
    let series = RdtSeries::new(values, censored);
    let min_observed = series.min()?;
    let epochs_used = state.epochs() as u32;
    let stopped_early = epochs_used < rule.max_epochs();
    let bound = (f64::from(min_observed) * (1.0 - cfg.guardband)).floor() as u32;

    let sample = series.to_f64();
    let ks_split_p = if sample.len() >= 16 {
        let (early, late) = sample.split_at(sample.len() / 2);
        ks_test_two_sample(early, late).ok().map(|r| r.p_value)
    } else {
        None
    };
    let chi_square_p = chi_square_gof_normal(&sample, None).ok().map(|r| r.p_value);

    opts.observer_ref().on_event(&Event::DiscoveryStopped {
        key: ctx.key.clone(),
        epochs_used,
        bound,
        confidence: rule.confidence(),
    });

    Some(DiscoveryRowResult {
        row,
        selection_guess,
        rdt_guess: guess,
        bound,
        min_observed,
        epochs_used,
        stopped_early,
        confidence: rule.confidence(),
        series,
        ks_split_p,
        chi_square_p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use crate::obs::MemorySink;

    #[test]
    fn quick_discovery_bounds_every_row() {
        let spec = ModuleSpec::by_name("M1").unwrap();
        let cfg = DiscoveryConfig::quick();
        let result = run_discovery(&spec, &cfg);
        assert_eq!(result.module, "M1");
        assert!(!result.rows.is_empty(), "selection must find vulnerable rows");
        for row in &result.rows {
            assert!(row.epochs_used >= cfg.min_epochs);
            assert!(row.epochs_used <= cfg.max_epochs);
            assert!(row.bound <= row.min_observed, "guardband derates the bound");
            assert_eq!(row.confidence, cfg.confidence);
            assert_eq!(row.series.len() + row.series.censored() as usize, row.epochs_used as usize);
        }
    }

    #[test]
    fn discovery_is_thread_invariant() {
        let spec = ModuleSpec::by_name("H3").unwrap();
        let cfg = DiscoveryConfig::quick();
        let serial = run_discovery(&spec, &cfg);
        let parallel = discovery_campaign(
            std::slice::from_ref(&spec),
            &cfg,
            &RunOptions::new(ExecConfig::new(4, cfg.seed)),
        )
        .unwrap();
        assert_eq!(parallel.len(), 1);
        assert_eq!(serial, parallel[0], "thread count must not change the results");
    }

    #[test]
    fn discovery_emits_stop_events_with_bounds() {
        let spec = ModuleSpec::by_name("M1").unwrap();
        let cfg = DiscoveryConfig::quick();
        let sink = MemorySink::new();
        let results = discovery_campaign(
            std::slice::from_ref(&spec),
            &cfg,
            &RunOptions::new(ExecConfig::serial(cfg.seed)).observer(&sink),
        )
        .unwrap();
        let stops: Vec<(u32, u32, f64)> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::DiscoveryStopped { epochs_used, bound, confidence, .. } => {
                    Some((*epochs_used, *bound, *confidence))
                }
                _ => None,
            })
            .collect();
        assert_eq!(stops.len(), results[0].rows.len(), "one stop event per bounded row");
        for ((epochs, bound, confidence), row) in stops.iter().zip(&results[0].rows) {
            assert_eq!(*epochs, row.epochs_used);
            assert_eq!(*bound, row.bound);
            assert_eq!(*confidence, row.confidence);
        }
    }

    #[test]
    fn discovery_saves_epochs_vs_ceiling() {
        let spec = ModuleSpec::by_name("M1").unwrap();
        let cfg = DiscoveryConfig::quick();
        let result = run_discovery(&spec, &cfg);
        assert!(
            result.rows.iter().any(|r| r.stopped_early),
            "the quiet-streak rule must fire before the ceiling on typical rows"
        );
    }

    #[test]
    #[should_panic(expected = "stopping-rule")]
    fn builder_rejects_invalid_confidence() {
        DiscoveryConfig::builder().confidence(1.5).build();
    }

    #[test]
    #[should_panic(expected = "guardband")]
    fn builder_rejects_invalid_guardband() {
        DiscoveryConfig::builder().guardband(1.0).build();
    }
}
