//! Deterministic fair-share scheduling for multi-tenant campaign
//! services.
//!
//! The fleet service (`vrd-exp serve`) runs many tenants' campaign
//! submissions against one shared worker pool. This module supplies the
//! scheduling brain as a **pure state machine**: every externally
//! visible decision is a function of `(service_seed, op log)`, where
//! the op log is the ordered sequence of [`SchedOp`]s the scheduler has
//! applied — submissions, cancellations, and dispatching polls. The
//! service journals that log; replaying it through [`replay`]
//! reproduces the identical dispatch trace, which is what makes a
//! multi-tenant service testable byte-for-byte, the same discipline the
//! executor ([`crate::exec`]) imposes on single campaigns.
//!
//! # Policy
//!
//! Cross-tenant fairness is stride scheduling with equal tenant
//! weights: each tenant carries a *pass* value, the tenant with the
//! minimum pass is served next, and a dispatch advances the tenant's
//! pass by [`STRIDE`]. A tenant (re)joining the backlog starts at the
//! current *global pass* (the pass of the most recent dispatch), so an
//! idle tenant cannot hoard credit and then monopolize the pool.
//! Within one tenant, queued jobs dispatch by (priority descending,
//! submission order ascending) — [`Priority`] buys a tenant's own jobs
//! reordering, never a larger share of the pool, so no tenant can
//! starve another by shouting.
//!
//! Two invariants follow (pinned by `tests/scheduler_fairness.rs`):
//!
//! - **Bounded wait**: every backlogged tenant's pass stays within one
//!   [`STRIDE`] of the global pass, so between two consecutive
//!   dispatches of a continuously backlogged tenant, any other tenant
//!   is dispatched at most twice.
//! - **Purity**: ties on pass break by an FNV hash of
//!   `(service_seed, tenant)`, never by map iteration order or clock,
//!   so the same seed and op log always yield the same trace.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Pass increment per dispatch. The exact value is irrelevant to the
/// policy (only pass *differences* matter); it is large so integer
/// division would have headroom if weighted strides were ever added.
pub const STRIDE: u64 = 1 << 20;

/// Within-tenant dispatch priority of a submitted job. Priority orders
/// a tenant's own queue; it deliberately does not change the tenant's
/// cross-tenant share (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum Priority {
    /// Behind every queued normal/high job of the same tenant.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Ahead of every queued normal/low job of the same tenant.
    High,
}

impl std::str::FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown priority {other:?} (expected low|normal|high)")),
        }
    }
}

/// One entry of the scheduler's op log. The log is the *complete*
/// input: applying the same ops to a fresh scheduler with the same
/// seed reproduces every decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedOp {
    /// A tenant submitted a job.
    Submit {
        /// Service-wide unique job id.
        job: String,
        /// Submitting tenant.
        tenant: String,
        /// Within-tenant priority.
        priority: Priority,
    },
    /// A queued job was cancelled before dispatch. (Cancelling a
    /// *running* job never reaches the scheduler — the job already left
    /// the queue.)
    Cancel {
        /// The cancelled job.
        job: String,
    },
    /// A worker polled and the scheduler dispatched a job. Polls that
    /// found the queue empty are not logged: they do not change state.
    Poll,
}

/// Why a scheduler operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// A submitted job id is already known (queued, dispatched, or
    /// cancelled) — ids are never reused.
    DuplicateJob(String),
    /// A cancel named a job that is not currently queued.
    NotQueued(String),
    /// A replayed [`SchedOp::Poll`] found nothing to dispatch: the log
    /// is inconsistent with the ops before it.
    EmptyPoll,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::DuplicateJob(job) => write!(f, "job id {job:?} already submitted"),
            SchedError::NotQueued(job) => write!(f, "job {job:?} is not queued"),
            SchedError::EmptyPoll => write!(f, "replayed poll found an empty queue"),
        }
    }
}

impl std::error::Error for SchedError {}

/// A queued job awaiting dispatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedJob {
    /// Job id.
    pub job: String,
    /// Owning tenant.
    pub tenant: String,
    /// Within-tenant priority.
    pub priority: Priority,
    /// Global submission sequence number (0-based).
    pub seq: u64,
}

#[derive(Debug, Clone)]
struct TenantState {
    pass: u64,
    queue: Vec<QueuedJob>,
}

/// The deterministic fair-share scheduler. See the module docs for the
/// policy; see [`replay`] for the purity contract.
#[derive(Debug, Clone)]
pub struct FairShareScheduler {
    service_seed: u64,
    seq: u64,
    /// `BTreeMap` (not `HashMap`) so scans are deterministic even
    /// where the tie-break hash is not consulted.
    tenants: BTreeMap<String, TenantState>,
    /// Every job id ever submitted (dispatch and cancel consume queue
    /// entries but ids stay reserved forever).
    known: std::collections::HashSet<String>,
    /// Pass value of the most recent dispatch — the join floor.
    global_pass: u64,
    log: Vec<SchedOp>,
    dispatched: Vec<String>,
}

/// FNV-1a tie-break: stable per `(seed, tenant)`, uncorrelated with
/// submission order.
fn tenant_tiebreak(seed: u64, tenant: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ seed;
    for b in tenant.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

impl FairShareScheduler {
    /// An empty scheduler. `service_seed` only influences tie-breaks
    /// between tenants with equal pass values.
    pub fn new(service_seed: u64) -> Self {
        FairShareScheduler {
            service_seed,
            seq: 0,
            tenants: BTreeMap::new(),
            known: std::collections::HashSet::new(),
            global_pass: 0,
            log: Vec::new(),
            dispatched: Vec::new(),
        }
    }

    /// The service seed.
    pub fn service_seed(&self) -> u64 {
        self.service_seed
    }

    /// Enqueues a job for `tenant`.
    ///
    /// # Errors
    ///
    /// [`SchedError::DuplicateJob`] when the id was ever submitted
    /// before.
    pub fn submit(
        &mut self,
        job: &str,
        tenant: &str,
        priority: Priority,
    ) -> Result<(), SchedError> {
        if !self.known.insert(job.to_owned()) {
            return Err(SchedError::DuplicateJob(job.to_owned()));
        }
        let entry =
            QueuedJob { job: job.to_owned(), tenant: tenant.to_owned(), priority, seq: self.seq };
        self.seq += 1;
        let global_pass = self.global_pass;
        let state = self
            .tenants
            .entry(tenant.to_owned())
            .or_insert(TenantState { pass: global_pass, queue: Vec::new() });
        if state.queue.is_empty() {
            // (Re)joining the backlog: sync up to the join floor so idle
            // time never accumulates into credit.
            state.pass = state.pass.max(global_pass);
        }
        state.queue.push(entry);
        self.log.push(SchedOp::Submit { job: job.to_owned(), tenant: tenant.to_owned(), priority });
        Ok(())
    }

    /// Removes a still-queued job.
    ///
    /// # Errors
    ///
    /// [`SchedError::NotQueued`] when no queue holds the job (it was
    /// never submitted, already dispatched, or already cancelled).
    pub fn cancel(&mut self, job: &str) -> Result<(), SchedError> {
        for state in self.tenants.values_mut() {
            if let Some(pos) = state.queue.iter().position(|q| q.job == job) {
                state.queue.remove(pos);
                self.log.push(SchedOp::Cancel { job: job.to_owned() });
                return Ok(());
            }
        }
        Err(SchedError::NotQueued(job.to_owned()))
    }

    /// Dispatches the next job, or `None` when every queue is empty.
    /// Selection: minimum `(pass, tiebreak)` tenant, then that tenant's
    /// `(priority desc, seq asc)` front job. The dispatch charges the
    /// tenant one [`STRIDE`] and appends [`SchedOp::Poll`] to the log.
    /// Not an iterator: dispatching mutates the op log and stride state.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<QueuedJob> {
        let tenant = self
            .tenants
            .iter()
            .filter(|(_, s)| !s.queue.is_empty())
            .min_by_key(|(name, s)| (s.pass, tenant_tiebreak(self.service_seed, name)))
            .map(|(name, _)| name.clone())?;
        let state = self.tenants.get_mut(&tenant).expect("tenant exists");
        let pos = (0..state.queue.len())
            .min_by_key(|&i| (std::cmp::Reverse(state.queue[i].priority), state.queue[i].seq))
            .expect("queue non-empty");
        let job = state.queue.remove(pos);
        self.global_pass = state.pass;
        state.pass += STRIDE;
        self.log.push(SchedOp::Poll);
        self.dispatched.push(job.job.clone());
        Some(job)
    }

    /// Queued (not yet dispatched, not cancelled) jobs across all
    /// tenants, in submission order.
    pub fn queued(&self) -> Vec<QueuedJob> {
        let mut all: Vec<QueuedJob> =
            self.tenants.values().flat_map(|s| s.queue.iter().cloned()).collect();
        all.sort_by_key(|q| q.seq);
        all
    }

    /// Total queued jobs.
    pub fn pending(&self) -> usize {
        self.tenants.values().map(|s| s.queue.len()).sum()
    }

    /// The op log applied so far (the scheduler's complete input).
    pub fn ops(&self) -> &[SchedOp] {
        &self.log
    }

    /// Job ids in dispatch order (the scheduler's complete output).
    pub fn dispatch_trace(&self) -> &[String] {
        &self.dispatched
    }

    /// Applies one logged op, without validating business rules beyond
    /// what determinism requires. Used by [`replay`] and by service
    /// restart recovery.
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError`] when the op is inconsistent with the
    /// ops before it (a corrupted or foreign log).
    pub fn apply(&mut self, op: &SchedOp) -> Result<(), SchedError> {
        match op {
            SchedOp::Submit { job, tenant, priority } => self.submit(job, tenant, *priority),
            SchedOp::Cancel { job } => self.cancel(job),
            SchedOp::Poll => match self.next() {
                Some(_) => {
                    // `next` pushed its own Poll; nothing else to do.
                    Ok(())
                }
                None => Err(SchedError::EmptyPoll),
            },
        }
    }
}

/// Rebuilds a scheduler from `(service_seed, ops)`. The returned
/// scheduler's [`dispatch_trace`](FairShareScheduler::dispatch_trace)
/// is identical to the one that produced `ops` — scheduling decisions
/// are a pure function of the seed and the log, which the fairness
/// property suite replays to prove.
///
/// # Errors
///
/// Propagates the first [`SchedError`] when the log is internally
/// inconsistent (duplicate submit, cancel of an unqueued job, or a
/// poll that finds nothing).
pub fn replay(service_seed: u64, ops: &[SchedOp]) -> Result<FairShareScheduler, SchedError> {
    let mut sched = FairShareScheduler::new(service_seed);
    for op in ops {
        sched.apply(op)?;
    }
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sched: &mut FairShareScheduler) -> Vec<String> {
        std::iter::from_fn(|| sched.next().map(|q| q.job)).collect()
    }

    #[test]
    fn single_tenant_dispatches_by_priority_then_seq() {
        let mut s = FairShareScheduler::new(1);
        s.submit("a", "t", Priority::Normal).unwrap();
        s.submit("b", "t", Priority::High).unwrap();
        s.submit("c", "t", Priority::Low).unwrap();
        s.submit("d", "t", Priority::High).unwrap();
        assert_eq!(drain(&mut s), ["b", "d", "a", "c"]);
    }

    #[test]
    fn two_backlogged_tenants_alternate() {
        let mut s = FairShareScheduler::new(7);
        for i in 0..4 {
            s.submit(&format!("a{i}"), "alice", Priority::Normal).unwrap();
            s.submit(&format!("b{i}"), "bob", Priority::Normal).unwrap();
        }
        let order = drain(&mut s);
        // Strict alternation after the tie-broken first pick.
        for pair in order.chunks(2) {
            let tenants: std::collections::BTreeSet<char> =
                pair.iter().map(|j| j.chars().next().unwrap()).collect();
            assert_eq!(tenants.len(), 2, "each stride round serves both tenants: {order:?}");
        }
    }

    #[test]
    fn rejoining_tenant_gets_no_idle_credit() {
        let mut s = FairShareScheduler::new(3);
        // alice idles while bob consumes the pool.
        for i in 0..8 {
            s.submit(&format!("b{i}"), "bob", Priority::Normal).unwrap();
        }
        for _ in 0..8 {
            s.next().unwrap();
        }
        // alice joins late: she must not receive 8 back-to-back slots.
        for i in 0..4 {
            s.submit(&format!("a{i}"), "alice", Priority::Normal).unwrap();
            s.submit(&format!("c{i}"), "bob", Priority::Normal).unwrap();
        }
        let order = drain(&mut s);
        let alice_burst = order.iter().take_while(|j| j.starts_with('a')).count();
        assert!(alice_burst <= 2, "late joiner must not monopolize the pool: {order:?}");
    }

    #[test]
    fn duplicate_and_missing_ids_are_rejected() {
        let mut s = FairShareScheduler::new(0);
        s.submit("x", "t", Priority::Normal).unwrap();
        assert_eq!(s.submit("x", "t", Priority::Normal), Err(SchedError::DuplicateJob("x".into())));
        s.next().unwrap();
        // Dispatched jobs are no longer cancellable here, and their ids
        // stay reserved.
        assert_eq!(s.cancel("x"), Err(SchedError::NotQueued("x".into())));
        assert_eq!(s.submit("x", "t", Priority::Normal), Err(SchedError::DuplicateJob("x".into())));
    }

    #[test]
    fn cancel_removes_only_the_named_job() {
        let mut s = FairShareScheduler::new(0);
        s.submit("a", "t", Priority::Normal).unwrap();
        s.submit("b", "t", Priority::Normal).unwrap();
        s.cancel("a").unwrap();
        assert_eq!(drain(&mut s), ["b"]);
    }

    #[test]
    fn replay_reproduces_the_dispatch_trace() {
        let mut s = FairShareScheduler::new(42);
        s.submit("a0", "alice", Priority::Normal).unwrap();
        s.submit("b0", "bob", Priority::High).unwrap();
        s.next().unwrap();
        s.submit("a1", "alice", Priority::Low).unwrap();
        s.cancel("a0").unwrap_or(());
        s.next().unwrap();
        s.submit("c0", "carol", Priority::Normal).unwrap();
        let _ = drain(&mut s);

        let replayed = replay(42, s.ops()).unwrap();
        assert_eq!(replayed.dispatch_trace(), s.dispatch_trace());
        assert_eq!(replayed.ops(), s.ops());
    }

    #[test]
    fn seed_changes_tie_breaks_only() {
        let submit_all = |seed: u64| {
            let mut s = FairShareScheduler::new(seed);
            for t in ["alice", "bob", "carol"] {
                for i in 0..2 {
                    s.submit(&format!("{t}{i}"), t, Priority::Normal).unwrap();
                }
            }
            drain(&mut s)
        };
        let a = submit_all(1);
        let b = submit_all(1);
        assert_eq!(a, b, "same seed, same trace");
        // Different seeds may reorder ties but dispatch the same set.
        let c = submit_all(2);
        let mut sa = a.clone();
        let mut sc = c.clone();
        sa.sort();
        sc.sort();
        assert_eq!(sa, sc);
    }

    #[test]
    fn ops_round_trip_through_json() {
        let ops = vec![
            SchedOp::Submit { job: "j1".into(), tenant: "t".into(), priority: Priority::High },
            SchedOp::Poll,
            SchedOp::Cancel { job: "j1".into() },
        ];
        for op in &ops {
            let json = serde_json::to_string(op).unwrap();
            let back: SchedOp = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, op);
        }
    }

    #[test]
    fn replayed_empty_poll_is_an_error() {
        assert!(matches!(replay(0, &[SchedOp::Poll]), Err(SchedError::EmptyPoll)));
    }
}
