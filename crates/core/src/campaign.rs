//! The measurement campaigns of the paper: foundational (§4, one row per
//! module × 100,000 measurements) and in-depth (§5, 150 rows per module ×
//! 1,000 measurements × the data-pattern / `t_AggOn` / temperature grid).
//!
//! Campaign scale is configurable: the defaults match the paper; tests
//! and quick runs shrink the measurement counts and row ranges.
//!
//! Two execution paths exist:
//!
//! - [`run_foundational`] is the legacy single-module serial entry point,
//!   kept byte-for-byte stable (regression suites pin its output).
//! - [`foundational_campaign`] / [`in_depth_campaign`] shard the work
//!   across the deterministic executor ([`crate::exec`]): every unit
//!   (module, or module × row × condition cell) runs on a fresh platform
//!   whose dynamics RNG is reseeded from the unit's derived seed, so the
//!   campaign output is bit-identical at any thread count. A
//!   [`RunOptions`] value selects the capabilities — progress counters,
//!   event observers, checkpointing, cancellation — that used to be the
//!   `run_X_campaign{,_observed,_checkpointed}` triad (removed after a
//!   deprecation cycle).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use vrd_bender::routines::guess_rdt;
use vrd_bender::TestPlatform;
use vrd_dram::spec::ModuleSpec;
use vrd_dram::TestConditions;

use crate::algorithm::{
    find_victim, test_loop, test_loop_using, EvalStrategy, SearchStrategy, SweepSpec,
    FIND_VICTIM_CUTOFF,
};
use crate::checkpoint::CheckpointError;
use crate::exec::{ExecConfig, ExecReport, Progress, Unit, UnitCtx, UnitKey};
use crate::obs::{CampaignSummary, Event};
use crate::run::{run_units, RunOptions};
use crate::series::RdtSeries;

/// Campaign label of the foundational (§4) campaign, used in events and
/// checkpoint manifests.
pub const FOUNDATIONAL: &str = "foundational";

/// Campaign label of the in-depth (§5) campaign.
pub const IN_DEPTH: &str = "in_depth";

/// Configuration of the §4 foundational campaign.
///
/// `#[non_exhaustive]`: construct via [`FoundationalConfig::default`] or
/// [`FoundationalConfig::builder`], so future fields are not breaking
/// changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct FoundationalConfig {
    /// RDT measurements per victim row (paper: 100,000).
    pub measurements: u32,
    /// Test conditions (paper: Checkered0, min `t_RAS`, 50 °C).
    pub conditions: TestConditions,
    /// Device seed.
    pub seed: u64,
    /// Row size in bytes for the device model (smaller is faster; the
    /// weak-cell physics is size-independent).
    pub row_bytes: u32,
    /// How many rows `find_victim` may scan.
    pub scan_rows: u32,
}

impl Default for FoundationalConfig {
    fn default() -> Self {
        FoundationalConfig {
            measurements: 100_000,
            conditions: TestConditions::foundational(),
            seed: 2025,
            row_bytes: 2048,
            scan_rows: 8192,
        }
    }
}

impl FoundationalConfig {
    /// A builder seeded with the paper defaults.
    pub fn builder() -> FoundationalConfigBuilder {
        FoundationalConfigBuilder { cfg: FoundationalConfig::default() }
    }

    /// A builder seeded with this configuration's values.
    pub fn to_builder(&self) -> FoundationalConfigBuilder {
        FoundationalConfigBuilder { cfg: self.clone() }
    }
}

/// Builder for [`FoundationalConfig`]; obtained from
/// [`FoundationalConfig::builder`].
#[derive(Debug, Clone)]
pub struct FoundationalConfigBuilder {
    cfg: FoundationalConfig,
}

impl FoundationalConfigBuilder {
    /// Sets the RDT measurements per victim row.
    pub fn measurements(mut self, measurements: u32) -> Self {
        self.cfg.measurements = measurements;
        self
    }

    /// Sets the test conditions.
    pub fn conditions(mut self, conditions: TestConditions) -> Self {
        self.cfg.conditions = conditions;
        self
    }

    /// Sets the device seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the device-model row size in bytes.
    pub fn row_bytes(mut self, row_bytes: u32) -> Self {
        self.cfg.row_bytes = row_bytes;
        self
    }

    /// Sets how many rows `find_victim` may scan.
    pub fn scan_rows(mut self, scan_rows: u32) -> Self {
        self.cfg.scan_rows = scan_rows;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> FoundationalConfig {
        self.cfg
    }
}

/// Result of the foundational campaign for one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoundationalResult {
    /// Module name (paper Table 1).
    pub module: String,
    /// The victim row measured.
    pub row: u32,
    /// The guessed RDT that parameterized the sweep.
    pub rdt_guess: u32,
    /// The measurement series.
    pub series: RdtSeries,
    /// Simulated test time spent (ns).
    pub test_time_ns: f64,
}

/// Runs the foundational campaign (Alg. 1) against one module. Returns
/// `None` if no sufficiently vulnerable row exists in the scanned range.
pub fn run_foundational(spec: &ModuleSpec, cfg: &FoundationalConfig) -> Option<FoundationalResult> {
    let mut platform =
        TestPlatform::for_module_with_row_bytes(spec.clone(), cfg.seed, cfg.row_bytes);
    platform.set_temperature_c(cfg.conditions.temperature_c);
    let (row, guess) =
        find_victim(&mut platform, 0, &cfg.conditions, FIND_VICTIM_CUTOFF, 2..cfg.scan_rows)?;
    let sweep = SweepSpec::from_guess(guess);
    let series = test_loop(&mut platform, 0, row, &cfg.conditions, cfg.measurements, &sweep);
    Some(FoundationalResult {
        module: spec.name.clone(),
        row,
        rdt_guess: guess,
        series,
        test_time_ns: platform.elapsed_ns(),
    })
}

/// Runs the foundational campaign across a fleet of modules on the
/// deterministic executor, under [`RunOptions`]: plain, observed,
/// checkpointed, and cancellable are all configurations of this one
/// entry point.
///
/// Each module is one work unit: a fresh platform built from `cfg.seed`
/// (so the weak-cell layout matches the legacy path) with its dynamics
/// RNG reseeded from the unit's derived seed. Output order follows
/// `specs`; entries are `None` for modules with no vulnerable row in
/// the scanned range.
///
/// Emits [`Event::CampaignStarted`] / [`Event::CampaignFinished`]
/// around the run's phase and unit events.
///
/// # Errors
///
/// [`CheckpointError::Interrupted`] when cancellation stopped the run
/// early, plus the checkpoint open/decode errors when `opts` carries a
/// checkpoint. A run without checkpoint or cancellation cannot fail.
pub fn foundational_campaign(
    specs: &[ModuleSpec],
    cfg: &FoundationalConfig,
    opts: &RunOptions<'_>,
) -> Result<Vec<Option<FoundationalResult>>, CheckpointError> {
    let search = opts.exec().search;
    let eval = opts.exec().eval;
    run_campaign_phases(opts, FOUNDATIONAL, |opts| {
        run_units(opts, FOUNDATIONAL, "measure", foundational_units(specs), |ctx, spec| {
            foundational_unit(spec, cfg, search, eval, &ctx)
        })
        .map(ExecReport::into_results)
    })
}

/// Wraps a campaign body with the campaign-level concerns shared by
/// every entry point: a guaranteed [`Progress`] (so the summary has
/// counters even when the caller supplied none), the
/// [`Event::CampaignStarted`] / [`Event::CampaignFinished`] bracket,
/// and the campaign wall-clock measurement.
pub(crate) fn run_campaign_phases<T>(
    opts: &RunOptions<'_>,
    campaign: &str,
    body: impl FnOnce(&RunOptions<'_>) -> Result<T, CheckpointError>,
) -> Result<T, CheckpointError> {
    let own_progress = Progress::new();
    let opts = match opts.has_progress() {
        true => *opts,
        false => opts.progress(&own_progress),
    };
    let observer = opts.observer_ref();
    observer.on_event(&Event::CampaignStarted { campaign: campaign.to_owned() });
    let started = Instant::now();
    let result = body(&opts)?;
    let snap = opts.progress_ref().expect("progress installed above").snapshot();
    observer.on_event(&Event::CampaignFinished {
        campaign: campaign.to_owned(),
        summary: CampaignSummary {
            units_total: snap.units_total,
            units_done: snap.units_done,
            units_panicked: snap.units_panicked,
            bitflips: snap.flips_found,
            sim_time_ns: snap.sim_time_ns,
            sim_energy_j: snap.sim_energy_j,
            wall_ns: started.elapsed().as_nanos() as u64,
        },
    });
    Ok(result)
}

/// One unit per module, keyed by module name.
fn foundational_units(specs: &[ModuleSpec]) -> Vec<Unit<ModuleSpec>> {
    specs.iter().map(|s| Unit::new(UnitKey::module(&s.name), s.clone())).collect()
}

/// One foundational work unit: Alg. 1 against one module on a fresh,
/// unit-seeded platform.
fn foundational_unit(
    spec: &ModuleSpec,
    cfg: &FoundationalConfig,
    search: SearchStrategy,
    eval: EvalStrategy,
    ctx: &UnitCtx<'_>,
) -> Option<FoundationalResult> {
    let mut platform =
        TestPlatform::for_module_with_row_bytes(spec.clone(), cfg.seed, cfg.row_bytes);
    platform.reseed_dynamics(ctx.seed);
    platform.set_temperature_c(cfg.conditions.temperature_c);
    let (row, guess) =
        find_victim(&mut platform, 0, &cfg.conditions, FIND_VICTIM_CUTOFF, 2..cfg.scan_rows)?;
    let sweep = SweepSpec::from_guess(guess);
    let series = test_loop_using(
        &mut platform,
        0,
        row,
        &cfg.conditions,
        cfg.measurements,
        &sweep,
        search,
        eval,
    );
    ctx.record_flips(series.len() as u64);
    ctx.record_hammer_sessions(platform.hammer_sessions());
    ctx.record_measurement_epochs(platform.measurement_epochs());
    ctx.record_sim_time_ns(platform.elapsed_ns());
    ctx.record_sim_energy_j(platform.energy_j());
    Some(FoundationalResult {
        module: spec.name.clone(),
        row,
        rdt_guess: guess,
        series,
        test_time_ns: platform.elapsed_ns(),
    })
}

/// Configuration of the §5 in-depth campaign.
///
/// `#[non_exhaustive]`: construct via [`InDepthConfig::default`],
/// [`InDepthConfig::quick`], or [`InDepthConfig::builder`], so future
/// fields are not breaking changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct InDepthConfig {
    /// RDT measurements per row per condition (paper: 1,000).
    pub measurements: u32,
    /// Rows scanned per segment (paper: the first/middle/last 1,024).
    pub segment_rows: u32,
    /// Rows selected per segment (paper: the 50 with smallest mean RDT).
    pub picks_per_segment: usize,
    /// The test-condition grid (paper: 4 patterns × 3 on-times × 3
    /// temperatures).
    pub conditions: Vec<TestConditions>,
    /// Device seed.
    pub seed: u64,
    /// Row size in bytes for the device model.
    pub row_bytes: u32,
}

impl Default for InDepthConfig {
    fn default() -> Self {
        InDepthConfig {
            measurements: 1_000,
            segment_rows: 1_024,
            picks_per_segment: 50,
            conditions: TestConditions::full_grid(),
            seed: 5025,
            row_bytes: 2048,
        }
    }
}

impl InDepthConfig {
    /// A reduced configuration for tests and quick runs.
    pub fn quick() -> Self {
        InDepthConfig {
            measurements: 60,
            segment_rows: 96,
            picks_per_segment: 4,
            conditions: vec![TestConditions::foundational()],
            seed: 5025,
            row_bytes: 512,
        }
    }

    /// A builder seeded with the paper defaults.
    pub fn builder() -> InDepthConfigBuilder {
        InDepthConfigBuilder { cfg: InDepthConfig::default() }
    }

    /// A builder seeded with this configuration's values.
    pub fn to_builder(&self) -> InDepthConfigBuilder {
        InDepthConfigBuilder { cfg: self.clone() }
    }
}

/// Builder for [`InDepthConfig`]; obtained from
/// [`InDepthConfig::builder`] or [`InDepthConfig::to_builder`].
#[derive(Debug, Clone)]
pub struct InDepthConfigBuilder {
    cfg: InDepthConfig,
}

impl InDepthConfigBuilder {
    /// Sets the RDT measurements per row per condition.
    pub fn measurements(mut self, measurements: u32) -> Self {
        self.cfg.measurements = measurements;
        self
    }

    /// Sets the rows scanned per segment.
    pub fn segment_rows(mut self, segment_rows: u32) -> Self {
        self.cfg.segment_rows = segment_rows;
        self
    }

    /// Sets the rows selected per segment.
    pub fn picks_per_segment(mut self, picks_per_segment: usize) -> Self {
        self.cfg.picks_per_segment = picks_per_segment;
        self
    }

    /// Sets the test-condition grid.
    pub fn conditions(mut self, conditions: Vec<TestConditions>) -> Self {
        self.cfg.conditions = conditions;
        self
    }

    /// Sets the device seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the device-model row size in bytes.
    pub fn row_bytes(mut self, row_bytes: u32) -> Self {
        self.cfg.row_bytes = row_bytes;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> InDepthConfig {
        self.cfg
    }
}

/// One row's series under one condition combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionSeries {
    /// The test conditions.
    pub conditions: TestConditions,
    /// The guessed RDT parameterizing the sweep under these conditions.
    pub rdt_guess: u32,
    /// The measurement series.
    pub series: RdtSeries,
}

/// All series of one tested row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowResult {
    /// Row address.
    pub row: u32,
    /// Selection-time mean RDT guess.
    pub selection_guess: u32,
    /// One entry per tested condition combination (conditions under
    /// which the row never flipped within range are omitted).
    pub per_condition: Vec<ConditionSeries>,
}

/// In-depth campaign result for one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InDepthResult {
    /// Module name.
    pub module: String,
    /// Per-row results.
    pub rows: Vec<RowResult>,
}

/// Selects test rows per §5: scan the first, middle, and last
/// `segment_rows` rows of the bank, estimate each row's RDT as the mean
/// of `estimates` quick measurements, and keep the `picks` smallest per
/// segment. Returns `(row, mean_guess)` pairs.
pub fn select_rows(
    platform: &mut TestPlatform,
    bank: usize,
    conditions: &TestConditions,
    segment_rows: u32,
    picks: usize,
    estimates: u32,
) -> Vec<(u32, u32)> {
    let total_rows = platform.device().config().rows_per_bank();
    let seg = segment_rows.min(total_rows / 3);
    let segments = [
        0..seg,
        (total_rows / 2 - seg / 2)..(total_rows / 2 - seg / 2 + seg),
        (total_rows - seg)..total_rows,
    ];
    let mut selected = Vec::new();
    for range in segments {
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        for row in range {
            if row == 0 || row + 1 >= total_rows {
                continue; // edge rows lack a double-sided neighbor pair
            }
            let mut sum = 0u64;
            let mut count = 0u64;
            for _ in 0..estimates {
                if let Some(g) = guess_rdt(platform, bank, row, conditions, FIND_VICTIM_CUTOFF * 4)
                {
                    sum += u64::from(g);
                    count += 1;
                }
            }
            if let Some(mean) = sum.checked_div(count) {
                candidates.push((row, mean as u32));
            }
        }
        candidates.sort_by_key(|&(_, guess)| guess);
        selected.extend(candidates.into_iter().take(picks));
    }
    selected
}

/// Runs the §5 in-depth campaign against one module, serially. This is
/// the single-threaded instance of [`in_depth_campaign`], so its output
/// is exactly what any parallel run of the same campaign produces.
pub fn run_in_depth(spec: &ModuleSpec, cfg: &InDepthConfig) -> InDepthResult {
    in_depth_campaign(
        std::slice::from_ref(spec),
        cfg,
        &RunOptions::new(ExecConfig::serial(cfg.seed)),
    )
    .expect("plain campaign run cannot fail")
    .pop()
    .expect("one module in, one result out")
}

/// Runs the §5 in-depth campaign across a fleet of modules on the
/// deterministic executor, under [`RunOptions`] (plain, observed,
/// checkpointed, and cancellable are configurations, as in
/// [`foundational_campaign`]), in two phases:
///
/// 1. **Selection** — one unit per module scans the three bank segments
///    and picks the most vulnerable rows (fresh platform per module, so
///    selection is already scheduling-independent).
/// 2. **Measurement** — every (module × row × condition) cell is one
///    unit: a fresh platform reseeded from the cell's derived seed
///    re-guesses the RDT under the cell's conditions and runs the
///    `test_loop` sweep. All cells across all modules share one
///    work-stealing pool, so a module with few vulnerable rows does not
///    idle its threads.
///
/// Output order follows `specs`; within a module, rows follow selection
/// order and conditions follow `cfg.conditions` order, independent of
/// the thread count.
///
/// When `opts` carries a checkpoint, both phases share one journal:
/// selection units are keyed `(module, WHOLE_MODULE, WHOLE_MODULE)` and
/// measurement cells `(module, row, condition)`, so the keys never
/// collide. A resumed campaign restores whatever subset of either phase
/// is journaled and produces output byte-identical to an uninterrupted
/// run. When `opts` carries progress counters or an observer, both
/// phases feed them: selection units first, then every measurement
/// cell, under the phase labels `"select"` and `"measure"`.
///
/// # Errors
///
/// [`CheckpointError::Interrupted`] when cancellation stopped the run
/// early (with a checkpoint, the journal then holds every committed
/// unit), plus checkpoint open/decode errors. A run without checkpoint
/// or cancellation cannot fail.
pub fn in_depth_campaign(
    specs: &[ModuleSpec],
    cfg: &InDepthConfig,
    opts: &RunOptions<'_>,
) -> Result<Vec<InDepthResult>, CheckpointError> {
    let search = opts.exec().search;
    let eval = opts.exec().eval;
    run_campaign_phases(opts, IN_DEPTH, |opts| {
        // Phase 1: per-module row selection.
        let selections: Vec<Vec<(u32, u32)>> =
            run_units(opts, IN_DEPTH, "select", selection_units(specs), |ctx, spec| {
                select_unit(spec, cfg, &ctx)
            })?
            .into_results();

        // Phase 2: one unit per (module × row × condition) cell, all
        // modules in one pool.
        let units = cell_units(specs, cfg, &selections);
        let cells: Vec<Option<ConditionSeries>> =
            run_units(opts, IN_DEPTH, "measure", units, |ctx, &(module_idx, row, conditions)| {
                measure_cell(&specs[module_idx], cfg, row, &conditions, search, eval, &ctx)
            })?
            .into_results();

        Ok(merge_in_depth(specs, selections, cells, cfg.conditions.len()))
    })
}

/// Phase-1 units: one per module, keyed by module name.
fn selection_units(specs: &[ModuleSpec]) -> Vec<Unit<ModuleSpec>> {
    specs.iter().map(|s| Unit::new(UnitKey::module(&s.name), s.clone())).collect()
}

/// One phase-1 unit: segment scan + row selection for one module.
fn select_unit(spec: &ModuleSpec, cfg: &InDepthConfig, ctx: &UnitCtx<'_>) -> Vec<(u32, u32)> {
    select_unit_with(spec, cfg.seed, cfg.row_bytes, cfg.segment_rows, cfg.picks_per_segment, ctx)
}

/// The shared body of a row-selection unit. The discovery campaign
/// calls this with the same parameters as the in-depth campaign so
/// both select identical rows from identical platforms — the anchor of
/// the discovery soundness proof (`tests/discovery_validation.rs`).
pub(crate) fn select_unit_with(
    spec: &ModuleSpec,
    seed: u64,
    row_bytes: u32,
    segment_rows: u32,
    picks_per_segment: usize,
    ctx: &UnitCtx<'_>,
) -> Vec<(u32, u32)> {
    let mut platform = TestPlatform::for_module_with_row_bytes(spec.clone(), seed, row_bytes);
    let selection_conditions = TestConditions::foundational();
    platform.set_temperature_c(selection_conditions.temperature_c);
    let rows =
        select_rows(&mut platform, 0, &selection_conditions, segment_rows, picks_per_segment, 3);
    ctx.record_hammer_sessions(platform.hammer_sessions());
    ctx.record_sim_time_ns(platform.elapsed_ns());
    ctx.record_sim_energy_j(platform.energy_j());
    rows
}

/// Phase-2 units: one per (module × selected row × condition) cell.
fn cell_units(
    specs: &[ModuleSpec],
    cfg: &InDepthConfig,
    selections: &[Vec<(u32, u32)>],
) -> Vec<Unit<(usize, u32, TestConditions)>> {
    let mut units = Vec::new();
    for (module_idx, spec) in specs.iter().enumerate() {
        for &(row, _) in &selections[module_idx] {
            for (condition_idx, conditions) in cfg.conditions.iter().enumerate() {
                units.push(Unit::new(
                    UnitKey::cell(&spec.name, row, condition_idx as u32),
                    (module_idx, row, *conditions),
                ));
            }
        }
    }
    units
}

/// Merges phase-2 cells back into per-module results in stable
/// (module, selection, condition) order.
fn merge_in_depth(
    specs: &[ModuleSpec],
    selections: Vec<Vec<(u32, u32)>>,
    cells: Vec<Option<ConditionSeries>>,
    conditions_per_row: usize,
) -> Vec<InDepthResult> {
    let mut cells = cells.into_iter();
    specs
        .iter()
        .zip(selections)
        .map(|(spec, rows)| InDepthResult {
            module: spec.name.clone(),
            rows: rows
                .into_iter()
                .map(|(row, selection_guess)| RowResult {
                    row,
                    selection_guess,
                    per_condition: cells.by_ref().take(conditions_per_row).flatten().collect(),
                })
                .collect(),
        })
        .collect()
}

/// One in-depth measurement cell: re-guess the RDT under the cell's
/// conditions and sweep, on a fresh platform reseeded from the unit
/// seed. Returns `None` when the row never flips within range under
/// these conditions (such cells are omitted, as in the paper).
fn measure_cell(
    spec: &ModuleSpec,
    cfg: &InDepthConfig,
    row: u32,
    conditions: &TestConditions,
    search: SearchStrategy,
    eval: EvalStrategy,
    ctx: &UnitCtx<'_>,
) -> Option<ConditionSeries> {
    let mut platform =
        TestPlatform::for_module_with_row_bytes(spec.clone(), cfg.seed, cfg.row_bytes);
    platform.reseed_dynamics(ctx.seed);
    platform.set_temperature_c(conditions.temperature_c);
    // Re-guess under these specific conditions: RowPress and temperature
    // shift the testable range substantially.
    let guess = guess_rdt(&mut platform, 0, row, conditions, FIND_VICTIM_CUTOFF * 8)?;
    let sweep = SweepSpec::from_guess(guess);
    let series =
        test_loop_using(&mut platform, 0, row, conditions, cfg.measurements, &sweep, search, eval);
    ctx.record_flips(series.len() as u64);
    ctx.record_hammer_sessions(platform.hammer_sessions());
    ctx.record_measurement_epochs(platform.measurement_epochs());
    ctx.record_sim_time_ns(platform.elapsed_ns());
    ctx.record_sim_energy_j(platform.energy_j());
    if series.is_empty() {
        return None;
    }
    Some(ConditionSeries { conditions: *conditions, rdt_guess: guess, series })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_foundational() -> FoundationalConfig {
        FoundationalConfig {
            measurements: 50,
            row_bytes: 512,
            scan_rows: 3000,
            ..FoundationalConfig::default()
        }
    }

    #[test]
    fn foundational_campaign_measures_one_row() {
        let spec = ModuleSpec::by_name("M1").unwrap();
        let result = run_foundational(&spec, &quick_foundational()).expect("M1 has weak rows");
        assert_eq!(result.module, "M1");
        assert_eq!(result.series.len() + result.series.censored() as usize, 50);
        assert!(result.rdt_guess < FIND_VICTIM_CUTOFF);
        assert!(result.test_time_ns > 0.0);
    }

    #[test]
    fn foundational_series_exhibits_vrd() {
        let spec = ModuleSpec::by_name("M1").unwrap();
        let mut cfg = quick_foundational();
        cfg.measurements = 120;
        let result = run_foundational(&spec, &cfg).unwrap();
        assert!(
            vrd_stats::histogram::unique_count(result.series.values()) > 1,
            "Finding 1: the RDT must change over repeated measurements"
        );
    }

    #[test]
    fn row_selection_picks_vulnerable_rows() {
        let spec = ModuleSpec::by_name("S2").unwrap();
        let mut platform = TestPlatform::for_module_with_row_bytes(spec, 7, 512);
        let conditions = TestConditions::foundational();
        let rows = select_rows(&mut platform, 0, &conditions, 64, 3, 2);
        assert!(!rows.is_empty(), "selection must find vulnerable rows");
        assert!(rows.len() <= 9);
        for &(row, guess) in &rows {
            assert!(row > 0);
            assert!(guess > 0);
        }
        // Rows come from three disjoint segments.
        let total = platform.device().config().rows_per_bank();
        assert!(rows.iter().any(|&(r, _)| r < 64) || rows.iter().any(|&(r, _)| r > total - 65));
    }

    #[test]
    fn in_depth_campaign_produces_series_per_condition() {
        let spec = ModuleSpec::by_name("H3").unwrap();
        let result = run_in_depth(&spec, &InDepthConfig::quick());
        assert_eq!(result.module, "H3");
        assert!(!result.rows.is_empty());
        for row in &result.rows {
            for cs in &row.per_condition {
                assert!(!cs.series.is_empty());
                assert_eq!(cs.conditions, TestConditions::foundational());
            }
        }
    }

    #[test]
    fn in_depth_parallel_equals_serial() {
        let spec = ModuleSpec::by_name("H3").unwrap();
        let cfg = InDepthConfig::quick();
        let serial = run_in_depth(&spec, &cfg);
        let parallel = in_depth_campaign(
            std::slice::from_ref(&spec),
            &cfg,
            &RunOptions::new(ExecConfig::new(4, cfg.seed)),
        )
        .unwrap();
        assert_eq!(parallel.len(), 1);
        assert_eq!(serial, parallel[0], "thread count must not change the results");
    }

    #[test]
    fn foundational_campaign_is_thread_invariant_and_ordered() {
        let specs: Vec<ModuleSpec> =
            ["M1", "S2", "H3"].iter().map(|n| ModuleSpec::by_name(n).unwrap()).collect();
        let cfg = quick_foundational();
        let serial =
            foundational_campaign(&specs, &cfg, &RunOptions::new(ExecConfig::serial(cfg.seed)))
                .unwrap();
        let parallel =
            foundational_campaign(&specs, &cfg, &RunOptions::new(ExecConfig::new(8, cfg.seed)))
                .unwrap();
        assert_eq!(serial, parallel);
        let names: Vec<&str> = serial.iter().flatten().map(|r| r.module.as_str()).collect();
        assert_eq!(names, vec!["M1", "S2", "H3"], "output follows input order");
    }

    #[test]
    fn campaign_progress_spans_both_phases() {
        let spec = ModuleSpec::by_name("H3").unwrap();
        let cfg = InDepthConfig::quick();
        let progress = Progress::new();
        let results = in_depth_campaign(
            std::slice::from_ref(&spec),
            &cfg,
            &RunOptions::new(ExecConfig::new(2, cfg.seed)).progress(&progress),
        )
        .unwrap();
        let snap = progress.snapshot();
        let cells: usize = results[0].rows.len() * cfg.conditions.len();
        assert_eq!(snap.units_total, 1 + cells, "selection unit + every measurement cell");
        assert_eq!(snap.units_done, snap.units_total);
        assert!(snap.flips_found > 0);
        assert!(snap.sim_time_ns > 0.0);
        assert!(snap.sim_energy_j > 0.0, "units must report Appendix-A test energy");
    }

    #[test]
    fn campaign_events_bracket_phases_and_count_units() {
        use crate::obs::{Event, MemorySink};
        let spec = ModuleSpec::by_name("H3").unwrap();
        let cfg = InDepthConfig::quick();
        let sink = MemorySink::new();
        let results = in_depth_campaign(
            std::slice::from_ref(&spec),
            &cfg,
            &RunOptions::new(ExecConfig::new(2, cfg.seed)).observer(&sink),
        )
        .unwrap();
        let events = sink.events();
        assert!(matches!(&events[0], Event::CampaignStarted { campaign } if campaign == IN_DEPTH));
        let phases: Vec<(String, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::PhaseStarted { phase, units, .. } => Some((phase.clone(), *units)),
                _ => None,
            })
            .collect();
        let cells = results[0].rows.len() * cfg.conditions.len();
        assert_eq!(phases, vec![("select".to_owned(), 1), ("measure".to_owned(), cells)]);
        let finished = events.iter().filter(|e| matches!(e, Event::UnitFinished { .. })).count();
        assert_eq!(finished, 1 + cells, "one UnitFinished per unit");
        let Some(Event::CampaignFinished { summary, .. }) = events.last() else {
            panic!("stream must end with CampaignFinished");
        };
        assert_eq!(summary.units_done, 1 + cells);
        assert!(summary.sim_time_ns > 0.0);
        assert!(summary.sim_energy_j > 0.0);
    }

    /// Satellite regression for the batch engine: the scalar and batch
    /// evaluation strategies must report identical results *and*
    /// identical progress counters — hammer sessions and measurement
    /// epochs included.
    #[test]
    fn eval_strategies_report_identical_progress_snapshots() {
        let specs = vec![ModuleSpec::by_name("M1").unwrap()];
        let cfg = quick_foundational();
        let run = |eval| {
            let exec_cfg = ExecConfig::serial(cfg.seed).to_builder().eval(eval).build();
            let progress = Progress::new();
            let results =
                foundational_campaign(&specs, &cfg, &RunOptions::new(exec_cfg).progress(&progress))
                    .unwrap();
            (results, progress.snapshot())
        };
        let (scalar_results, scalar_snap) = run(EvalStrategy::Scalar);
        let (batch_results, batch_snap) = run(EvalStrategy::Batch);
        assert_eq!(scalar_results, batch_results, "campaign output must not depend on eval");
        assert_eq!(scalar_snap, batch_snap, "progress counters must not depend on eval");
        assert_eq!(
            batch_snap.measurement_epochs,
            u64::from(cfg.measurements),
            "one epoch per RDT measurement"
        );
        assert!(batch_snap.hammer_sessions > 0);
    }
}
