//! The measurement campaigns of the paper: foundational (§4, one row per
//! module × 100,000 measurements) and in-depth (§5, 150 rows per module ×
//! 1,000 measurements × the data-pattern / `t_AggOn` / temperature grid).
//!
//! Campaign scale is configurable: the defaults match the paper; tests
//! and quick runs shrink the measurement counts and row ranges.

use serde::{Deserialize, Serialize};

use vrd_bender::routines::guess_rdt;
use vrd_bender::TestPlatform;
use vrd_dram::spec::ModuleSpec;
use vrd_dram::TestConditions;

use crate::algorithm::{find_victim, test_loop, SweepSpec, FIND_VICTIM_CUTOFF};
use crate::series::RdtSeries;

/// Configuration of the §4 foundational campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoundationalConfig {
    /// RDT measurements per victim row (paper: 100,000).
    pub measurements: u32,
    /// Test conditions (paper: Checkered0, min `t_RAS`, 50 °C).
    pub conditions: TestConditions,
    /// Device seed.
    pub seed: u64,
    /// Row size in bytes for the device model (smaller is faster; the
    /// weak-cell physics is size-independent).
    pub row_bytes: u32,
    /// How many rows `find_victim` may scan.
    pub scan_rows: u32,
}

impl Default for FoundationalConfig {
    fn default() -> Self {
        FoundationalConfig {
            measurements: 100_000,
            conditions: TestConditions::foundational(),
            seed: 2025,
            row_bytes: 2048,
            scan_rows: 8192,
        }
    }
}

/// Result of the foundational campaign for one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoundationalResult {
    /// Module name (paper Table 1).
    pub module: String,
    /// The victim row measured.
    pub row: u32,
    /// The guessed RDT that parameterized the sweep.
    pub rdt_guess: u32,
    /// The measurement series.
    pub series: RdtSeries,
    /// Simulated test time spent (ns).
    pub test_time_ns: f64,
}

/// Runs the foundational campaign (Alg. 1) against one module. Returns
/// `None` if no sufficiently vulnerable row exists in the scanned range.
pub fn run_foundational(spec: &ModuleSpec, cfg: &FoundationalConfig) -> Option<FoundationalResult> {
    let mut platform = TestPlatform::for_module_with_row_bytes(spec.clone(), cfg.seed, cfg.row_bytes);
    platform.set_temperature_c(cfg.conditions.temperature_c);
    let (row, guess) =
        find_victim(&mut platform, 0, &cfg.conditions, FIND_VICTIM_CUTOFF, 2..cfg.scan_rows)?;
    let sweep = SweepSpec::from_guess(guess);
    let series = test_loop(&mut platform, 0, row, &cfg.conditions, cfg.measurements, &sweep);
    Some(FoundationalResult {
        module: spec.name.clone(),
        row,
        rdt_guess: guess,
        series,
        test_time_ns: platform.elapsed_ns(),
    })
}

/// Configuration of the §5 in-depth campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InDepthConfig {
    /// RDT measurements per row per condition (paper: 1,000).
    pub measurements: u32,
    /// Rows scanned per segment (paper: the first/middle/last 1,024).
    pub segment_rows: u32,
    /// Rows selected per segment (paper: the 50 with smallest mean RDT).
    pub picks_per_segment: usize,
    /// The test-condition grid (paper: 4 patterns × 3 on-times × 3
    /// temperatures).
    pub conditions: Vec<TestConditions>,
    /// Device seed.
    pub seed: u64,
    /// Row size in bytes for the device model.
    pub row_bytes: u32,
}

impl Default for InDepthConfig {
    fn default() -> Self {
        InDepthConfig {
            measurements: 1_000,
            segment_rows: 1_024,
            picks_per_segment: 50,
            conditions: TestConditions::full_grid(),
            seed: 5025,
            row_bytes: 2048,
        }
    }
}

impl InDepthConfig {
    /// A reduced configuration for tests and quick runs.
    pub fn quick() -> Self {
        InDepthConfig {
            measurements: 60,
            segment_rows: 96,
            picks_per_segment: 4,
            conditions: vec![TestConditions::foundational()],
            seed: 5025,
            row_bytes: 512,
        }
    }
}

/// One row's series under one condition combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionSeries {
    /// The test conditions.
    pub conditions: TestConditions,
    /// The guessed RDT parameterizing the sweep under these conditions.
    pub rdt_guess: u32,
    /// The measurement series.
    pub series: RdtSeries,
}

/// All series of one tested row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowResult {
    /// Row address.
    pub row: u32,
    /// Selection-time mean RDT guess.
    pub selection_guess: u32,
    /// One entry per tested condition combination (conditions under
    /// which the row never flipped within range are omitted).
    pub per_condition: Vec<ConditionSeries>,
}

/// In-depth campaign result for one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InDepthResult {
    /// Module name.
    pub module: String,
    /// Per-row results.
    pub rows: Vec<RowResult>,
}

/// Selects test rows per §5: scan the first, middle, and last
/// `segment_rows` rows of the bank, estimate each row's RDT as the mean
/// of `estimates` quick measurements, and keep the `picks` smallest per
/// segment. Returns `(row, mean_guess)` pairs.
pub fn select_rows(
    platform: &mut TestPlatform,
    bank: usize,
    conditions: &TestConditions,
    segment_rows: u32,
    picks: usize,
    estimates: u32,
) -> Vec<(u32, u32)> {
    let total_rows = platform.device().config().rows_per_bank;
    let seg = segment_rows.min(total_rows / 3);
    let segments = [
        0..seg,
        (total_rows / 2 - seg / 2)..(total_rows / 2 - seg / 2 + seg),
        (total_rows - seg)..total_rows,
    ];
    let mut selected = Vec::new();
    for range in segments {
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        for row in range {
            if row == 0 || row + 1 >= total_rows {
                continue; // edge rows lack a double-sided neighbor pair
            }
            let mut sum = 0u64;
            let mut count = 0u64;
            for _ in 0..estimates {
                if let Some(g) =
                    guess_rdt(platform, bank, row, conditions, FIND_VICTIM_CUTOFF * 4)
                {
                    sum += u64::from(g);
                    count += 1;
                }
            }
            if let Some(mean) = sum.checked_div(count) {
                candidates.push((row, mean as u32));
            }
        }
        candidates.sort_by_key(|&(_, guess)| guess);
        selected.extend(candidates.into_iter().take(picks));
    }
    selected
}

/// Runs the §5 in-depth campaign against one module.
pub fn run_in_depth(spec: &ModuleSpec, cfg: &InDepthConfig) -> InDepthResult {
    let mut platform = TestPlatform::for_module_with_row_bytes(spec.clone(), cfg.seed, cfg.row_bytes);
    let selection_conditions = TestConditions::foundational();
    platform.set_temperature_c(selection_conditions.temperature_c);
    let rows = select_rows(
        &mut platform,
        0,
        &selection_conditions,
        cfg.segment_rows,
        cfg.picks_per_segment,
        3,
    );

    let mut row_results = Vec::with_capacity(rows.len());
    for (row, selection_guess) in rows {
        let mut per_condition = Vec::new();
        for conditions in &cfg.conditions {
            platform.set_temperature_c(conditions.temperature_c);
            // Re-guess under these specific conditions: RowPress and
            // temperature shift the testable range substantially.
            let Some(guess) = guess_rdt(&mut platform, 0, row, conditions, FIND_VICTIM_CUTOFF * 8)
            else {
                continue;
            };
            let sweep = SweepSpec::from_guess(guess);
            let series = test_loop(&mut platform, 0, row, conditions, cfg.measurements, &sweep);
            if !series.is_empty() {
                per_condition.push(ConditionSeries {
                    conditions: *conditions,
                    rdt_guess: guess,
                    series,
                });
            }
        }
        row_results.push(RowResult { row, selection_guess, per_condition });
    }
    InDepthResult { module: spec.name.clone(), rows: row_results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_foundational() -> FoundationalConfig {
        FoundationalConfig {
            measurements: 50,
            row_bytes: 512,
            scan_rows: 3000,
            ..FoundationalConfig::default()
        }
    }

    #[test]
    fn foundational_campaign_measures_one_row() {
        let spec = ModuleSpec::by_name("M1").unwrap();
        let result = run_foundational(&spec, &quick_foundational()).expect("M1 has weak rows");
        assert_eq!(result.module, "M1");
        assert_eq!(result.series.len() + result.series.censored() as usize, 50);
        assert!(result.rdt_guess < FIND_VICTIM_CUTOFF);
        assert!(result.test_time_ns > 0.0);
    }

    #[test]
    fn foundational_series_exhibits_vrd() {
        let spec = ModuleSpec::by_name("M1").unwrap();
        let mut cfg = quick_foundational();
        cfg.measurements = 120;
        let result = run_foundational(&spec, &cfg).unwrap();
        assert!(
            vrd_stats::histogram::unique_count(result.series.values()) > 1,
            "Finding 1: the RDT must change over repeated measurements"
        );
    }

    #[test]
    fn row_selection_picks_vulnerable_rows() {
        let spec = ModuleSpec::by_name("S2").unwrap();
        let mut platform = TestPlatform::for_module_with_row_bytes(spec, 7, 512);
        let conditions = TestConditions::foundational();
        let rows = select_rows(&mut platform, 0, &conditions, 64, 3, 2);
        assert!(!rows.is_empty(), "selection must find vulnerable rows");
        assert!(rows.len() <= 9);
        for &(row, guess) in &rows {
            assert!(row > 0);
            assert!(guess > 0);
        }
        // Rows come from three disjoint segments.
        let total = platform.device().config().rows_per_bank;
        assert!(rows.iter().any(|&(r, _)| r < 64) || rows.iter().any(|&(r, _)| r > total - 65));
    }

    #[test]
    fn in_depth_campaign_produces_series_per_condition() {
        let spec = ModuleSpec::by_name("H3").unwrap();
        let result = run_in_depth(&spec, &InDepthConfig::quick());
        assert_eq!(result.module, "H3");
        assert!(!result.rows.is_empty());
        for row in &result.rows {
            for cs in &row.per_condition {
                assert!(!cs.series.is_empty());
                assert_eq!(cs.conditions, TestConditions::foundational());
            }
        }
    }
}
