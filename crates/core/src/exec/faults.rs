//! Deterministic fault injection for the checkpoint/resume machinery
//! (cfg-gated behind the `fault-injection` feature; test builds only).
//!
//! A [`FaultPlan`] implements [`UnitHooks`] and can:
//!
//! - **kill** a run at the Nth unit-commit boundary — cooperatively
//!   (in-process, via the executor's cancel flag) or hard (simulated
//!   crash via `process::exit`, for CLI-level testing with
//!   `--fail-after-units`);
//! - **panic** specific units by key, exercising the journal's
//!   "panicked units are never journaled" property;
//!
//! and the free functions tamper with journal files the way real
//! crashes do: truncating mid-record and flipping payload bytes.
//!
//! Everything here is deterministic: the kill counter counts *commits*
//! (journal appends), which happen exactly once per executed unit, so
//! "kill after N units" means the journal holds at least N records no
//! matter how the pool scheduled them.

use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::checkpoint::UnitHooks;
use crate::exec::UnitKey;

/// A deterministic fault schedule, applied through [`UnitHooks`].
#[derive(Default)]
pub struct FaultPlan {
    /// Stop the run after this many units have committed.
    kill_after_units: Option<u64>,
    /// When set, the kill is a simulated crash: `process::exit(code)`
    /// instead of cooperative cancellation.
    exit_code: Option<i32>,
    /// Units whose work closure panics instead of running.
    panic_keys: HashSet<UnitKey>,
    /// Called with the committed-unit count right before a simulated
    /// crash exits, so the embedding binary can announce it (library
    /// code prints nothing).
    announce: Option<Box<dyn Fn(u64) + Send + Sync>>,
    committed: AtomicU64,
    cancel: AtomicBool,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("kill_after_units", &self.kill_after_units)
            .field("exit_code", &self.exit_code)
            .field("panic_keys", &self.panic_keys)
            .field("announce", &self.announce.is_some())
            .field("committed", &self.committed)
            .field("cancel", &self.cancel)
            .finish()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (hooks still fire; useful as a
    /// commit counter).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Cancels the run cooperatively once `units` have committed:
    /// in-flight units finish and commit, never-started units come back
    /// as skipped, and the campaign reports
    /// `CheckpointError::Interrupted`.
    pub fn kill_after(units: u64) -> Self {
        FaultPlan { kill_after_units: Some(units), ..FaultPlan::default() }
    }

    /// Simulates a hard crash: exits the whole process with `code` right
    /// after the `units`-th commit is flushed. Only reachable from a
    /// process you own (the experiments CLI under
    /// `--fail-after-units`).
    pub fn exit_after(units: u64, code: i32) -> Self {
        FaultPlan { kill_after_units: Some(units), exit_code: Some(code), ..FaultPlan::default() }
    }

    /// Additionally panics the unit with `key` when it is about to run.
    pub fn panic_on(mut self, key: UnitKey) -> Self {
        self.panic_keys.insert(key);
        self
    }

    /// Installs a callback invoked with the committed-unit count right
    /// before a simulated crash ([`FaultPlan::exit_after`]) exits the
    /// process. The library itself prints nothing; the experiments CLI
    /// uses this to announce the crash on stderr.
    pub fn announce_with(mut self, announce: impl Fn(u64) + Send + Sync + 'static) -> Self {
        self.announce = Some(Box::new(announce));
        self
    }

    /// How many units have committed so far.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::SeqCst)
    }

    /// Whether the kill fault has fired.
    pub fn fired(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
}

impl UnitHooks for FaultPlan {
    fn before_unit(&self, key: &UnitKey) {
        if self.panic_keys.contains(key) {
            panic!(
                "fault injection: unit {}/{}/{} ordered to panic",
                key.module, key.row, key.condition
            );
        }
    }

    fn after_commit(&self, _key: &UnitKey) {
        let done = self.committed.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(kill_at) = self.kill_after_units {
            if done >= kill_at {
                if let Some(code) = self.exit_code {
                    // The record is already flushed; this is the "power
                    // cord at the unit boundary" crash.
                    if let Some(announce) = &self.announce {
                        announce(done);
                    }
                    std::process::exit(code);
                }
                self.cancel.store(true, Ordering::SeqCst);
            }
        }
    }

    fn cancel_flag(&self) -> Option<&AtomicBool> {
        Some(&self.cancel)
    }
}

/// Truncates the last `bytes` bytes off a journal file, simulating a
/// torn write (power loss mid-record).
pub fn truncate_tail_bytes(journal: &Path, bytes: u64) -> std::io::Result<()> {
    let len = std::fs::metadata(journal)?.len();
    let file = std::fs::OpenOptions::new().write(true).open(journal)?;
    file.set_len(len.saturating_sub(bytes))
}

/// Flips one byte in the middle of the journal's last record,
/// simulating bit rot / a partially synced sector. The record keeps its
/// shape but fails its checksum.
pub fn corrupt_tail_record(journal: &Path) -> std::io::Result<()> {
    corrupt_record(journal, usize::MAX)
}

/// Flips one byte in the middle of the 0-based `line`-th record (or the
/// last record when `line` is out of range).
pub fn corrupt_record(journal: &Path, line: usize) -> std::io::Result<()> {
    let mut bytes = std::fs::read(journal)?;
    let mut starts: Vec<usize> = vec![0];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < bytes.len() {
            starts.push(i + 1);
        }
    }
    let start = starts[line.min(starts.len() - 1)];
    let end = bytes[start..].iter().position(|&b| b == b'\n').map_or(bytes.len(), |nl| start + nl);
    assert!(end > start, "journal record is empty");
    // Flip a low bit mid-record: ASCII stays ASCII, the newline framing
    // stays intact, and the checksum no longer matches.
    bytes[start + (end - start) / 2] ^= 0x04;
    std::fs::write(journal, bytes)
}
