//! Predictability analysis of an RDT series (paper §4.1).
//!
//! Two instruments, both as in the paper: a Pearson chi-square
//! goodness-of-fit test against the normal distribution fitted to the
//! series (histogram interpretation), and the autocorrelation function
//! compared against white noise (repeating-pattern analysis).

use serde::{Deserialize, Serialize};

use vrd_stats::{acf, chi_square, StatsError};

use crate::series::RdtSeries;

/// Outcome of the §4.1 predictability analysis for one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictabilityReport {
    /// Chi-square p-value of the fitted-normal hypothesis, when the test
    /// applies (`None` for degenerate series).
    pub normality_p_value: Option<f64>,
    /// Whether the fitted-normal hypothesis survives at α = 0.05.
    pub looks_normal: bool,
    /// ACF values at lags `0..=max_lag`.
    pub acf: Vec<f64>,
    /// The white-noise 95% confidence band `±1.96/√n`.
    pub white_noise_bound: f64,
    /// Fraction of lags `1..` whose |ACF| exceeds the band (≈ 0.05 under
    /// the no-repeating-pattern null).
    pub significant_lag_fraction: f64,
}

impl PredictabilityReport {
    /// Whether the series is consistent with "changes randomly and
    /// unpredictably" (Takeaway 1): no repeating pattern beyond what
    /// white noise shows.
    pub fn is_unpredictable(&self) -> bool {
        self.significant_lag_fraction < 0.25
    }
}

/// Runs the §4.1 analysis on `series` with ACF lags up to `max_lag`.
///
/// # Errors
///
/// Returns a [`StatsError`] when the series is too short or degenerate
/// (constant) for either instrument.
pub fn analyze(series: &RdtSeries, max_lag: usize) -> Result<PredictabilityReport, StatsError> {
    let values = series.to_f64();
    let acf_values = acf::autocorrelation(&values, max_lag)?;
    let bound = acf::white_noise_bound(values.len());
    let exceed = acf_values[1..].iter().filter(|r| r.abs() > bound).count();
    let significant = exceed as f64 / max_lag as f64;

    let normality = chi_square::chi_square_gof_normal(&values, None).ok();
    let looks_normal = normality.map(|r| r.accepts_normality(0.05)).unwrap_or(false);
    Ok(PredictabilityReport {
        normality_p_value: normality.map(|r| r.p_value),
        looks_normal,
        acf: acf_values,
        white_noise_bound: bound,
        significant_lag_fraction: significant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_series(n: usize, seed: u64) -> RdtSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<u32> = (0..n)
            .map(|_| {
                let z = vrd_stats::normal::sample_normal(&mut rng, 5_000.0, 120.0);
                z.round().max(1.0) as u32
            })
            .collect();
        RdtSeries::new(values, 0)
    }

    #[test]
    fn white_noise_series_is_unpredictable() {
        let series = noisy_series(5_000, 1);
        let r = analyze(&series, 50).unwrap();
        assert!(r.is_unpredictable(), "fraction {}", r.significant_lag_fraction);
        assert!(r.looks_normal);
        assert!((r.acf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_series_is_predictable() {
        let values: Vec<u32> = (0..2000).map(|i| 5_000 + (i % 8) * 100).collect();
        let series = RdtSeries::new(values, 0);
        let r = analyze(&series, 40).unwrap();
        assert!(!r.is_unpredictable());
        assert!(r.acf[8] > 0.9);
    }

    #[test]
    fn uniform_series_fails_normality() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<u32> = (0..3000).map(|_| rng.gen_range(1000..2000)).collect();
        let series = RdtSeries::new(values, 0);
        let r = analyze(&series, 30).unwrap();
        assert!(!r.looks_normal);
    }

    #[test]
    fn constant_series_errors() {
        let series = RdtSeries::new(vec![100; 500], 0);
        assert!(analyze(&series, 20).is_err());
    }

    #[test]
    fn short_series_errors() {
        let series = RdtSeries::new(vec![1, 2, 3], 0);
        assert!(analyze(&series, 20).is_err());
    }
}
