//! Minimum-RDT subsampling analysis (paper §5.1, Figs. 8–12, 15, 25).
//!
//! The paper treats the 1,000 recorded RDT measurements of a row as the
//! row's RDT population, then asks: with only `N < 1000` measurements,
//! what is the probability of observing the population minimum, and how
//! far above it does the sample minimum sit in expectation? The paper
//! answers by 10,000-iteration Monte-Carlo subsampling; this module
//! implements that *and* the exact combinatorial forms (hypergeometric
//! order statistics), which the tests cross-validate against each other.

use rand::Rng;
use serde::{Deserialize, Serialize};

use vrd_stats::montecarlo::{sample_indices_without_replacement, subsample_min_statistics};

use crate::series::RdtSeries;

/// The measurement counts the paper evaluates (Figs. 8 and 25).
pub const PAPER_N_VALUES: [usize; 6] = [1, 3, 5, 10, 50, 500];

/// The guardband margins the paper evaluates (Fig. 15), as fractions.
pub const PAPER_MARGINS: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.50];

/// Per-row, per-N subsampling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinRdtStats {
    /// Subsample size N.
    pub n: usize,
    /// Probability that N measurements include the population minimum.
    pub p_find_min: f64,
    /// Expected minimum of N measurements, normalized to the population
    /// minimum (the paper's "expected normalized value of the minimum
    /// RDT"; ≥ 1).
    pub expected_normalized_min: f64,
}

/// Exact probability that a uniform without-replacement subsample of size
/// `n` from the series contains the series minimum.
///
/// # Panics
///
/// Panics if the series is empty or `n` is not in `1..=len`.
pub fn exact_p_find_min(series: &RdtSeries, n: usize) -> f64 {
    vrd_stats::montecarlo::exact_min_hit_probability(series.values(), n)
}

/// Exact expected minimum of an `n`-subsample, normalized to the series
/// minimum, via hypergeometric order statistics:
/// `P(min > v) = C(#{x > v}, n) / C(len, n)`.
///
/// # Panics
///
/// Panics if the series is empty or `n` is not in `1..=len`.
pub fn exact_expected_normalized_min(series: &RdtSeries, n: usize) -> f64 {
    let values = series.values();
    assert!(!values.is_empty(), "series must be non-empty");
    let len = values.len();
    assert!(n >= 1 && n <= len, "n must be in 1..=len");
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let global_min = f64::from(sorted[0]);
    // E[min] = Σ_v v · P(min = v) over distinct values.
    // P(min >= sorted[i]) = C(len - i, n) / C(len, n) — the sample must
    // avoid the i smallest entries.
    let tail_prob = |avoid: usize| -> f64 {
        if len - avoid < n {
            return 0.0;
        }
        let mut r = 1.0f64;
        for j in 0..n {
            r *= (len - avoid - j) as f64 / (len - j) as f64;
        }
        r
    };
    let mut expected = 0.0f64;
    let mut i = 0usize;
    while i < len {
        let v = sorted[i];
        let mut j = i;
        while j < len && sorted[j] == v {
            j += 1;
        }
        let p_ge_this = tail_prob(i);
        let p_ge_next = tail_prob(j);
        expected += f64::from(v) * (p_ge_this - p_ge_next);
        i = j;
    }
    expected / global_min
}

/// Monte-Carlo estimate matching the paper's §5.1 procedure: `iterations`
/// uniform subsamples of size `n`.
///
/// # Panics
///
/// Panics if the series is empty, `n` is not in `1..=len`, or
/// `iterations` is zero.
pub fn monte_carlo_stats<R: Rng + ?Sized>(
    rng: &mut R,
    series: &RdtSeries,
    n: usize,
    iterations: usize,
) -> MinRdtStats {
    let (expected_min, p_find) = subsample_min_statistics(rng, series.values(), n, iterations);
    let global_min = f64::from(series.min().expect("non-empty series"));
    MinRdtStats { n, p_find_min: p_find, expected_normalized_min: expected_min / global_min }
}

/// Exact statistics for one `n` (cross-validation target of the Monte
/// Carlo and the fast path for the experiment driver).
pub fn exact_stats(series: &RdtSeries, n: usize) -> MinRdtStats {
    MinRdtStats {
        n,
        p_find_min: exact_p_find_min(series, n),
        expected_normalized_min: exact_expected_normalized_min(series, n),
    }
}

/// Probability that an `n`-subsample's minimum lies within `margin`
/// (fractional) of the series minimum — the paper's Fig. 15 metric — in
/// exact form: `1 − C(#{x > (1+margin)·min}, n) / C(len, n)`.
///
/// # Panics
///
/// Panics if the series is empty, `n` not in `1..=len`, or `margin < 0`.
pub fn exact_p_within_margin(series: &RdtSeries, n: usize, margin: f64) -> f64 {
    assert!(margin >= 0.0, "margin must be non-negative");
    let values = series.values();
    assert!(!values.is_empty(), "series must be non-empty");
    let len = values.len();
    assert!(n >= 1 && n <= len, "n must be in 1..=len");
    let threshold = f64::from(values.iter().copied().min().expect("non-empty")) * (1.0 + margin);
    let above = values.iter().filter(|&&v| f64::from(v) > threshold).count();
    // P(all n sampled values > threshold) = C(above, n) / C(len, n);
    // zero when fewer than n values lie above the threshold.
    let mut r = 1.0f64;
    for j in 0..n {
        if above < j + 1 {
            r = 0.0;
            break;
        }
        r *= (above - j) as f64 / (len - j) as f64;
    }
    1.0 - r
}

/// Monte-Carlo version of [`exact_p_within_margin`], as the paper runs it.
///
/// # Panics
///
/// Same conditions as [`exact_p_within_margin`], plus zero `iterations`.
pub fn monte_carlo_p_within_margin<R: Rng + ?Sized>(
    rng: &mut R,
    series: &RdtSeries,
    n: usize,
    margin: f64,
    iterations: usize,
) -> f64 {
    assert!(iterations > 0, "iterations must be nonzero");
    let values = series.values();
    let threshold = f64::from(series.min().expect("non-empty")) * (1.0 + margin);
    let mut hits = 0usize;
    for _ in 0..iterations {
        let idx = sample_indices_without_replacement(rng, values.len(), n);
        let min = idx.iter().map(|&i| values[i]).min().expect("n > 0");
        if f64::from(min) <= threshold {
            hits += 1;
        }
    }
    hits as f64 / iterations as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn series() -> RdtSeries {
        // 100 values, minimum 900 appearing 3 times.
        let mut v: Vec<u32> = (0..97).map(|i| 1_000 + (i * 13) % 400).collect();
        v.extend([900, 900, 900]);
        RdtSeries::new(v, 0)
    }

    #[test]
    fn exact_p_find_min_full_sample_is_one() {
        let s = series();
        assert_eq!(exact_p_find_min(&s, 100), 1.0);
    }

    #[test]
    fn exact_p_find_min_single_draw() {
        let s = series();
        assert!((exact_p_find_min(&s, 1) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn exact_expected_min_is_at_least_one_and_decreasing() {
        let s = series();
        let mut prev = f64::INFINITY;
        for n in [1, 3, 5, 10, 50, 100] {
            let e = exact_expected_normalized_min(&s, n);
            assert!(e >= 1.0 - 1e-12, "n={n}: {e}");
            assert!(e <= prev + 1e-12, "expected min must shrink with n");
            prev = e;
        }
        assert!((exact_expected_normalized_min(&s, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let s = series();
        let mut rng = StdRng::seed_from_u64(0);
        for n in [1usize, 5, 20] {
            let exact = exact_stats(&s, n);
            let mc = monte_carlo_stats(&mut rng, &s, n, 20_000);
            assert!(
                (exact.p_find_min - mc.p_find_min).abs() < 0.02,
                "n={n}: {} vs {}",
                exact.p_find_min,
                mc.p_find_min
            );
            assert!(
                (exact.expected_normalized_min - mc.expected_normalized_min).abs() < 0.02,
                "n={n}: {} vs {}",
                exact.expected_normalized_min,
                mc.expected_normalized_min
            );
        }
    }

    #[test]
    fn margin_probability_exact_matches_monte_carlo() {
        let s = series();
        let mut rng = StdRng::seed_from_u64(1);
        for &margin in &PAPER_MARGINS {
            for n in [1usize, 10, 50] {
                let exact = exact_p_within_margin(&s, n, margin);
                let mc = monte_carlo_p_within_margin(&mut rng, &s, n, margin, 20_000);
                assert!((exact - mc).abs() < 0.02, "n={n} margin={margin}: {exact} vs {mc}");
            }
        }
    }

    #[test]
    fn margin_probability_grows_with_margin_and_n() {
        let s = series();
        let p_small = exact_p_within_margin(&s, 5, 0.1);
        let p_wide = exact_p_within_margin(&s, 5, 0.5);
        assert!(p_wide >= p_small);
        let p_few = exact_p_within_margin(&s, 1, 0.1);
        let p_many = exact_p_within_margin(&s, 50, 0.1);
        assert!(p_many >= p_few);
    }

    #[test]
    fn margin_zero_equals_find_min_for_unique_min() {
        let s = series();
        // margin 0 keeps only values ≤ min ⇒ same as finding the min.
        assert!((exact_p_within_margin(&s, 7, 0.0) - exact_p_find_min(&s, 7)).abs() < 1e-12);
    }

    #[test]
    fn constant_series_always_finds_min() {
        let s = RdtSeries::new(vec![500; 50], 0);
        assert_eq!(exact_p_find_min(&s, 1), 1.0);
        assert_eq!(exact_expected_normalized_min(&s, 1), 1.0);
        assert_eq!(exact_p_within_margin(&s, 1, 0.1), 1.0);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_N_VALUES, [1, 3, 5, 10, 50, 500]);
        assert_eq!(PAPER_MARGINS.len(), 5);
    }
}
