//! Chipkill-class single-symbol-correcting (SSC) code: a shortened
//! Reed–Solomon code over GF(2⁸) with 18 symbols per codeword (144 bits,
//! 16 data symbols + 2 parity symbols), as in the paper's Table 3.
//!
//! With two parity symbols the code corrects any single-symbol error —
//! one whole DRAM chip's contribution to the codeword, which is what
//! makes it "Chipkill-like" — and, like real SSC, can silently
//! miscorrect multi-symbol errors.

use serde::{Deserialize, Serialize};

use crate::gf256;

/// Symbols per codeword.
pub const CODEWORD_SYMBOLS: usize = 18;

/// Data symbols per codeword.
pub const DATA_SYMBOLS: usize = 16;

/// Outcome of an SSC decode, symbol-level analogue of
/// [`crate::DecodeOutcome`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SscOutcome {
    /// Codeword was clean.
    Clean {
        /// Decoded data symbols.
        data: [u8; DATA_SYMBOLS],
    },
    /// A single symbol was corrected.
    Corrected {
        /// Decoded (corrected) data symbols.
        data: [u8; DATA_SYMBOLS],
        /// Index of the corrected symbol within the codeword.
        symbol: usize,
    },
    /// Inconsistent syndromes: detected, uncorrectable.
    DetectedUncorrectable,
}

impl SscOutcome {
    /// Whether decoded data equals `original` (false also for detected
    /// errors, which return nothing).
    pub fn matches(&self, original: &[u8; DATA_SYMBOLS]) -> bool {
        match self {
            SscOutcome::Clean { data } | SscOutcome::Corrected { data, .. } => data == original,
            SscOutcome::DetectedUncorrectable => false,
        }
    }

    /// Whether data was returned but is wrong (silent data corruption).
    pub fn is_sdc(&self, original: &[u8; DATA_SYMBOLS]) -> bool {
        match self {
            SscOutcome::Clean { data } | SscOutcome::Corrected { data, .. } => data != original,
            SscOutcome::DetectedUncorrectable => false,
        }
    }
}

/// The shortened RS(18,16) single-symbol-correcting code.
///
/// # Examples
///
/// ```
/// use vrd_ecc::rs::{Ssc18, SscOutcome};
///
/// let code = Ssc18::new();
/// let data = [7u8; 16];
/// let mut word = code.encode(&data);
/// word[4] ^= 0xFF; // clobber one full symbol (one chip's byte)
/// match code.decode(&word) {
///     SscOutcome::Corrected { data: d, symbol } => {
///         assert_eq!(d, data);
///         assert_eq!(symbol, 4);
///     }
///     other => panic!("single-symbol error must correct, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ssc18;

impl Ssc18 {
    /// Creates the code (stateless).
    pub fn new() -> Self {
        Ssc18
    }

    /// Encodes 16 data symbols into an 18-symbol codeword.
    ///
    /// Layout: `word[0..2]` are parity, `word[2..18]` are the data
    /// symbols. The codeword polynomial is `c(x) = Σ word[j]·x^j` and is
    /// divisible by `g(x) = (x − α⁰)(x − α¹)`.
    pub fn encode(&self, data: &[u8; DATA_SYMBOLS]) -> [u8; CODEWORD_SYMBOLS] {
        // Systematic encoding: m(x)·x² mod g(x) gives the parity.
        // g(x) = x² + g1·x + g0 with g1 = α⁰+α¹ = 3, g0 = α⁰·α¹ = 2.
        let g1 = gf256::add(gf256::alpha_pow(0), gf256::alpha_pow(1));
        let g0 = gf256::mul(gf256::alpha_pow(0), gf256::alpha_pow(1));
        // Long division of m(x)·x² by g(x): process data from the top
        // coefficient down, tracking the 2-symbol remainder.
        let mut r = [0u8; 2]; // r[1]·x + r[0]
        for &m in data.iter().rev() {
            let top = gf256::add(m, r[1]);
            // new remainder = (r[0] − top·g1)·x + (0 − top·g0)
            let new_r1 = gf256::add(r[0], gf256::mul(top, g1));
            let new_r0 = gf256::mul(top, g0);
            r = [new_r0, new_r1];
        }
        let mut word = [0u8; CODEWORD_SYMBOLS];
        word[0] = r[0];
        word[1] = r[1];
        word[2..].copy_from_slice(data);
        word
    }

    /// Computes the two syndromes `S_k = c(α^k)` for k = 0, 1.
    pub fn syndromes(&self, word: &[u8; CODEWORD_SYMBOLS]) -> (u8, u8) {
        let mut s0 = 0u8;
        let mut s1 = 0u8;
        for (j, &c) in word.iter().enumerate() {
            s0 = gf256::add(s0, c);
            s1 = gf256::add(s1, gf256::mul(c, gf256::alpha_pow(j as i32)));
        }
        (s0, s1)
    }

    /// Decodes an 18-symbol codeword, correcting up to one symbol.
    pub fn decode(&self, word: &[u8; CODEWORD_SYMBOLS]) -> SscOutcome {
        let (s0, s1) = self.syndromes(word);
        match (s0, s1) {
            (0, 0) => SscOutcome::Clean { data: extract(word) },
            (0, _) | (_, 0) => {
                // A single error at position j would give S1 = e·α^j ≠ 0
                // and S0 = e ≠ 0; one zero syndrome is inconsistent.
                SscOutcome::DetectedUncorrectable
            }
            (e, s1) => {
                // Single-error hypothesis: location α^j = S1 / S0.
                let loc = gf256::div(s1, e);
                match gf256::log(loc) {
                    Some(j) if (j as usize) < CODEWORD_SYMBOLS => {
                        let mut fixed = *word;
                        fixed[j as usize] = gf256::add(fixed[j as usize], e);
                        SscOutcome::Corrected { data: extract(&fixed), symbol: j as usize }
                    }
                    _ => SscOutcome::DetectedUncorrectable,
                }
            }
        }
    }
}

fn extract(word: &[u8; CODEWORD_SYMBOLS]) -> [u8; DATA_SYMBOLS] {
    let mut data = [0u8; DATA_SYMBOLS];
    data.copy_from_slice(&word[2..]);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> [u8; DATA_SYMBOLS] {
        let mut d = [0u8; DATA_SYMBOLS];
        for (i, v) in d.iter_mut().enumerate() {
            *v = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        d
    }

    #[test]
    fn clean_round_trip() {
        let code = Ssc18::new();
        let data = sample_data();
        let word = code.encode(&data);
        assert_eq!(code.decode(&word), SscOutcome::Clean { data });
    }

    #[test]
    fn codeword_evaluates_to_zero_at_roots() {
        let code = Ssc18::new();
        let word = code.encode(&sample_data());
        assert_eq!(code.syndromes(&word), (0, 0));
    }

    #[test]
    fn every_single_symbol_error_corrects() {
        let code = Ssc18::new();
        let data = sample_data();
        let word = code.encode(&data);
        for sym in 0..CODEWORD_SYMBOLS {
            for err in [0x01u8, 0x80, 0xFF, 0x5A] {
                let mut corrupted = word;
                corrupted[sym] ^= err;
                match code.decode(&corrupted) {
                    SscOutcome::Corrected { data: d, symbol } => {
                        assert_eq!(symbol, sym);
                        assert_eq!(d, data);
                    }
                    other => panic!("symbol {sym} err {err:#x}: got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn multi_bit_within_one_symbol_still_corrects() {
        // The Chipkill property: any garbage from one chip is fixable.
        let code = Ssc18::new();
        let data = sample_data();
        let mut word = code.encode(&data);
        word[9] = !word[9];
        assert!(code.decode(&word).matches(&data));
    }

    #[test]
    fn double_symbol_errors_are_unsafe() {
        // Two-symbol errors either get detected or silently miscorrect —
        // both happen, which is exactly the paper's Table-3 concern.
        let code = Ssc18::new();
        let data = sample_data();
        let word = code.encode(&data);
        let mut sdc = 0;
        let mut detected = 0;
        let mut miscount = 0;
        for a in 0..CODEWORD_SYMBOLS {
            for b in (a + 1)..CODEWORD_SYMBOLS {
                let mut corrupted = word;
                corrupted[a] ^= 0x3C;
                corrupted[b] ^= 0xA5;
                match code.decode(&corrupted) {
                    SscOutcome::DetectedUncorrectable => detected += 1,
                    out if out.is_sdc(&data) => sdc += 1,
                    _ => miscount += 1,
                }
            }
        }
        assert_eq!(miscount, 0, "a double error can never decode to the right data");
        assert!(sdc > 0, "some double errors miscorrect silently");
        assert!(detected + sdc == 18 * 17 / 2);
    }

    #[test]
    fn zero_data_encodes_to_zero() {
        let code = Ssc18::new();
        let word = code.encode(&[0u8; DATA_SYMBOLS]);
        assert_eq!(word, [0u8; CODEWORD_SYMBOLS]);
    }

    #[test]
    fn linearity_of_encoding() {
        let code = Ssc18::new();
        let a = sample_data();
        let mut b = sample_data();
        b.reverse();
        let mut xor = [0u8; DATA_SYMBOLS];
        for i in 0..DATA_SYMBOLS {
            xor[i] = a[i] ^ b[i];
        }
        let wa = code.encode(&a);
        let wb = code.encode(&b);
        let wx = code.encode(&xor);
        for i in 0..CODEWORD_SYMBOLS {
            assert_eq!(wx[i], wa[i] ^ wb[i], "RS encoding must be linear");
        }
    }
}
