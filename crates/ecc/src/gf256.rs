//! GF(2⁸) arithmetic for Reed–Solomon codes.
//!
//! Elements are bytes; multiplication is polynomial multiplication modulo
//! the primitive polynomial `x⁸ + x⁴ + x³ + x² + 1` (0x11D), the standard
//! choice for RS codes. Log/antilog tables are built once at first use.

/// The primitive polynomial 0x11D (x⁸+x⁴+x³+x²+1).
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// The generator element α = 2.
pub const GENERATOR: u8 = 2;

struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        // Duplicate so exp[i + 255] = exp[i]; avoids a mod in mul.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Addition in GF(2⁸) (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(2⁸).
///
/// # Examples
///
/// ```
/// assert_eq!(vrd_ecc::gf256::mul(0, 77), 0);
/// assert_eq!(vrd_ecc::gf256::mul(1, 77), 77);
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse in GF(2⁸).
///
/// # Panics
///
/// Panics if `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no multiplicative inverse");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division `a / b` in GF(2⁸).
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `α^e` for any exponent (reduced mod 255).
#[inline]
pub fn alpha_pow(e: i32) -> u8 {
    let t = tables();
    let e = e.rem_euclid(255) as usize;
    t.exp[e]
}

/// Discrete log base α; `None` for zero.
#[inline]
pub fn log(a: u8) -> Option<u8> {
    if a == 0 {
        None
    } else {
        Some(tables().log[a as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_is_commutative() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn mul_is_associative_on_sample() {
        for a in [3u8, 29, 127, 255] {
            for b in [5u8, 77, 200] {
                for c in [9u8, 180] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity_on_sample() {
        for a in [7u8, 100, 254] {
            for b in [3u8, 50] {
                for c in [21u8, 99] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "inv failed for {a}");
        }
    }

    #[test]
    #[should_panic(expected = "inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }

    #[test]
    fn division_round_trips() {
        for a in [1u8, 17, 230] {
            for b in [1u8, 5, 199] {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    fn alpha_powers_cycle_255() {
        assert_eq!(alpha_pow(0), 1);
        assert_eq!(alpha_pow(1), GENERATOR);
        assert_eq!(alpha_pow(255), 1);
        assert_eq!(alpha_pow(-1), alpha_pow(254));
    }

    #[test]
    fn generator_has_full_order() {
        // α generates all 255 nonzero elements.
        let mut seen = [false; 256];
        let mut count = 0;
        for e in 0..255 {
            let v = alpha_pow(e) as usize;
            assert!(v != 0);
            if !seen[v] {
                seen[v] = true;
                count += 1;
            }
        }
        assert_eq!(count, 255);
    }

    #[test]
    fn log_inverts_alpha_pow() {
        for e in 0..255u8 {
            assert_eq!(log(alpha_pow(i32::from(e))), Some(e));
        }
        assert_eq!(log(0), None);
    }
}
