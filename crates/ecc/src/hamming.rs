//! Hamming(72,64) codes: SEC and SEC-DED.
//!
//! The 72-bit codeword uses the classic extended-Hamming layout: bit
//! positions 1..=71 carry the Hamming code (parity bits at the
//! power-of-two positions 1, 2, 4, …, 64; the 64 data bits fill the
//! rest), and position 0 carries the overall (even) parity that upgrades
//! SEC to SEC-DED.

use serde::{Deserialize, Serialize};

use crate::DecodeOutcome;

/// Number of bits in a codeword.
pub const CODEWORD_BITS: u32 = 72;

/// Number of data bits per codeword.
pub const DATA_BITS: u32 = 64;

/// Positions 1..=71 that are *not* powers of two, in ascending order:
/// these hold the data bits.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..72).filter(|p| !p.is_power_of_two())
}

fn encode_internal(data: u64) -> u128 {
    let mut word: u128 = 0;
    for (i, pos) in data_positions().enumerate() {
        if (data >> i) & 1 == 1 {
            word |= 1u128 << pos;
        }
    }
    // Hamming parity bits: parity at 2^i covers positions with bit i set.
    for i in 0..7u32 {
        let p = 1u32 << i;
        let mut parity = 0u32;
        for pos in 1..72u32 {
            if pos & p != 0 && (word >> pos) & 1 == 1 {
                parity ^= 1;
            }
        }
        if parity == 1 {
            word |= 1u128 << p;
        }
    }
    // Overall parity (even) at position 0.
    if (word.count_ones() % 2) == 1 {
        word |= 1;
    }
    word
}

fn syndrome(word: u128) -> (u32, bool) {
    let mut s = 0u32;
    for pos in 1..72u32 {
        if (word >> pos) & 1 == 1 {
            s ^= pos;
        }
    }
    let parity_odd = word.count_ones() % 2 == 1;
    (s, parity_odd)
}

fn extract(word: u128) -> u64 {
    let mut data = 0u64;
    for (i, pos) in data_positions().enumerate() {
        if (word >> pos) & 1 == 1 {
            data |= 1u64 << i;
        }
    }
    data
}

/// Hamming(72,64) in SEC-DED configuration: corrects any single bit,
/// detects any double bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Secded72;

impl Secded72 {
    /// Creates the code (stateless).
    pub fn new() -> Self {
        Secded72
    }

    /// Encodes 64 data bits into a 72-bit codeword.
    pub fn encode(&self, data: u64) -> u128 {
        encode_internal(data)
    }

    /// Decodes a (possibly corrupted) codeword.
    pub fn decode(&self, word: u128) -> DecodeOutcome {
        let word = word & ((1u128 << 72) - 1);
        let (s, parity_odd) = syndrome(word);
        match (s, parity_odd) {
            (0, false) => DecodeOutcome::Clean { data: extract(word) },
            (0, true) => {
                // The overall-parity bit itself flipped.
                DecodeOutcome::Corrected { data: extract(word), bits_corrected: 1 }
            }
            (s, true) if s < 72 => {
                let fixed = word ^ (1u128 << s);
                DecodeOutcome::Corrected { data: extract(fixed), bits_corrected: 1 }
            }
            // Non-zero syndrome with even parity: an even number (≥2) of
            // bits flipped — detected, uncorrectable.
            _ => DecodeOutcome::DetectedUncorrectable,
        }
    }
}

/// Hamming(72,64) decoded as plain SEC (no double-error detection): any
/// nonzero syndrome is "corrected", so double errors silently miscorrect.
/// This is the SEC row of the paper's Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sec72;

impl Sec72 {
    /// Creates the code (stateless).
    pub fn new() -> Self {
        Sec72
    }

    /// Encodes 64 data bits into a 72-bit codeword (same encoding as
    /// [`Secded72`]).
    pub fn encode(&self, data: u64) -> u128 {
        encode_internal(data)
    }

    /// Decodes, correcting whatever single-bit error the syndrome points
    /// at — without double-error detection.
    pub fn decode(&self, word: u128) -> DecodeOutcome {
        let word = word & ((1u128 << 72) - 1);
        let (s, parity_odd) = syndrome(word);
        if s == 0 {
            if parity_odd {
                return DecodeOutcome::Corrected { data: extract(word), bits_corrected: 1 };
            }
            return DecodeOutcome::Clean { data: extract(word) };
        }
        let fixed = word ^ (1u128 << s);
        DecodeOutcome::Corrected { data: extract(fixed), bits_corrected: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u64; 5] =
        [0, u64::MAX, 0xDEAD_BEEF_0BAD_F00D, 0x0123_4567_89AB_CDEF, 0x8000_0000_0000_0001];

    #[test]
    fn clean_round_trip() {
        let code = Secded72::new();
        for data in SAMPLES {
            let word = code.encode(data);
            assert_eq!(code.decode(word), DecodeOutcome::Clean { data });
        }
    }

    #[test]
    fn codeword_has_even_parity() {
        let code = Secded72::new();
        for data in SAMPLES {
            assert_eq!(code.encode(data).count_ones() % 2, 0);
        }
    }

    #[test]
    fn every_single_error_corrects() {
        let code = Secded72::new();
        let data = 0xDEAD_BEEF_0BAD_F00D;
        let word = code.encode(data);
        for bit in 0..72u32 {
            match code.decode(word ^ (1u128 << bit)) {
                DecodeOutcome::Corrected { data: d, bits_corrected: 1 } => {
                    assert_eq!(d, data, "wrong correction at bit {bit}");
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_error_detects() {
        let code = Secded72::new();
        let word = code.encode(0x0123_4567_89AB_CDEF);
        for a in (0..72u32).step_by(5) {
            for b in 0..72u32 {
                if a == b {
                    continue;
                }
                let corrupted = word ^ (1u128 << a) ^ (1u128 << b);
                assert_eq!(
                    code.decode(corrupted),
                    DecodeOutcome::DetectedUncorrectable,
                    "double error ({a},{b}) must be detected"
                );
            }
        }
    }

    #[test]
    fn triple_errors_may_be_silent() {
        // SEC-DED miscorrects some triple errors: the syndrome of three
        // flips can equal a valid single-bit position.
        let code = Secded72::new();
        let data = 0xABCD_EF01_2345_6789;
        let word = code.encode(data);
        let mut silent = 0;
        let mut detected = 0;
        for a in [1u32, 9, 33] {
            for b in [2u32, 18, 40] {
                for c in [4u32, 27, 55] {
                    let corrupted = word ^ (1u128 << a) ^ (1u128 << b) ^ (1u128 << c);
                    match code.decode(corrupted).classify_against(data) {
                        DecodeOutcome::SilentCorruption { .. } => silent += 1,
                        DecodeOutcome::DetectedUncorrectable => detected += 1,
                        DecodeOutcome::Corrected { .. } | DecodeOutcome::Clean { .. } => {}
                    }
                }
            }
        }
        assert!(silent > 0, "some triple errors must miscorrect");
        let _ = detected;
    }

    #[test]
    fn sec_corrects_singles() {
        let code = Sec72::new();
        let data = 0x1122_3344_5566_7788;
        let word = code.encode(data);
        for bit in 0..72u32 {
            let out = code.decode(word ^ (1u128 << bit)).classify_against(data);
            assert!(
                matches!(out, DecodeOutcome::Corrected { .. }),
                "bit {bit}: SEC must correct, got {out:?}"
            );
        }
    }

    #[test]
    fn sec_miscorrects_doubles_silently() {
        // Without DED, double errors decode to wrong data (SDC) — the
        // paper's Table 3 puts SEC's undetectable rate equal to its
        // uncorrectable rate.
        let code = Sec72::new();
        let data = 0x1122_3344_5566_7788;
        let word = code.encode(data);
        let mut sdc = 0;
        let mut total = 0;
        for a in (0..72u32).step_by(7) {
            for b in (1..72u32).step_by(11) {
                if a == b {
                    continue;
                }
                total += 1;
                let out = code.decode(word ^ (1u128 << a) ^ (1u128 << b)).classify_against(data);
                if out.is_sdc() {
                    sdc += 1;
                }
            }
        }
        assert!(sdc * 2 > total, "most double errors under SEC are silent ({sdc}/{total})");
    }

    #[test]
    fn data_positions_count() {
        assert_eq!(data_positions().count(), 64);
    }
}
