//! Error-correcting-code substrate for the VRD reproduction.
//!
//! The paper (§6.4, Table 3) evaluates whether ECC can absorb the
//! read-disturbance bitflips that slip past a guardbanded read-disturbance
//! threshold. This crate provides real encoders and decoders — not just
//! formulas — for the three code classes the paper considers:
//!
//! - [`hamming`] — Hamming(72,64) in both SEC (single error correction)
//!   and SEC-DED (single error correction, double error detection)
//!   configurations.
//! - [`rs`] — a Chipkill-class single-symbol-correcting (SSC) shortened
//!   Reed–Solomon code over GF(2⁸) with 18 symbols (144 bits) per
//!   codeword, built on [`gf256`].
//! - [`ondie`] — the Hamming(136,128) on-die SEC code the paper's
//!   methodology disables (§3.1), including its error-amplification
//!   hazard on double flips.
//! - [`analysis`] — the analytic binomial error-probability model behind
//!   the paper's Table 3, cross-checked against the real decoders by
//!   this crate's tests.
//!
//! [`DecodeOutcome`] classifies every decode uniformly so campaign code
//! can count corrected / detected / silently-corrupted words the way the
//! paper does.
//!
//! # Examples
//!
//! ```
//! use vrd_ecc::hamming::Secded72;
//! use vrd_ecc::DecodeOutcome;
//!
//! let code = Secded72::new();
//! let word = code.encode(0xDEAD_BEEF_0BAD_F00D);
//! let corrupted = word ^ (1 << 17); // single bitflip
//! match code.decode(corrupted) {
//!     DecodeOutcome::Corrected { data, .. } => assert_eq!(data, 0xDEAD_BEEF_0BAD_F00D),
//!     other => panic!("single error must correct, got {other:?}"),
//! }
//! ```

pub mod analysis;
pub mod gf256;
pub mod hamming;
pub mod ondie;
pub mod rs;

use serde::{Deserialize, Serialize};

/// Uniform classification of a decode attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// The codeword was clean; data extracted unchanged.
    Clean {
        /// The decoded data bits.
        data: u64,
    },
    /// An error was corrected.
    Corrected {
        /// The decoded (corrected) data bits.
        data: u64,
        /// Number of bits the decoder changed.
        bits_corrected: u32,
    },
    /// An uncorrectable error was *detected* (the memory controller would
    /// raise a machine check rather than return bad data).
    DetectedUncorrectable,
    /// The decoder returned data, but it does not match what was encoded —
    /// a silent data corruption. Only test harnesses that know the
    /// original data can produce this variant; see
    /// [`classify_against`](DecodeOutcome::classify_against).
    SilentCorruption {
        /// The wrong data the decoder returned.
        data: u64,
    },
}

impl DecodeOutcome {
    /// Re-labels a decode outcome given knowledge of the originally
    /// encoded data: a `Clean`/`Corrected` result whose data mismatches
    /// the original becomes [`SilentCorruption`](Self::SilentCorruption).
    pub fn classify_against(self, original: u64) -> DecodeOutcome {
        match self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. }
                if data != original =>
            {
                DecodeOutcome::SilentCorruption { data }
            }
            other => other,
        }
    }

    /// Whether the outcome returns (any) data to the host.
    pub fn returns_data(&self) -> bool {
        !matches!(self, DecodeOutcome::DetectedUncorrectable)
    }

    /// Whether the outcome is a silent data corruption.
    pub fn is_sdc(&self) -> bool {
        matches!(self, DecodeOutcome::SilentCorruption { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_against_detects_sdc() {
        let ok = DecodeOutcome::Clean { data: 5 }.classify_against(5);
        assert_eq!(ok, DecodeOutcome::Clean { data: 5 });
        let bad = DecodeOutcome::Clean { data: 6 }.classify_against(5);
        assert!(bad.is_sdc());
        let corrected = DecodeOutcome::Corrected { data: 7, bits_corrected: 1 }.classify_against(5);
        assert!(corrected.is_sdc());
    }

    #[test]
    fn detected_uncorrectable_returns_no_data() {
        assert!(!DecodeOutcome::DetectedUncorrectable.returns_data());
        assert!(DecodeOutcome::Clean { data: 0 }.returns_data());
    }
}
