//! Analytic error-probability model behind the paper's Table 3.
//!
//! Given a raw bit error rate (the paper's worst empirically observed
//! VRD-induced rate is 7.6 × 10⁻⁵ at a 10% RDT guardband), these
//! functions compute the probability of uncorrectable, undetectable, and
//! detectable-uncorrectable errors per codeword for SEC, SEC-DED, and
//! Chipkill-like SSC codes, assuming independent bit errors.

use serde::{Deserialize, Serialize};

/// The paper's worst observed VRD-induced bit error rate (5 bitflips in a
/// 64 Kibit row) at a 10% safety margin.
pub const PAPER_WORST_BER: f64 = 7.6e-5;

/// Binomial probability of exactly `k` successes in `n` trials at
/// per-trial probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k > n`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(k <= n, "k must not exceed n");
    // ln C(n,k) via lgamma-free product form (n is small here).
    let mut ln_c = 0.0f64;
    for i in 0..k {
        ln_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    let ln_p = if k == 0 { 0.0 } else { k as f64 * p.ln() };
    let ln_q = if n == k { 0.0 } else { (n - k) as f64 * (1.0 - p).ln() };
    (ln_c + ln_p + ln_q).exp()
}

/// Probability of at least `k` successes in `n` trials.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k > n`.
pub fn binomial_sf(n: u64, k: u64, p: f64) -> f64 {
    // Sum the complement (cheaper: k is small in our uses).
    let below: f64 = (0..k).map(|i| binomial_pmf(n, i, p)).sum();
    (1.0 - below).max(0.0)
}

/// Per-symbol error probability for `bits`-bit symbols at bit error rate
/// `p`: `1 − (1 − p)^bits`.
pub fn symbol_error_probability(bits: u32, p: f64) -> f64 {
    1.0 - (1.0 - p).powi(bits as i32)
}

/// One row of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRates {
    /// Probability the codeword's error is uncorrectable.
    pub uncorrectable: f64,
    /// Probability the error goes undetected (returns wrong data: SDC).
    pub undetectable: f64,
    /// Probability the error is uncorrectable but detected
    /// (`None` when the code class has no such category).
    pub detectable_uncorrectable: Option<f64>,
}

/// SEC (single error correction, 72-bit codeword): any ≥2-bit error is
/// uncorrectable, and without DED it is also undetected.
pub fn sec72_rates(ber: f64) -> ErrorRates {
    let unc = binomial_sf(72, 2, ber);
    ErrorRates { uncorrectable: unc, undetectable: unc, detectable_uncorrectable: None }
}

/// SEC-DED (72-bit codeword): ≥2-bit errors are uncorrectable; even-count
/// errors (dominated by 2 bits) are detected; odd-count errors ≥3
/// (dominated by 3 bits) alias to single-bit syndromes and miscorrect.
pub fn secded72_rates(ber: f64) -> ErrorRates {
    let unc = binomial_sf(72, 2, ber);
    // Undetected ≈ P(3 errors) + higher odd terms (negligible).
    let undet: f64 =
        (0..=3u64).filter(|k| k % 2 == 1 && *k >= 3).map(|k| binomial_pmf(72, k, ber)).sum::<f64>()
            + binomial_pmf(72, 5, ber);
    ErrorRates {
        uncorrectable: unc,
        undetectable: undet,
        detectable_uncorrectable: Some((unc - undet).max(0.0)),
    }
}

/// Chipkill-like SSC (18 symbols of 8 bits, 144-bit codeword): any
/// ≥2-symbol error is uncorrectable and — with only two parity symbols —
/// generally indistinguishable from a correctable pattern, so the paper
/// counts it as undetectable too.
pub fn ssc18_rates(ber: f64) -> ErrorRates {
    let q = symbol_error_probability(8, ber);
    let unc = binomial_sf(18, 2, q);
    ErrorRates { uncorrectable: unc, undetectable: unc, detectable_uncorrectable: None }
}

/// The full Table 3 at a given bit error rate: `(SEC, SECDED, SSC)`.
pub fn table3(ber: f64) -> (ErrorRates, ErrorRates, ErrorRates) {
    (sec72_rates(ber), secded72_rates(ber), ssc18_rates(ber))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1e-300)
    }

    #[test]
    fn pmf_sums_to_one() {
        let total: f64 = (0..=20).map(|k| binomial_pmf(20, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_known_values() {
        assert!(close(binomial_pmf(2, 1, 0.5), 0.5, 1e-12));
        assert!(close(binomial_pmf(4, 2, 0.5), 0.375, 1e-12));
    }

    #[test]
    fn sf_complements_pmf() {
        let p = 0.01;
        let sf = binomial_sf(10, 3, p);
        let direct: f64 = (3..=10).map(|k| binomial_pmf(10, k, p)).sum();
        assert!(close(sf, direct, 1e-9));
    }

    #[test]
    fn symbol_error_probability_bounds() {
        let q = symbol_error_probability(8, 1e-4);
        assert!(q > 7.9e-4 && q < 8.1e-4, "≈ 8p for small p, got {q}");
        assert_eq!(symbol_error_probability(8, 0.0), 0.0);
    }

    #[test]
    fn table3_sec_matches_paper() {
        // Paper: SEC uncorrectable = undetectable = 1.48e-5 at 7.6e-5.
        let r = sec72_rates(PAPER_WORST_BER);
        assert!(close(r.uncorrectable, 1.48e-5, 0.03), "got {}", r.uncorrectable);
        assert_eq!(r.uncorrectable, r.undetectable);
        assert!(r.detectable_uncorrectable.is_none());
    }

    #[test]
    fn table3_secded_matches_paper() {
        // Paper: uncorrectable 1.48e-5, undetectable 2.64e-8,
        // detectable-uncorrectable 1.48e-5.
        let r = secded72_rates(PAPER_WORST_BER);
        assert!(close(r.uncorrectable, 1.48e-5, 0.03), "got {}", r.uncorrectable);
        assert!(close(r.undetectable, 2.64e-8, 0.05), "got {}", r.undetectable);
        assert!(
            close(r.detectable_uncorrectable.unwrap(), 1.48e-5, 0.03),
            "got {:?}",
            r.detectable_uncorrectable
        );
    }

    #[test]
    fn table3_ssc_matches_paper() {
        // Paper: SSC uncorrectable = undetectable = 5.66e-5.
        let r = ssc18_rates(PAPER_WORST_BER);
        assert!(close(r.uncorrectable, 5.66e-5, 0.03), "got {}", r.uncorrectable);
        assert_eq!(r.uncorrectable, r.undetectable);
    }

    #[test]
    fn secded_is_strictly_safer_than_sec() {
        let sec = sec72_rates(PAPER_WORST_BER);
        let secded = secded72_rates(PAPER_WORST_BER);
        assert!(secded.undetectable < sec.undetectable / 100.0);
    }

    #[test]
    fn rates_increase_with_ber() {
        let low = secded72_rates(1e-6);
        let high = secded72_rates(1e-4);
        assert!(high.uncorrectable > low.uncorrectable);
        assert!(high.undetectable > low.undetectable);
    }

    #[test]
    fn zero_ber_is_error_free() {
        let (sec, secded, ssc) = table3(0.0);
        assert_eq!(sec.uncorrectable, 0.0);
        assert_eq!(secded.uncorrectable, 0.0);
        assert_eq!(ssc.uncorrectable, 0.0);
    }
}
