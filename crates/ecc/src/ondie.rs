//! On-die ECC: the Hamming(136,128) single-error-correcting code modern
//! DRAM dies apply internally.
//!
//! The paper's methodology *disables* on-die ECC (§3.1) because it
//! masks single-bit read-disturbance flips and mis-corrects multi-bit
//! ones, corrupting characterization data. This module implements the
//! actual code being disabled: 128 data bits + 8 check bits, SEC-only
//! (no double-error detection — exactly why prior work warns that
//! on-die ECC can *amplify* errors on double flips).
//!
//! Codewords exceed 128 bits, so they are carried in a small fixed
//! bitset, [`Word192`].

use serde::{Deserialize, Serialize};

/// Total bits in a codeword.
pub const CODEWORD_BITS: u32 = 136;

/// Data bits per codeword.
pub const DATA_BITS: u32 = 128;

/// A fixed 192-bit bitset (three 64-bit limbs) holding codewords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Word192 {
    limbs: [u64; 3],
}

impl Word192 {
    /// The zero word.
    pub fn zero() -> Self {
        Word192::default()
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 192`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < 192, "bit index out of range");
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 192`.
    pub fn set_bit(&mut self, i: u32, value: bool) {
        assert!(i < 192, "bit index out of range");
        let limb = &mut self.limbs[(i / 64) as usize];
        if value {
            *limb |= 1 << (i % 64);
        } else {
            *limb &= !(1 << (i % 64));
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 192`.
    pub fn flip_bit(&mut self, i: u32) {
        assert!(i < 192, "bit index out of range");
        self.limbs[(i / 64) as usize] ^= 1 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }
}

/// Outcome of an on-die decode. On-die ECC is SEC-only: there is no
/// "detected uncorrectable" outcome — multi-bit errors silently
/// mis-correct, which is the characterization hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnDieOutcome {
    /// Codeword clean.
    Clean {
        /// Decoded data.
        data: [u64; 2],
    },
    /// One bit corrected (or so the decoder believes).
    Corrected {
        /// Decoded data (wrong if more than one bit actually flipped).
        data: [u64; 2],
    },
}

impl OnDieOutcome {
    /// The decoded 128 data bits as two u64 limbs.
    pub fn data(&self) -> [u64; 2] {
        match self {
            OnDieOutcome::Clean { data } | OnDieOutcome::Corrected { data } => *data,
        }
    }
}

/// The Hamming(136,128) on-die SEC code.
///
/// Layout: Hamming positions 1..=135 carry parity bits at powers of two
/// (1, 2, 4, …, 128) and data everywhere else; position 0 is unused
/// (kept zero) so the syndrome is exactly the error position.
///
/// # Examples
///
/// ```
/// use vrd_ecc::ondie::OnDie136;
///
/// let code = OnDie136::new();
/// let data = [0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210];
/// let mut word = code.encode(data);
/// word.flip_bit(77);
/// assert_eq!(code.decode(word).data(), data);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnDie136;

impl OnDie136 {
    /// Creates the code (stateless).
    pub fn new() -> Self {
        OnDie136
    }

    fn data_positions() -> impl Iterator<Item = u32> {
        (1u32..=136).filter(|p| !p.is_power_of_two())
    }

    /// Encodes 128 data bits (two u64 limbs, little-endian bit order).
    pub fn encode(&self, data: [u64; 2]) -> Word192 {
        let mut word = Word192::zero();
        for (i, pos) in Self::data_positions().enumerate() {
            let bit = (data[i / 64] >> (i % 64)) & 1 == 1;
            word.set_bit(pos, bit);
        }
        for i in 0..8u32 {
            let p = 1u32 << i;
            let mut parity = false;
            for pos in 1..=136u32 {
                if pos & p != 0 && word.bit(pos) {
                    parity = !parity;
                }
            }
            word.set_bit(p, parity);
        }
        word
    }

    fn syndrome(word: &Word192) -> u32 {
        let mut s = 0u32;
        for pos in 1..=136u32 {
            if word.bit(pos) {
                s ^= pos;
            }
        }
        s
    }

    fn extract(word: &Word192) -> [u64; 2] {
        let mut data = [0u64; 2];
        for (i, pos) in Self::data_positions().enumerate() {
            if word.bit(pos) {
                data[i / 64] |= 1 << (i % 64);
            }
        }
        data
    }

    /// Decodes a codeword, correcting at most one bit.
    pub fn decode(&self, mut word: Word192) -> OnDieOutcome {
        let s = Self::syndrome(&word);
        if s == 0 {
            return OnDieOutcome::Clean { data: Self::extract(&word) };
        }
        if s <= 136 {
            word.flip_bit(s);
        }
        OnDieOutcome::Corrected { data: Self::extract(&word) }
    }

    /// Checks whether a set of raw bit errors would be *visible* to the
    /// host after on-die correction: `false` means the on-die code fully
    /// hid them (a single flip), `true` means the host sees wrong data
    /// — possibly *more* wrong bits than were injected (amplification).
    pub fn errors_visible(&self, data: [u64; 2], error_positions: &[u32]) -> bool {
        let mut word = self.encode(data);
        for &p in error_positions {
            word.flip_bit(1 + (p % CODEWORD_BITS));
        }
        self.decode(word).data() != data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [u64; 2] = [0xDEAD_BEEF_0BAD_F00D, 0x0123_4567_89AB_CDEF];

    #[test]
    fn clean_round_trip() {
        let code = OnDie136::new();
        assert_eq!(code.decode(code.encode(DATA)), OnDieOutcome::Clean { data: DATA });
    }

    #[test]
    fn data_position_count() {
        assert_eq!(OnDie136::data_positions().count(), 128);
    }

    #[test]
    fn corrects_every_single_bit() {
        let code = OnDie136::new();
        let word = code.encode(DATA);
        for bit in 1..=136u32 {
            let mut corrupted = word;
            corrupted.flip_bit(bit);
            assert_eq!(code.decode(corrupted).data(), DATA, "single flip at {bit} must correct");
        }
    }

    #[test]
    fn double_errors_silently_miscorrect() {
        // The §3.1 hazard: without DED, double flips return wrong data
        // with no indication.
        let code = OnDie136::new();
        let mut miscorrected = 0;
        for a in (1..=136u32).step_by(7) {
            for b in (2..=136u32).step_by(11) {
                if a == b {
                    continue;
                }
                if code.errors_visible(DATA, &[a, b]) {
                    miscorrected += 1;
                }
            }
        }
        assert!(miscorrected > 0, "double errors must surface as wrong data");
    }

    #[test]
    fn single_flips_are_invisible_to_characterization() {
        // Why the paper disables on-die ECC: a genuine read-disturbance
        // bitflip is hidden from the tester.
        let code = OnDie136::new();
        for bit in [3u32, 50, 99, 130] {
            assert!(!code.errors_visible(DATA, &[bit]));
        }
    }

    #[test]
    fn error_amplification_exists() {
        // Some double injections yield ≥3 wrong data bits after the
        // "correction" — on-die ECC can amplify errors.
        let code = OnDie136::new();
        let word = code.encode(DATA);
        let mut amplified = false;
        'outer: for a in 1..=136u32 {
            for b in (a + 1)..=136u32 {
                let mut corrupted = word;
                corrupted.flip_bit(a);
                corrupted.flip_bit(b);
                let out = code.decode(corrupted).data();
                let wrong = (out[0] ^ DATA[0]).count_ones() + (out[1] ^ DATA[1]).count_ones();
                if wrong >= 3 {
                    amplified = true;
                    break 'outer;
                }
            }
        }
        assert!(amplified, "some double error must amplify to ≥3 wrong data bits");
    }

    #[test]
    fn word192_bit_operations() {
        let mut w = Word192::zero();
        assert_eq!(w.count_ones(), 0);
        w.set_bit(0, true);
        w.set_bit(64, true);
        w.set_bit(191, true);
        assert_eq!(w.count_ones(), 3);
        assert!(w.bit(64));
        w.flip_bit(64);
        assert!(!w.bit(64));
        w.set_bit(191, false);
        assert_eq!(w.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word192_bounds_checked() {
        Word192::zero().bit(192);
    }
}
