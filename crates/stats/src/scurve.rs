//! Sorted percentile curves ("S-curves", paper Fig. 7a).
//!
//! The paper plots the coefficient of variation of every tested DRAM row,
//! sorted ascending, and marks percentile points (P50, P100). [`SCurve`]
//! captures that: a sorted copy of the data with percentile lookup.

use serde::{Deserialize, Serialize};

use crate::descriptive::percentile_of_sorted;
use crate::error::StatsError;

/// An ascending-sorted series with percentile lookup.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let s = vrd_stats::SCurve::from_values(vec![0.5, 0.03, 0.52, 0.1])?;
/// assert_eq!(s.max(), 0.52);
/// assert!(s.value_at_percentile(50.0) >= 0.03);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SCurve {
    sorted: Vec<f64>,
}

impl SCurve {
    /// Builds an S-curve from unsorted `values` (takes ownership, sorts in
    /// place).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty.
    pub fn from_values(mut values: Vec<f64>) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
        Ok(SCurve { sorted: values })
    }

    /// The sorted values (the y-series of the S-curve; x is the index).
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the curve is empty (never true for a constructed curve).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest value (P0).
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest value (P100).
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Interpolated value at percentile `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn value_at_percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        percentile_of_sorted(&self.sorted, p)
    }

    /// Fraction of points strictly greater than `threshold` (e.g. the
    /// paper's "50% of rows have CV > 0.03").
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let first_above = self.sorted.partition_point(|&v| v <= threshold);
        (self.sorted.len() - first_above) as f64 / self.sorted.len() as f64
    }

    /// Index (0-based) of the first point at or above percentile `p`,
    /// useful for picking the paper's "P50 row" and "P100 row" examples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn index_at_percentile(&self, p: f64) -> usize {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let raw = (p / 100.0 * (self.sorted.len() - 1) as f64).round() as usize;
        raw.min(self.sorted.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_error() {
        assert_eq!(SCurve::from_values(vec![]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn sorted_ascending() {
        let s = SCurve::from_values(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn percentile_lookup() {
        let s = SCurve::from_values((0..=100).map(f64::from).collect()).unwrap();
        assert_eq!(s.value_at_percentile(0.0), 0.0);
        assert_eq!(s.value_at_percentile(50.0), 50.0);
        assert_eq!(s.value_at_percentile(100.0), 100.0);
    }

    #[test]
    fn fraction_above_threshold() {
        let s = SCurve::from_values(vec![0.0, 0.1, 0.2, 0.3]).unwrap();
        assert_eq!(s.fraction_above(0.15), 0.5);
        assert_eq!(s.fraction_above(1.0), 0.0);
        assert_eq!(s.fraction_above(-1.0), 1.0);
    }

    #[test]
    fn fraction_above_is_strict() {
        let s = SCurve::from_values(vec![1.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.fraction_above(1.0), 0.5);
    }

    #[test]
    fn index_at_percentile_bounds() {
        let s = SCurve::from_values(vec![5.0; 10]).unwrap();
        assert_eq!(s.index_at_percentile(0.0), 0);
        assert_eq!(s.index_at_percentile(100.0), 9);
    }
}
