//! Binomial distribution and exact (Clopper–Pearson) confidence bounds.
//!
//! The discovery campaign's stopping rule treats every measurement epoch
//! as a Bernoulli trial — "did this epoch undercut the running minimum?"
//! — and stops once an exact upper confidence bound on the undercut
//! probability drops below the tolerance. The bound here is the
//! Clopper–Pearson interval, which never undershoots its nominal
//! coverage (it is conservative), so the campaign's advertised
//! confidence is an honest guarantee rather than an asymptotic one.

use crate::error::StatsError;
use crate::special::ln_gamma;

/// `ln C(n, k)` via log-gamma, stable for large `n`.
fn ln_choose(n: u64, k: u64) -> f64 {
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

fn check_probability(p: f64) -> Result<(), StatsError> {
    if !(0.0..=1.0).contains(&p) {
        // NaN also lands here: both comparisons fail.
        return Err(StatsError::InvalidParameter("probability must be in [0, 1]"));
    }
    Ok(())
}

/// `P(X = k)` for `X ~ Binomial(n, p)`.
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] when `n == 0`, `k > n`, or `p` is
/// outside `[0, 1]` (including NaN) — never a silent NaN.
pub fn binomial_pmf(k: u64, n: u64, p: f64) -> Result<f64, StatsError> {
    if n == 0 {
        return Err(StatsError::InvalidParameter("binomial needs at least one trial"));
    }
    if k > n {
        return Err(StatsError::InvalidParameter("successes cannot exceed trials"));
    }
    check_probability(p)?;
    // The p = 0 / p = 1 edges would produce 0 * ln(0) below; handle exactly.
    if p == 0.0 {
        return Ok(if k == 0 { 1.0 } else { 0.0 });
    }
    if p == 1.0 {
        return Ok(if k == n { 1.0 } else { 0.0 });
    }
    let ln_p = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    Ok(ln_p.exp())
}

/// `P(X <= k)` for `X ~ Binomial(n, p)`, summed term by term (exact for
/// the trial counts a campaign sees; no incomplete-beta machinery).
///
/// # Errors
///
/// Same domain as [`binomial_pmf`].
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> Result<f64, StatsError> {
    if n == 0 {
        return Err(StatsError::InvalidParameter("binomial needs at least one trial"));
    }
    if k > n {
        return Err(StatsError::InvalidParameter("successes cannot exceed trials"));
    }
    check_probability(p)?;
    let mut sum = 0.0;
    for i in 0..=k {
        sum += binomial_pmf(i, n, p)?;
    }
    Ok(sum.min(1.0))
}

/// `P(X > k)` for `X ~ Binomial(n, p)`, summed over the upper tail so
/// small survival probabilities keep their precision.
///
/// # Errors
///
/// Same domain as [`binomial_pmf`].
pub fn binomial_sf(k: u64, n: u64, p: f64) -> Result<f64, StatsError> {
    if n == 0 {
        return Err(StatsError::InvalidParameter("binomial needs at least one trial"));
    }
    if k > n {
        return Err(StatsError::InvalidParameter("successes cannot exceed trials"));
    }
    check_probability(p)?;
    let mut sum = 0.0;
    for i in (k + 1)..=n {
        sum += binomial_pmf(i, n, p)?;
    }
    Ok(sum.min(1.0))
}

/// Exact (Clopper–Pearson) upper confidence bound on a Bernoulli success
/// probability after observing `successes` in `trials`, at significance
/// `alpha` (i.e. a one-sided `1 - alpha` confidence level): the largest
/// `p` with `P(X <= successes | p) >= alpha`.
///
/// The true `p` exceeds the returned bound with probability at most
/// `alpha`, whatever `p` is. Monotone: the bound shrinks as `trials`
/// grows (more evidence) and grows as `alpha` shrinks (more confidence
/// demanded).
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] when `trials == 0`,
/// `successes > trials`, or `alpha` is outside `(0, 1)`.
pub fn binomial_upper_confidence(
    successes: u64,
    trials: u64,
    alpha: f64,
) -> Result<f64, StatsError> {
    if trials == 0 {
        return Err(StatsError::InvalidParameter("confidence bound needs at least one trial"));
    }
    if successes > trials {
        return Err(StatsError::InvalidParameter("successes cannot exceed trials"));
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidParameter("alpha must be in (0, 1)"));
    }
    if successes == trials {
        return Ok(1.0);
    }
    // binomial_cdf(successes, trials, p) decreases monotonically in p,
    // from 1 at p = 0 to 0 at p = 1 (given successes < trials); bisect
    // for the crossing with alpha. 64 halvings put the bracket well
    // below f64 resolution.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if binomial_cdf(successes, trials, mid)? >= alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Closed form of [`binomial_upper_confidence`] for the zero-success
/// case (the "rule of three" generalized): after `trials` failures and
/// no success, the success probability is at most
/// `1 - alpha^(1/trials)` with confidence `1 - alpha`.
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] when `trials == 0` or `alpha` is
/// outside `(0, 1)`.
pub fn zero_success_upper_confidence(trials: u64, alpha: f64) -> Result<f64, StatsError> {
    if trials == 0 {
        return Err(StatsError::InvalidParameter("confidence bound needs at least one trial"));
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidParameter("alpha must be in (0, 1)"));
    }
    Ok(1.0 - alpha.powf(1.0 / trials as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force pmf via Pascal's triangle and repeated multiplication,
    /// valid for small n.
    fn brute_pmf(k: u64, n: u64, p: f64) -> f64 {
        let mut choose = 1.0f64;
        for i in 0..k {
            choose *= (n - i) as f64 / (i + 1) as f64;
        }
        choose * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
    }

    #[test]
    fn pmf_matches_brute_force_on_small_n() {
        for n in 1..=12u64 {
            for k in 0..=n {
                for &p in &[0.05, 0.3, 0.5, 0.77] {
                    let exact = binomial_pmf(k, n, p).unwrap();
                    let brute = brute_pmf(k, n, p);
                    assert!(
                        (exact - brute).abs() < 1e-12,
                        "pmf({k}, {n}, {p}): {exact} vs {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn cdf_and_sf_partition_unity() {
        for &(k, n, p) in &[(0u64, 10u64, 0.2f64), (3, 10, 0.2), (9, 10, 0.9), (10, 10, 0.5)] {
            let cdf = binomial_cdf(k, n, p).unwrap();
            let sf = binomial_sf(k, n, p).unwrap();
            assert!((cdf + sf - 1.0).abs() < 1e-12, "cdf + sf at ({k}, {n}, {p})");
        }
    }

    #[test]
    fn edge_probabilities_are_exact() {
        assert_eq!(binomial_pmf(0, 5, 0.0).unwrap(), 1.0);
        assert_eq!(binomial_pmf(3, 5, 0.0).unwrap(), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0).unwrap(), 1.0);
        assert_eq!(binomial_cdf(4, 5, 1.0).unwrap(), 0.0);
        assert_eq!(binomial_cdf(5, 5, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn degenerate_inputs_error_not_nan() {
        assert!(binomial_pmf(0, 0, 0.5).is_err());
        assert!(binomial_pmf(6, 5, 0.5).is_err());
        assert!(binomial_pmf(1, 5, -0.1).is_err());
        assert!(binomial_pmf(1, 5, 1.1).is_err());
        assert!(binomial_pmf(1, 5, f64::NAN).is_err());
        assert!(binomial_upper_confidence(0, 0, 0.1).is_err());
        assert!(binomial_upper_confidence(2, 1, 0.1).is_err());
        assert!(binomial_upper_confidence(0, 10, 0.0).is_err());
        assert!(binomial_upper_confidence(0, 10, 1.0).is_err());
        assert!(zero_success_upper_confidence(0, 0.1).is_err());
    }

    #[test]
    fn upper_bound_agrees_with_zero_success_closed_form() {
        for n in [1u64, 3, 10, 45, 200] {
            for &alpha in &[0.01, 0.05, 0.1, 0.5] {
                let bisected = binomial_upper_confidence(0, n, alpha).unwrap();
                let closed = zero_success_upper_confidence(n, alpha).unwrap();
                assert!(
                    (bisected - closed).abs() < 1e-9,
                    "n={n} alpha={alpha}: {bisected} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn upper_bound_is_monotone_in_trials_and_alpha() {
        // More trials with the same success count -> tighter bound.
        let mut prev = 1.0;
        for n in [2u64, 5, 20, 100, 400] {
            let b = binomial_upper_confidence(1, n, 0.05).unwrap();
            assert!(b < prev, "bound must shrink as n grows: n={n} gave {b} >= {prev}");
            prev = b;
        }
        // Demanding more confidence (smaller alpha) -> looser bound.
        let loose = binomial_upper_confidence(1, 50, 0.2).unwrap();
        let tight = binomial_upper_confidence(1, 50, 0.01).unwrap();
        assert!(tight > loose);
    }

    #[test]
    fn all_successes_bound_is_one() {
        assert_eq!(binomial_upper_confidence(7, 7, 0.05).unwrap(), 1.0);
    }

    #[test]
    fn upper_bound_has_clopper_pearson_coverage_shape() {
        // At the bound itself, the probability of seeing `successes` or
        // fewer must equal alpha (the defining equation).
        let bound = binomial_upper_confidence(2, 30, 0.05).unwrap();
        let at_bound = binomial_cdf(2, 30, bound).unwrap();
        assert!((at_bound - 0.05).abs() < 1e-9, "cdf at bound = {at_bound}");
    }
}
