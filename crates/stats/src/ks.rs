//! Kolmogorov–Smirnov tests.
//!
//! The chi-square test (§4.1 of the paper) needs binning choices; the
//! one-sample KS test against a fitted normal and the two-sample KS test
//! between measurement series provide binning-free alternatives. The
//! two-sample form is what campaigns use to ask "did the RDT
//! distribution change between conditions?" (Findings 12–16).

use serde::{Deserialize, Serialize};

use crate::error::StatsError;
use crate::normal::normal_cdf;

/// Outcome of a KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic (max CDF distance).
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution).
    pub p_value: f64,
}

impl KsResult {
    /// Whether the null hypothesis ("same distribution") survives at
    /// level `alpha`.
    pub fn same_distribution(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Asymptotic Kolmogorov survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `values` against `N(mean, sd²)`.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for fewer than 8 samples and
/// [`StatsError::InvalidParameter`] for non-positive `sd`.
pub fn ks_test_normal(values: &[f64], mean: f64, sd: f64) -> Result<KsResult, StatsError> {
    if values.len() < 8 {
        return Err(StatsError::TooFewSamples { required: 8, actual: values.len() });
    }
    if sd <= 0.0 {
        return Err(StatsError::InvalidParameter("sd must be positive"));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = normal_cdf(x, mean, sd);
        let upper = (i as f64 + 1.0) / n - cdf;
        let lower = cdf - i as f64 / n;
        d = d.max(upper).max(lower);
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    Ok(KsResult { statistic: d, p_value: kolmogorov_sf(lambda) })
}

/// Two-sample KS test between `a` and `b`.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] if either sample has fewer than
/// 8 values.
pub fn ks_test_two_sample(a: &[f64], b: &[f64]) -> Result<KsResult, StatsError> {
    for sample in [a, b] {
        if sample.len() < 8 {
            return Err(StatsError::TooFewSamples { required: 8, actual: sample.len() });
        }
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("non-NaN values"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("non-NaN values"));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let xa = sa[i];
        let xb = sb[j];
        let x = xa.min(xb);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(KsResult { statistic: d, p_value: kolmogorov_sf(lambda) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn normal_sample_passes_against_its_own_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> =
            (0..3000).map(|_| crate::normal::sample_normal(&mut rng, 10.0, 2.0)).collect();
        let r = ks_test_normal(&xs, 10.0, 2.0).unwrap();
        assert!(r.same_distribution(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn shifted_normal_fails() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> =
            (0..3000).map(|_| crate::normal::sample_normal(&mut rng, 10.0, 2.0)).collect();
        let r = ks_test_normal(&xs, 11.0, 2.0).unwrap();
        assert!(!r.same_distribution(0.05));
    }

    #[test]
    fn uniform_fails_against_normal() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..3000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let r = ks_test_normal(&xs, 0.5, 0.2887).unwrap();
        assert!(!r.same_distribution(0.05));
    }

    #[test]
    fn two_samples_from_same_distribution_pass() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<f64> =
            (0..2000).map(|_| crate::normal::sample_normal(&mut rng, 5.0, 1.0)).collect();
        let b: Vec<f64> =
            (0..2000).map(|_| crate::normal::sample_normal(&mut rng, 5.0, 1.0)).collect();
        let r = ks_test_two_sample(&a, &b).unwrap();
        assert!(r.same_distribution(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn two_samples_with_different_spread_fail() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<f64> =
            (0..2000).map(|_| crate::normal::sample_normal(&mut rng, 5.0, 1.0)).collect();
        let b: Vec<f64> =
            (0..2000).map(|_| crate::normal::sample_normal(&mut rng, 5.0, 1.6)).collect();
        let r = ks_test_two_sample(&a, &b).unwrap();
        assert!(!r.same_distribution(0.05));
    }

    #[test]
    fn statistic_is_bounded() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [100.0, 101.0, 102.0, 103.0, 104.0, 105.0, 106.0, 107.0];
        let r = ks_test_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12, "disjoint supports give D = 1");
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn too_few_samples_error() {
        assert!(ks_test_normal(&[1.0; 5], 0.0, 1.0).is_err());
        assert!(ks_test_two_sample(&[1.0; 5], &[1.0; 20]).is_err());
    }

    #[test]
    fn kolmogorov_sf_limits() {
        assert!((kolmogorov_sf(0.0) - 1.0).abs() < 1e-9);
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Known value: Q(1.0) ≈ 0.27.
        assert!((kolmogorov_sf(1.0) - 0.27).abs() < 0.01);
    }
}
