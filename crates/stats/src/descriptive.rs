//! Descriptive statistics: means, variances, coefficients of variation,
//! percentiles, and a compact [`Summary`] record.
//!
//! The coefficient of variation (CV) is the headline metric of the VRD
//! paper's in-depth analysis (§5.1, Fig. 7): the standard deviation of 1,000
//! RDT measurements normalized to their mean.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// Arithmetic mean of `values`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `values` is empty.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let m = vrd_stats::descriptive::mean(&[1.0, 2.0, 3.0])?;
/// assert_eq!(m, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(values: &[f64]) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance of `values` (normalized by `n`, matching the paper's
/// use of the full measurement population rather than a sample estimate).
///
/// Uses Welford's online algorithm for numerical stability.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `values` is empty.
pub fn variance(values: &[f64]) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in values.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    Ok(m2 / values.len() as f64)
}

/// Population standard deviation of `values`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `values` is empty.
pub fn stddev(values: &[f64]) -> Result<f64, StatsError> {
    variance(values).map(f64::sqrt)
}

/// Coefficient of variation: standard deviation normalized to the mean
/// (paper §5.1, footnote 10).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `values` is empty and
/// [`StatsError::InvalidParameter`] if the mean is zero.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let cv = vrd_stats::descriptive::coefficient_of_variation(&[9.0, 10.0, 11.0])?;
/// assert!(cv < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn coefficient_of_variation(values: &[f64]) -> Result<f64, StatsError> {
    let m = mean(values)?;
    if m == 0.0 {
        return Err(StatsError::InvalidParameter("mean is zero"));
    }
    Ok(stddev(values)? / m)
}

/// Percentile of `values` in `[0, 100]`, using linear interpolation between
/// closest ranks (the "exclusive" convention used by NumPy's default).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `values` is empty and
/// [`StatsError::InvalidParameter`] if `p` is outside `[0, 100]` or NaN.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let p50 = vrd_stats::descriptive::percentile(&[1.0, 2.0, 3.0, 4.0], 50.0)?;
/// assert_eq!(p50, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn percentile(values: &[f64], p: f64) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter("percentile must be in [0, 100]"));
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    Ok(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already ascending-sorted slice. See [`percentile`].
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile_of_sorted requires a non-empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median of `values`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `values` is empty.
pub fn median(values: &[f64]) -> Result<f64, StatsError> {
    percentile(values, 50.0)
}

/// Compact summary of a measurement series: count, min, max, mean, standard
/// deviation, and coefficient of variation.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let s = vrd_stats::Summary::from_values(&[3242.0, 11498.0, 5000.0])?;
/// assert_eq!(s.min, 3242.0);
/// assert_eq!(s.max, 11498.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of values summarized.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Coefficient of variation (`stddev / mean`); zero when the mean is zero.
    pub cv: f64,
}

impl Summary {
    /// Summarizes `values`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty.
    pub fn from_values(values: &[f64]) -> Result<Self, StatsError> {
        let m = mean(values)?;
        let sd = stddev(values)?;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Ok(Summary {
            count: values.len(),
            min,
            max,
            mean: m,
            stddev: sd,
            cv: if m == 0.0 { 0.0 } else { sd / m },
        })
    }

    /// Summarizes an integer-valued series (such as RDT measurements).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty.
    pub fn from_u32(values: &[u32]) -> Result<Self, StatsError> {
        let as_f64: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        Self::from_values(&as_f64)
    }

    /// Ratio of the largest to the smallest value (e.g. the paper's "max RDT
    /// is 3.5× the min RDT"); `None` when the minimum is zero.
    pub fn max_over_min(&self) -> Option<f64> {
        if self.min == 0.0 {
            None
        } else {
            Some(self.max / self.min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_error() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]).unwrap(), 3.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0; 10]).unwrap(), 0.0);
    }

    #[test]
    fn variance_matches_two_pass() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let m = mean(&xs).unwrap();
        let two_pass = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((variance(&xs).unwrap() - two_pass).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        let xs: Vec<f64> = (0..999).map(|i| 1e9 + f64::from(i % 3)).collect();
        let v = variance(&xs).unwrap();
        assert!((v - 2.0 / 3.0).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn cv_scale_invariant() {
        let a = coefficient_of_variation(&[1.0, 2.0, 3.0]).unwrap();
        let b = coefficient_of_variation(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_mean_is_error() {
        assert!(matches!(
            coefficient_of_variation(&[-1.0, 1.0]),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 3.0);
        assert_eq!(percentile(&xs, 50.0).unwrap(), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0).unwrap(), 2.5);
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        assert!(percentile(&[1.0], 101.0).is_err());
        assert!(percentile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn summary_fields() {
        let s = Summary::from_values(&[1.0, 3.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max_over_min(), Some(3.0));
    }

    #[test]
    fn summary_from_u32_matches_f64() {
        let s = Summary::from_u32(&[10, 20, 30]).unwrap();
        assert_eq!(s.mean, 20.0);
    }

    #[test]
    fn max_over_min_none_when_min_zero() {
        let s = Summary::from_values(&[0.0, 5.0]).unwrap();
        assert_eq!(s.max_over_min(), None);
    }
}
