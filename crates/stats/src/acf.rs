//! Sample autocorrelation function (ACF).
//!
//! The paper (§4.1, Fig. 6) computes the ACF of a series of 100,000 RDT
//! measurements and compares it against the ACF of white noise to argue the
//! series harbors no repeating pattern. [`autocorrelation`] implements the
//! standard biased sample ACF; [`white_noise_bound`] gives the ±1.96/√n
//! large-sample 95% confidence band under the white-noise null.

use crate::error::StatsError;

/// Sample autocorrelation of `values` at lags `0..=max_lag`.
///
/// Uses the biased estimator
/// `r(k) = Σ (x_t - x̄)(x_{t+k} - x̄) / Σ (x_t - x̄)²`,
/// which guarantees `r(0) = 1` and `|r(k)| <= 1`.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] if `values.len() <= max_lag`, and
/// [`StatsError::InvalidParameter`] if the series has zero variance (the
/// ACF is undefined for a constant series).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let acf = vrd_stats::autocorrelation(&[1.0, 2.0, 1.0, 2.0, 1.0, 2.0], 2)?;
/// assert!((acf[0] - 1.0).abs() < 1e-12);
/// assert!(acf[1] < 0.0); // alternating series anti-correlates at lag 1
/// # Ok(())
/// # }
/// ```
pub fn autocorrelation(values: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    if values.len() <= max_lag {
        return Err(StatsError::TooFewSamples { required: max_lag + 1, actual: values.len() });
    }
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    // An exactly-constant series must error even when rounding in the mean
    // makes the variance a nonzero denormal (the denom check alone would
    // then "measure" correlation of pure floating-point noise).
    if values.windows(2).all(|w| w[0] == w[1]) {
        return Err(StatsError::InvalidParameter("series has zero variance"));
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let denom: f64 = values.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return Err(StatsError::InvalidParameter("series has zero variance"));
    }
    let mut acf = Vec::with_capacity(max_lag + 1);
    for k in 0..=max_lag {
        let num: f64 = (0..n - k).map(|t| (values[t] - mean) * (values[t + k] - mean)).sum();
        acf.push(num / denom);
    }
    Ok(acf)
}

/// Large-sample 95% confidence bound for the ACF of white noise:
/// `1.96 / sqrt(n)`. Lags whose |ACF| stays below this bound are consistent
/// with "no repeating pattern".
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn white_noise_bound(n: usize) -> f64 {
    assert!(n > 0, "white_noise_bound requires n > 0");
    1.96 / (n as f64).sqrt()
}

/// Fraction of lags `1..=max_lag` whose |ACF| exceeds the white-noise bound.
/// Under the white-noise null this should be close to 0.05.
///
/// # Errors
///
/// Propagates errors from [`autocorrelation`].
pub fn significant_lag_fraction(values: &[f64], max_lag: usize) -> Result<f64, StatsError> {
    let acf = autocorrelation(values, max_lag)?;
    let bound = white_noise_bound(values.len());
    let exceed = acf[1..].iter().filter(|r| r.abs() > bound).count();
    Ok(exceed as f64 / max_lag as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lag_zero_is_one() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let acf = autocorrelation(&xs, 2).unwrap();
        assert!((acf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_one() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 0.0];
        for r in autocorrelation(&xs, 5).unwrap() {
            assert!(r.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn constant_series_is_error() {
        assert!(matches!(autocorrelation(&[2.0; 10], 3), Err(StatsError::InvalidParameter(_))));
    }

    #[test]
    fn too_short_is_error() {
        assert!(matches!(autocorrelation(&[1.0, 2.0], 2), Err(StatsError::TooFewSamples { .. })));
    }

    #[test]
    fn linear_trend_has_high_lag1() {
        let xs: Vec<f64> = (0..200).map(f64::from).collect();
        let acf = autocorrelation(&xs, 1).unwrap();
        assert!(acf[1] > 0.9);
    }

    #[test]
    fn white_noise_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs = crate::normal::standard_normal_series(&mut rng, 20_000);
        let frac = significant_lag_fraction(&xs, 50).unwrap();
        assert!(frac < 0.15, "white noise should rarely exceed the band, got {frac}");
    }

    #[test]
    fn periodic_signal_detected() {
        let xs: Vec<f64> = (0..1000).map(|i| f64::from(i % 10)).collect();
        let acf = autocorrelation(&xs, 20).unwrap();
        assert!(acf[10] > 0.9, "period-10 signal must autocorrelate at lag 10");
        let frac = significant_lag_fraction(&xs, 20).unwrap();
        assert!(frac > 0.5);
    }

    #[test]
    fn bound_shrinks_with_n() {
        assert!(white_noise_bound(10_000) < white_noise_bound(100));
    }
}
