//! Normal and lognormal distributions: density, CDF, and sampling.
//!
//! The `rand` crate alone (without `rand_distr`) provides only uniform
//! sampling, so Gaussian variates are generated here with the Box–Muller
//! transform. The CDF is built on [`crate::special::erfc`].

use rand::Rng;

/// Probability density of `N(mean, sd²)` at `x`.
///
/// # Panics
///
/// Panics if `sd <= 0`.
pub fn normal_pdf(x: f64, mean: f64, sd: f64) -> f64 {
    assert!(sd > 0.0, "normal_pdf requires sd > 0");
    let z = (x - mean) / sd;
    (-0.5 * z * z).exp() / (sd * (2.0 * std::f64::consts::PI).sqrt())
}

/// Cumulative distribution of `N(mean, sd²)` at `x`.
///
/// # Panics
///
/// Panics if `sd <= 0`.
///
/// # Examples
///
/// ```
/// let p = vrd_stats::normal::normal_cdf(0.0, 0.0, 1.0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64, mean: f64, sd: f64) -> f64 {
    assert!(sd > 0.0, "normal_cdf requires sd > 0");
    let z = (x - mean) / (sd * std::f64::consts::SQRT_2);
    0.5 * crate::special::erfc(-z)
}

/// Draws one standard-normal variate using the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = vrd_stats::normal::sample_standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one `N(mean, sd²)` variate.
///
/// # Panics
///
/// Panics if `sd < 0`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0, "sample_normal requires sd >= 0");
    mean + sd * sample_standard_normal(rng)
}

/// Draws one lognormal variate whose *logarithm* is `N(mu, sigma²)`.
///
/// The median of the resulting distribution is `exp(mu)`.
///
/// # Panics
///
/// Panics if `sigma < 0`.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sample_lognormal requires sigma >= 0");
    sample_normal(rng, mu, sigma).exp()
}

/// Generates `n` independent standard-normal variates (used as the
/// white-noise reference series of the paper's Fig. 6).
pub fn standard_normal_series<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| sample_standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pdf_peaks_at_mean() {
        assert!(normal_pdf(0.0, 0.0, 1.0) > normal_pdf(0.5, 0.0, 1.0));
        assert!((normal_pdf(0.0, 0.0, 1.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
    }

    #[test]
    fn cdf_known_points() {
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.0, 0.0, 1.0) - 0.158_655).abs() < 1e-5);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let c = normal_cdf(f64::from(i) * 0.1, 0.0, 1.0);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn samples_have_roughly_correct_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..50_000).map(|_| sample_normal(&mut rng, 10.0, 2.0)).collect();
        let mean = crate::descriptive::mean(&xs).unwrap();
        let sd = crate::descriptive::stddev(&xs).unwrap();
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| sample_lognormal(&mut rng, 3.0, 0.5)).collect();
        let med = crate::descriptive::median(&xs).unwrap();
        assert!((med - 3.0f64.exp()).abs() / 3.0f64.exp() < 0.03, "median {med}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(sample_lognormal(&mut rng, 0.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn series_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(standard_normal_series(&mut rng, 17).len(), 17);
    }
}
