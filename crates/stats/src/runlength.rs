//! Run-length analysis of measurement series (paper Fig. 5, Finding 3).
//!
//! The paper asks: for how many *consecutive* measurements does a DRAM row
//! keep the same RDT value? A run of length 1 means the next measurement
//! already differed; the paper reports that 79.0% of RDT state changes
//! happen after every measurement, and that a row very rarely keeps one
//! value for 14 consecutive measurements.

use std::collections::BTreeMap;

/// Splits `values` into maximal runs of equal consecutive values and returns
/// the run lengths in order of appearance.
///
/// # Examples
///
/// ```
/// let runs = vrd_stats::runlength::run_lengths(&[5, 5, 7, 7, 7, 5]);
/// assert_eq!(runs, vec![2, 3, 1]);
/// ```
pub fn run_lengths<T: PartialEq>(values: &[T]) -> Vec<usize> {
    let mut runs = Vec::new();
    let mut iter = values.iter();
    let Some(mut prev) = iter.next() else {
        return runs;
    };
    let mut len = 1usize;
    for v in iter {
        if v == prev {
            len += 1;
        } else {
            runs.push(len);
            len = 1;
            prev = v;
        }
    }
    runs.push(len);
    runs
}

/// Histogram of run lengths: maps each run length to how many runs of that
/// length occurred (the paper's Fig. 5, aggregated across rows by merging
/// maps).
///
/// # Examples
///
/// ```
/// let h = vrd_stats::run_length_histogram(&[1, 1, 2, 3, 3]);
/// assert_eq!(h.get(&2), Some(&2)); // runs "1,1" and "3,3"
/// assert_eq!(h.get(&1), Some(&1)); // run "2"
/// ```
pub fn run_length_histogram<T: PartialEq>(values: &[T]) -> BTreeMap<usize, u64> {
    let mut map = BTreeMap::new();
    for len in run_lengths(values) {
        *map.entry(len).or_insert(0) += 1;
    }
    map
}

/// Fraction of state *changes* that happen after a single measurement, i.e.
/// the share of runs with length 1 among all runs that are followed by a
/// change (all but possibly the last run). Returns `None` when the series
/// has no state change at all.
///
/// This is the paper's "79.0% of RDT state changes happen after every
/// measurement" statistic (Finding 3).
pub fn immediate_change_fraction<T: PartialEq>(values: &[T]) -> Option<f64> {
    let runs = run_lengths(values);
    if runs.len() < 2 {
        return None;
    }
    // Every run except the final one ends in a state change.
    let changing = &runs[..runs.len() - 1];
    let ones = changing.iter().filter(|&&len| len == 1).count();
    Some(ones as f64 / changing.len() as f64)
}

/// Longest run of equal consecutive values; 0 for an empty series.
pub fn longest_run<T: PartialEq>(values: &[T]) -> usize {
    run_lengths(values).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series() {
        assert!(run_lengths::<u32>(&[]).is_empty());
        assert_eq!(longest_run::<u32>(&[]), 0);
        assert_eq!(immediate_change_fraction::<u32>(&[]), None);
    }

    #[test]
    fn single_value() {
        assert_eq!(run_lengths(&[9]), vec![1]);
        assert_eq!(immediate_change_fraction(&[9]), None);
    }

    #[test]
    fn constant_series_one_run() {
        assert_eq!(run_lengths(&[4, 4, 4]), vec![3]);
        assert_eq!(immediate_change_fraction(&[4, 4, 4]), None);
        assert_eq!(longest_run(&[4, 4, 4]), 3);
    }

    #[test]
    fn alternating_series_all_immediate() {
        let xs = [1, 2, 1, 2, 1];
        assert_eq!(immediate_change_fraction(&xs), Some(1.0));
        assert_eq!(longest_run(&xs), 1);
    }

    #[test]
    fn run_lengths_sum_to_len() {
        let xs = [3, 3, 1, 1, 1, 2, 3, 3, 3, 3];
        assert_eq!(run_lengths(&xs).iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn histogram_counts_runs() {
        let h = run_length_histogram(&[7, 7, 8, 8, 9]);
        assert_eq!(h.get(&2), Some(&2));
        assert_eq!(h.get(&1), Some(&1));
        assert_eq!(h.values().sum::<u64>(), 3);
    }

    #[test]
    fn immediate_fraction_mixed() {
        // Runs: [2, 1, 1, 3] -> changing runs [2, 1, 1] -> 2/3 immediate.
        let xs = [5, 5, 6, 7, 8, 8, 8];
        let f = immediate_change_fraction(&xs).unwrap();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }
}
