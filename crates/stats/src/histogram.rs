//! Equal-width histograms with the paper's Fig.-4 binning convention.
//!
//! The paper bins each RDT series into `k` equal-width bins where `k` is the
//! number of *unique* measured RDT values, with bin width
//! `(max - min) / k`. [`Histogram::with_unique_value_bins`] reproduces that;
//! [`Histogram::with_bins`] gives explicit control.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// An equal-width histogram over `f64` data.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let h = vrd_stats::Histogram::with_bins(&[0.0, 0.5, 1.0, 2.0], 2)?;
/// assert_eq!(h.counts(), &[2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning
    /// `[min(values), max(values)]`. The last bin is closed on both sides.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty and
    /// [`StatsError::InvalidParameter`] if `bins` is zero.
    pub fn with_bins(values: &[f64], bins: usize) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be nonzero"));
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &v in values {
            let idx = if width == 0.0 { 0 } else { (((v - lo) / width) as usize).min(bins - 1) };
            counts[idx] += 1;
        }
        Ok(Histogram { lo, hi, counts, total: values.len() as u64 })
    }

    /// Builds a histogram of an integer series using the paper's Fig.-4
    /// convention: the number of bins equals the number of unique values.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty.
    pub fn with_unique_value_bins(values: &[u32]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let unique = unique_count(values);
        let as_f64: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        Self::with_bins(&as_f64, unique)
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins(), "bin index out of range");
        self.lo + self.bin_width() * (i as f64 + 0.5)
    }

    /// Number of modes: local maxima in the count sequence separated by a
    /// strictly lower bin. Used to detect bimodal RDT distributions like the
    /// paper observed for HBM2 Chip1 (Finding 2).
    pub fn mode_count(&self) -> usize {
        // Collapse zero-count bins, then count strictly-greater-than-
        // neighbors peaks on the collapsed profile.
        let nz: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        if nz.is_empty() {
            return 0;
        }
        let mut peaks = 0;
        for i in 0..nz.len() {
            let left = if i == 0 { 0 } else { nz[i - 1] };
            let right = if i + 1 == nz.len() { 0 } else { nz[i + 1] };
            if nz[i] > left && nz[i] >= right && (i + 1 == nz.len() || nz[i] > right) {
                peaks += 1;
            }
        }
        peaks.max(1)
    }
}

/// Number of distinct values in an integer series (the paper's "number of
/// unique measured RDT values", Finding 2).
///
/// # Examples
///
/// ```
/// assert_eq!(vrd_stats::histogram::unique_count(&[5, 5, 7, 9]), 3);
/// ```
pub fn unique_count(values: &[u32]) -> usize {
    values.iter().collect::<BTreeSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_error() {
        assert!(Histogram::with_bins(&[], 3).is_err());
        assert!(Histogram::with_unique_value_bins(&[]).is_err());
    }

    #[test]
    fn zero_bins_is_error() {
        assert!(Histogram::with_bins(&[1.0], 0).is_err());
    }

    #[test]
    fn counts_sum_to_total() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let h = Histogram::with_bins(&values, 7).unwrap();
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = Histogram::with_bins(&[0.0, 10.0], 5).unwrap();
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn constant_series_single_bin() {
        let h = Histogram::with_bins(&[3.0; 10], 4).unwrap();
        assert_eq!(h.counts()[0], 10);
        assert_eq!(h.bin_width(), 0.0);
    }

    #[test]
    fn unique_value_bins_matches_unique_count() {
        let values = [100u32, 100, 110, 120, 120, 130];
        let h = Histogram::with_unique_value_bins(&values).unwrap();
        assert_eq!(h.bins(), 4);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn unique_count_basic() {
        assert_eq!(unique_count(&[1, 1, 1]), 1);
        assert_eq!(unique_count(&[1, 2, 3]), 3);
    }

    #[test]
    fn bin_center_is_midpoint() {
        let h = Histogram::with_bins(&[0.0, 10.0], 2).unwrap();
        assert_eq!(h.bin_center(0), 2.5);
        assert_eq!(h.bin_center(1), 7.5);
    }

    #[test]
    fn unimodal_detected() {
        let values: Vec<f64> = vec![1.0, 2.0, 2.0, 2.0, 3.0];
        let h = Histogram::with_bins(&values, 3).unwrap();
        assert_eq!(h.mode_count(), 1);
    }

    #[test]
    fn bimodal_detected() {
        let mut values = vec![0.0; 20];
        values.extend(vec![10.0; 20]);
        values.push(5.0);
        let h = Histogram::with_bins(&values, 11).unwrap();
        assert_eq!(h.mode_count(), 2);
    }
}
