//! Special functions needed by the statistical tests: the log-gamma
//! function, regularized incomplete gamma functions, and the error function.
//!
//! Implementations follow the classic Lanczos / series / continued-fraction
//! formulations (Numerical Recipes style) and are accurate to well beyond
//! the needs of a goodness-of-fit p-value.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients), which is
/// accurate to about 15 significant digits over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// let lg = vrd_stats::special::ln_gamma(5.0);
/// assert!((lg - 24.0f64.ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of `Q(a, x)` (modified Lentz), convergent
/// for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-square distribution with `k` degrees of
/// freedom: `P(X >= x)` — the p-value of a chi-square statistic.
///
/// # Panics
///
/// Panics if `k == 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// // Median of chi-square with 1 dof is ~0.455.
/// let p = vrd_stats::special::chi_square_sf(0.455, 1);
/// assert!((p - 0.5).abs() < 0.01);
/// ```
pub fn chi_square_sf(x: f64, k: usize) -> f64 {
    assert!(k > 0, "chi_square_sf requires k > 0");
    gamma_q(k as f64 / 2.0, x / 2.0)
}

/// Error function `erf(x)`, via the incomplete gamma relation
/// `erf(x) = P(1/2, x²)` for `x >= 0` and odd symmetry.
///
/// # Examples
///
/// ```
/// assert!((vrd_stats::special::erf(0.0)).abs() < 1e-15);
/// assert!((vrd_stats::special::erf(1.0) - 0.8427007929).abs() < 1e-9);
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, computed without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        gamma_q(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..12u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            assert!((ln_gamma(f64::from(n)) - fact.ln()).abs() < 1e-10, "mismatch at n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (10.0, 3.0)] {
            let s = gamma_p(a, x) + gamma_q(a, x);
            assert!((s - 1.0).abs() < 1e-12, "P+Q != 1 at a={a}, x={x}");
        }
    }

    #[test]
    fn gamma_p_known_value() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let p = gamma_p(3.0, f64::from(i) * 0.2);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn chi_square_sf_two_dof_is_exp() {
        // k=2: SF(x) = e^{-x/2}.
        for &x in &[0.5, 1.0, 2.0, 5.0] {
            assert!((chi_square_sf(x, 2) - (-x / 2.0).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_square_sf_boundaries() {
        assert_eq!(chi_square_sf(0.0, 5), 1.0);
        assert!(chi_square_sf(1000.0, 5) < 1e-10);
    }

    #[test]
    fn erf_symmetry_and_limits() {
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15);
        assert!(erf(5.0) > 0.999_999);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-9);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }
}
