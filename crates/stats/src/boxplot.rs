//! Box-and-whiskers summaries following the VRD paper's convention.
//!
//! The paper's footnote 6 defines the box bounds as: first quartile = median
//! of the first half of the ordered data, third quartile = median of the
//! second half (the "Tukey hinges" / inclusive-halves convention, excluding
//! the overall median for odd-length inputs), whiskers = min and max, and a
//! circle at the mean. [`BoxSummary`] reproduces exactly that.

use serde::{Deserialize, Serialize};

use crate::error::StatsError;

/// Five-number box-plot summary plus the mean, matching the paper's plots.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vrd_stats::StatsError> {
/// let b = vrd_stats::BoxSummary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0])?;
/// assert_eq!(b.median, 3.0);
/// assert_eq!(b.q1, 1.5);
/// assert_eq!(b.q3, 4.5);
/// assert_eq!(b.iqr(), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxSummary {
    /// Minimum (lower whisker).
    pub min: f64,
    /// First quartile: median of the first half of the ordered data.
    pub q1: f64,
    /// Median of all data.
    pub median: f64,
    /// Third quartile: median of the second half of the ordered data.
    pub q3: f64,
    /// Maximum (upper whisker).
    pub max: f64,
    /// Arithmetic mean (the circle in the paper's plots).
    pub mean: f64,
}

impl BoxSummary {
    /// Builds a box summary from unsorted `values`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty.
    pub fn from_values(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
        let n = sorted.len();
        let median = median_of_sorted(&sorted);
        // Halves exclude the middle element for odd n, per the paper's
        // "median of the first/second half of the ordered set" wording.
        let half = n / 2;
        let (q1, q3) = if n == 1 {
            (sorted[0], sorted[0])
        } else {
            (median_of_sorted(&sorted[..half]), median_of_sorted(&sorted[n - half..]))
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Ok(BoxSummary { min: sorted[0], q1, median, q3, max: sorted[n - 1], mean })
    }

    /// Builds a box summary from integer measurements.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty.
    pub fn from_u32(values: &[u32]) -> Result<Self, StatsError> {
        let as_f64: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        Self::from_values(&as_f64)
    }

    /// Interquartile range (`q3 - q1`, the box height).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_error() {
        assert_eq!(BoxSummary::from_values(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn singleton() {
        let b = BoxSummary::from_values(&[7.0]).unwrap();
        assert_eq!(b.min, 7.0);
        assert_eq!(b.q1, 7.0);
        assert_eq!(b.median, 7.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.max, 7.0);
        assert_eq!(b.iqr(), 0.0);
    }

    #[test]
    fn even_count_quartiles() {
        // Halves are [1,2,3] and [4,5,6].
        let b = BoxSummary::from_values(&[6.0, 1.0, 4.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.5);
        assert_eq!(b.q3, 5.0);
    }

    #[test]
    fn odd_count_excludes_overall_median_from_halves() {
        // Sorted: [1,2,3,4,5]; halves [1,2] and [4,5].
        let b = BoxSummary::from_values(&[5.0, 3.0, 1.0, 4.0, 2.0]).unwrap();
        assert_eq!(b.q1, 1.5);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.5);
    }

    #[test]
    fn quartiles_bracket_median() {
        let values: Vec<f64> = (0..101).map(f64::from).collect();
        let b = BoxSummary::from_values(&values).unwrap();
        assert!(b.min <= b.q1 && b.q1 <= b.median);
        assert!(b.median <= b.q3 && b.q3 <= b.max);
    }

    #[test]
    fn from_u32_matches() {
        let b = BoxSummary::from_u32(&[10, 20, 30, 40]).unwrap();
        assert_eq!(b.median, 25.0);
    }
}
