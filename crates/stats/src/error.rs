//! Error type shared by the statistics routines.

use std::error::Error;
use std::fmt;

/// Error returned by statistics routines on invalid input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slice was empty but the computation needs at least one value.
    EmptyInput,
    /// The input had fewer elements than the computation requires.
    ///
    /// Carries the required and actual lengths.
    TooFewSamples { required: usize, actual: usize },
    /// A parameter was outside its valid domain (e.g. a percentile not in
    /// `[0, 100]`, or a zero-variance series passed to a normality test).
    InvalidParameter(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input slice was empty"),
            StatsError::TooFewSamples { required, actual } => {
                write!(f, "need at least {required} samples, got {actual}")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        assert_eq!(StatsError::EmptyInput.to_string(), "input slice was empty");
        assert_eq!(
            StatsError::TooFewSamples { required: 3, actual: 1 }.to_string(),
            "need at least 3 samples, got 1"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
