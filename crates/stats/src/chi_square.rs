//! Pearson chi-square goodness-of-fit test against a fitted normal
//! distribution (paper §4.1).
//!
//! The paper tests the null hypothesis that RDT measurements follow the
//! normal distribution derived from their own mean and standard deviation,
//! and reports the minimum p-value across chips (0.18), failing to reject
//! at α = 0.05. [`chi_square_gof_normal`] reproduces that procedure:
//! equal-probability bins under the fitted normal, expected counts `n/k`,
//! and `k - 3` degrees of freedom (two parameters estimated + one sum
//! constraint).

use serde::{Deserialize, Serialize};

use crate::descriptive;
use crate::error::StatsError;
use crate::normal::normal_cdf;
use crate::special::chi_square_sf;

/// Outcome of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquareResult {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub dof: usize,
    /// The p-value (survival function of the statistic).
    pub p_value: f64,
    /// Number of bins used.
    pub bins: usize,
}

impl ChiSquareResult {
    /// Whether the null hypothesis ("data is normal") survives at
    /// significance level `alpha` (i.e. `p_value > alpha`).
    pub fn accepts_normality(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Tests whether `values` are consistent with a normal distribution whose
/// mean and standard deviation are estimated from `values` themselves.
///
/// Bins are chosen with equal probability under the fitted normal, so each
/// bin's expected count is `n / bins`; `bins` defaults (when `None`) to
/// `max(6, n/50)` capped at 30, keeping expected counts comfortably above
/// the usual "≥ 5 per bin" rule.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] if fewer than 30 values are given
/// and [`StatsError::InvalidParameter`] if the sample variance is zero.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let xs: Vec<f64> = (0..2000)
///     .map(|_| vrd_stats::normal::sample_normal(&mut rng, 100.0, 15.0))
///     .collect();
/// let r = vrd_stats::chi_square_gof_normal(&xs, None)?;
/// assert!(r.accepts_normality(0.05));
/// # Ok(())
/// # }
/// ```
pub fn chi_square_gof_normal(
    values: &[f64],
    bins: Option<usize>,
) -> Result<ChiSquareResult, StatsError> {
    if values.len() < 30 {
        return Err(StatsError::TooFewSamples { required: 30, actual: values.len() });
    }
    let mean = descriptive::mean(values)?;
    let sd = descriptive::stddev(values)?;
    if sd == 0.0 {
        return Err(StatsError::InvalidParameter("zero variance"));
    }
    let n = values.len();
    let k = bins.unwrap_or_else(|| (n / 50).clamp(6, 30));
    if k < 4 {
        return Err(StatsError::InvalidParameter("need at least 4 bins"));
    }

    // Equal-probability bin edges under the fitted normal: the z-scores at
    // probabilities i/k, found by bisection on the CDF.
    let mut edges = Vec::with_capacity(k - 1);
    for i in 1..k {
        let target = i as f64 / k as f64;
        edges.push(normal_quantile_bisect(target, mean, sd));
    }

    let mut observed = vec![0u64; k];
    for &v in values {
        let idx = edges.partition_point(|&e| e < v);
        observed[idx] += 1;
    }

    let expected = n as f64 / k as f64;
    let statistic: f64 = observed.iter().map(|&o| (o as f64 - expected).powi(2) / expected).sum();
    // dof = bins - 1 - 2 estimated parameters.
    let dof = k - 3;
    let p_value = chi_square_sf(statistic, dof);
    Ok(ChiSquareResult { statistic, dof, p_value, bins: k })
}

/// Inverse CDF of `N(mean, sd²)` via bisection (sufficient precision for
/// bin edges; ~1e-10 in z units).
fn normal_quantile_bisect(p: f64, mean: f64, sd: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    let (mut lo, mut hi) = (-10.0f64, 10.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid, 0.0, 1.0) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    mean + sd * 0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn too_few_samples_is_error() {
        assert!(chi_square_gof_normal(&[1.0; 10], None).is_err());
    }

    #[test]
    fn zero_variance_is_error() {
        assert!(matches!(
            chi_square_gof_normal(&[3.0; 100], None),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn normal_data_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> =
            (0..5000).map(|_| crate::normal::sample_normal(&mut rng, 50.0, 7.0)).collect();
        let r = chi_square_gof_normal(&xs, None).unwrap();
        assert!(r.accepts_normality(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn uniform_data_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..5000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let r = chi_square_gof_normal(&xs, None).unwrap();
        assert!(!r.accepts_normality(0.05), "uniform data must fail normality, p = {}", r.p_value);
    }

    #[test]
    fn bimodal_data_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..4000)
            .map(|i| {
                let center = if i % 2 == 0 { 0.0 } else { 20.0 };
                crate::normal::sample_normal(&mut rng, center, 1.0)
            })
            .collect();
        let r = chi_square_gof_normal(&xs, None).unwrap();
        assert!(!r.accepts_normality(0.05));
    }

    #[test]
    fn explicit_bins_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> =
            (0..2000).map(|_| crate::normal::sample_normal(&mut rng, 0.0, 1.0)).collect();
        let r = chi_square_gof_normal(&xs, Some(10)).unwrap();
        assert_eq!(r.bins, 10);
        assert_eq!(r.dof, 7);
    }

    #[test]
    fn quantile_bisect_round_trip() {
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let x = normal_quantile_bisect(p, 5.0, 2.0);
            let back = normal_cdf(x, 5.0, 2.0);
            assert!((back - p).abs() < 1e-9);
        }
    }
}
