//! Monte-Carlo utilities: deterministic seed derivation and subsampling.
//!
//! The paper's §5.1 analysis runs 10,000 Monte-Carlo iterations per row,
//! uniformly randomly selecting N of the 1,000 recorded RDT measurements.
//! The helpers here make those draws reproducible: every sub-experiment
//! derives its own seed from a root seed and a label, so experiments are
//! both deterministic and statistically independent.

use rand::Rng;

/// Derives a child seed from a root seed and a set of stream labels using a
/// SplitMix64-style finalizer. The same `(root, labels)` always yields the
/// same seed; distinct labels yield (with overwhelming probability)
/// distinct, well-mixed seeds.
///
/// # Examples
///
/// ```
/// let a = vrd_stats::derive_seed(42, &[1, 0]);
/// let b = vrd_stats::derive_seed(42, &[1, 1]);
/// assert_ne!(a, b);
/// assert_eq!(a, vrd_stats::derive_seed(42, &[1, 0]));
/// ```
pub fn derive_seed(root: u64, labels: &[u64]) -> u64 {
    let mut state = root ^ 0x9E37_79B9_7F4A_7C15;
    for &label in labels {
        state = splitmix64(state.wrapping_add(splitmix64(label)));
    }
    splitmix64(state)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniformly samples `k` distinct indices from `0..n` (partial
/// Fisher–Yates). The result is unordered.
///
/// # Panics
///
/// Panics if `k > n`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let idx = vrd_stats::sample_indices_without_replacement(&mut rng, 10, 3);
/// assert_eq!(idx.len(), 3);
/// assert!(idx.iter().all(|&i| i < 10));
/// ```
pub fn sample_indices_without_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} of {n} without replacement");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Estimates, by `iterations` Monte-Carlo draws, the expected minimum of
/// `k` values uniformly subsampled (without replacement) from `values`, and
/// the probability that this minimum equals the global minimum of `values`.
///
/// Returns `(expected_min, probability_of_global_min)`.
///
/// # Panics
///
/// Panics if `values` is empty, `k == 0`, `k > values.len()`, or
/// `iterations == 0`.
pub fn subsample_min_statistics<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[u32],
    k: usize,
    iterations: usize,
) -> (f64, f64) {
    assert!(!values.is_empty(), "values must be non-empty");
    assert!(k > 0 && k <= values.len(), "k must be in 1..=len");
    assert!(iterations > 0, "iterations must be nonzero");
    let global_min = *values.iter().min().expect("non-empty");
    let mut sum_min = 0.0f64;
    let mut hits = 0usize;
    for _ in 0..iterations {
        let idx = sample_indices_without_replacement(rng, values.len(), k);
        let m = idx.iter().map(|&i| values[i]).min().expect("k > 0");
        sum_min += f64::from(m);
        if m == global_min {
            hits += 1;
        }
    }
    (sum_min / iterations as f64, hits as f64 / iterations as f64)
}

/// Exact (combinatorial) probability that a uniform without-replacement
/// subsample of size `k` from `values` contains at least one occurrence of
/// the global minimum:
/// `1 - C(n - c, k) / C(n, k)` where `c` counts the minimum's occurrences.
///
/// This is the closed form behind the paper's "probability of finding the
/// minimum RDT with N measurements"; the Monte-Carlo estimate of
/// [`subsample_min_statistics`] converges to it.
///
/// # Panics
///
/// Panics if `values` is empty or `k` is not in `1..=values.len()`.
pub fn exact_min_hit_probability(values: &[u32], k: usize) -> f64 {
    assert!(!values.is_empty(), "values must be non-empty");
    assert!(k > 0 && k <= values.len(), "k must be in 1..=len");
    let n = values.len();
    let global_min = *values.iter().min().expect("non-empty");
    let c = values.iter().filter(|&&v| v == global_min).count();
    if k > n - c {
        return 1.0;
    }
    // C(n-c, k) / C(n, k) = prod_{i=0..k-1} (n - c - i) / (n - i)
    let mut ratio = 1.0f64;
    for i in 0..k {
        ratio *= (n - c - i) as f64 / (n - i) as f64;
    }
    1.0 - ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn derive_seed_deterministic_and_distinct() {
        assert_eq!(derive_seed(1, &[2, 3]), derive_seed(1, &[2, 3]));
        assert_ne!(derive_seed(1, &[2, 3]), derive_seed(1, &[3, 2]));
        assert_ne!(derive_seed(1, &[]), derive_seed(2, &[]));
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let mut idx = sample_indices_without_replacement(&mut rng, 20, 20);
            idx.sort_unstable();
            assert_eq!(idx, (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn sample_more_than_n_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_indices_without_replacement(&mut rng, 3, 4);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            for i in sample_indices_without_replacement(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        // Each index expected 3000 times.
        for &c in &counts {
            assert!((f64::from(c) - 3000.0).abs() < 300.0, "counts {counts:?}");
        }
    }

    #[test]
    fn subsample_full_always_hits_min() {
        let mut rng = StdRng::seed_from_u64(1);
        let values = [5u32, 9, 3, 7];
        let (emin, p) = subsample_min_statistics(&mut rng, &values, 4, 100);
        assert_eq!(emin, 3.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn subsample_single_expected_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let values = [10u32, 20];
        let (emin, p) = subsample_min_statistics(&mut rng, &values, 1, 50_000);
        assert!((emin - 15.0).abs() < 0.5);
        assert!((p - 0.5).abs() < 0.02);
    }

    #[test]
    fn exact_probability_matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<u32> = (0..100).map(|i| 1000 + (i * 37) % 50).collect();
        for &k in &[1usize, 5, 20, 50] {
            let exact = exact_min_hit_probability(&values, k);
            let (_, mc) = subsample_min_statistics(&mut rng, &values, k, 20_000);
            assert!((exact - mc).abs() < 0.02, "k={k}: exact {exact} vs mc {mc}");
        }
    }

    #[test]
    fn exact_probability_monotone_in_k() {
        let values: Vec<u32> = (0..1000).map(|i| 500 + (i % 97)).collect();
        let mut prev = 0.0;
        for k in [1, 3, 5, 10, 50, 500] {
            let p = exact_min_hit_probability(&values, k);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn exact_probability_certain_when_k_exceeds_non_min() {
        // 3 values, 2 are the minimum: any 2-subset must include a min.
        let values = [1u32, 1, 9];
        assert_eq!(exact_min_hit_probability(&values, 2), 1.0);
    }
}
