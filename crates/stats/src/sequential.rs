//! Sequential early-stopping machinery for reliable-minimum discovery.
//!
//! DiscoRD's observation: bounding a row's reliable RDT does not need a
//! fixed (large) number of measurement epochs — it needs enough epochs
//! that the probability of a *future* epoch undercutting the running
//! minimum is provably small. Each epoch after the last new minimum is a
//! Bernoulli trial with zero observed successes ("undercuts"), so after
//! `k` quiet epochs the exact Clopper–Pearson bound says the undercut
//! probability is at most `1 - alpha^(1/k)` with confidence `1 - alpha`
//! (see [`crate::binomial`]). [`StoppingRule`] inverts that: given a
//! confidence target and an undercut tolerance `epsilon`, it derives the
//! quiet streak length that certifies `P(undercut) <= epsilon`, and
//! [`SequentialMin`] tracks the streak as observations arrive.
//!
//! Censored epochs (the row did not flip anywhere in the sweep range)
//! count as quiet: a non-flip can never undercut the minimum.

use crate::binomial::zero_success_upper_confidence;
use crate::error::StatsError;

/// When to stop measuring a row: once `quiet_epochs` consecutive epochs
/// have failed to undercut the running minimum, where `quiet_epochs` is
/// the smallest streak certifying `P(undercut) <= epsilon` at the
/// configured confidence — bounded below by `min_epochs` and above by
/// `max_epochs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    confidence: f64,
    epsilon: f64,
    min_epochs: u32,
    max_epochs: u32,
}

impl StoppingRule {
    /// Builds a validated rule.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] when `confidence` or `epsilon`
    /// is outside `(0, 1)` (including NaN), `min_epochs == 0`, or
    /// `max_epochs < min_epochs`.
    pub fn new(
        confidence: f64,
        epsilon: f64,
        min_epochs: u32,
        max_epochs: u32,
    ) -> Result<Self, StatsError> {
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(StatsError::InvalidParameter("confidence must be in (0, 1)"));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(StatsError::InvalidParameter("epsilon must be in (0, 1)"));
        }
        if min_epochs == 0 {
            return Err(StatsError::InvalidParameter("min_epochs must be at least 1"));
        }
        if max_epochs < min_epochs {
            return Err(StatsError::InvalidParameter("max_epochs must be >= min_epochs"));
        }
        Ok(StoppingRule { confidence, epsilon, min_epochs, max_epochs })
    }

    /// The confidence target.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The undercut-probability tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The epoch floor: the rule never stops earlier.
    pub fn min_epochs(&self) -> u32 {
        self.min_epochs
    }

    /// The epoch ceiling: the rule always stops here.
    pub fn max_epochs(&self) -> u32 {
        self.max_epochs
    }

    /// The quiet streak length the rule waits for: the smallest `k` with
    /// `(1 - epsilon)^k <= 1 - confidence` — after `k` consecutive
    /// non-undercutting epochs, an undercut probability above `epsilon`
    /// is rejected at the confidence level. Monotone nondecreasing in
    /// `confidence` and nonincreasing in `epsilon`.
    pub fn required_quiet_epochs(&self) -> u32 {
        // ceil(ln(1-c) / ln(1-eps)), computed in f64 and clamped to >= 1.
        let k = ((1.0 - self.confidence).ln() / (1.0 - self.epsilon).ln()).ceil();
        if k.is_finite() && k >= 1.0 {
            (k as u64).min(u64::from(u32::MAX)) as u32
        } else {
            1
        }
    }

    /// Whether measurement of a row tracked by `state` should stop now.
    /// Never true before `min_epochs`; always true at `max_epochs`.
    pub fn should_stop(&self, state: &SequentialMin) -> bool {
        if state.epochs() < u64::from(self.min_epochs) {
            return false;
        }
        if state.epochs() >= u64::from(self.max_epochs) {
            return true;
        }
        state.quiet_epochs() >= u64::from(self.required_quiet_epochs())
    }

    /// The exact upper confidence bound on the undercut probability given
    /// the current quiet streak (`None` before the first epoch). When
    /// the rule stopped via its quiet streak (not the `max_epochs`
    /// ceiling), this is at most `epsilon`.
    pub fn undercut_upper_bound(&self, state: &SequentialMin) -> Option<f64> {
        let quiet = state.quiet_epochs();
        if quiet == 0 {
            return None;
        }
        zero_success_upper_confidence(quiet, 1.0 - self.confidence).ok()
    }
}

/// Running minimum of a measurement stream plus the quiet-streak counter
/// the stopping rule consumes. Feed it every epoch's outcome in order —
/// `Some(value)` for a measured RDT, `None` for a censored epoch — via
/// [`SequentialMin::observe`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequentialMin {
    min: Option<u32>,
    epochs: u64,
    censored: u64,
    quiet: u64,
}

impl SequentialMin {
    /// Fresh state: no epochs observed.
    pub fn new() -> Self {
        SequentialMin::default()
    }

    /// Folds one epoch's outcome into the state. A value strictly below
    /// the current minimum resets the quiet streak; anything else —
    /// equal values, larger values, censored epochs — extends it. The
    /// first measured value starts a fresh streak (it trivially "is" the
    /// minimum, with no evidence about undercuts yet).
    pub fn observe(&mut self, value: Option<u32>) {
        self.epochs += 1;
        match value {
            None => {
                self.censored += 1;
                self.quiet += 1;
            }
            Some(v) => match self.min {
                Some(m) if v >= m => self.quiet += 1,
                _ => {
                    self.min = Some(v);
                    self.quiet = 0;
                }
            },
        }
    }

    /// The running minimum, `None` until a value has been measured.
    pub fn min(&self) -> Option<u32> {
        self.min
    }

    /// Epochs observed so far (measured + censored).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Censored epochs observed so far.
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// Consecutive epochs since the minimum last moved (or since the
    /// start, while everything is censored).
    pub fn quiet_epochs(&self) -> u64 {
        self.quiet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(confidence: f64, epsilon: f64) -> StoppingRule {
        StoppingRule::new(confidence, epsilon, 1, u32::MAX).unwrap()
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(StoppingRule::new(0.0, 0.1, 1, 10).is_err());
        assert!(StoppingRule::new(1.0, 0.1, 1, 10).is_err());
        assert!(StoppingRule::new(0.9, 0.0, 1, 10).is_err());
        assert!(StoppingRule::new(0.9, 1.0, 1, 10).is_err());
        assert!(StoppingRule::new(f64::NAN, 0.1, 1, 10).is_err());
        assert!(StoppingRule::new(0.9, f64::NAN, 1, 10).is_err());
        assert!(StoppingRule::new(0.9, 0.1, 0, 10).is_err());
        assert!(StoppingRule::new(0.9, 0.1, 10, 9).is_err());
    }

    #[test]
    fn required_quiet_epochs_matches_hand_computation() {
        // (1 - 0.05)^k <= 0.1  =>  k >= ln(0.1)/ln(0.95) = 44.89...
        assert_eq!(rule(0.9, 0.05).required_quiet_epochs(), 45);
        // (1 - 0.5)^k <= 0.5  =>  k >= 1.
        assert_eq!(rule(0.5, 0.5).required_quiet_epochs(), 1);
    }

    #[test]
    fn required_quiet_epochs_is_monotone_in_confidence_and_epsilon() {
        let mut prev = 0;
        for &c in &[0.5, 0.8, 0.9, 0.95, 0.99, 0.999] {
            let k = rule(c, 0.05).required_quiet_epochs();
            assert!(k >= prev, "quiet requirement must not shrink as confidence grows");
            prev = k;
        }
        let mut prev = u32::MAX;
        for &eps in &[0.01, 0.05, 0.1, 0.3] {
            let k = rule(0.9, eps).required_quiet_epochs();
            assert!(k <= prev, "quiet requirement must not grow as epsilon loosens");
            prev = k;
        }
    }

    #[test]
    fn never_stops_before_min_epochs_and_always_at_max() {
        let rule = StoppingRule::new(0.5, 0.5, 5, 8).unwrap();
        let mut state = SequentialMin::new();
        for epoch in 1..=8u32 {
            state.observe(Some(100)); // quiet from epoch 2 onward
            let stop = rule.should_stop(&state);
            if epoch < 5 {
                assert!(!stop, "stopped at epoch {epoch} < min_epochs");
            }
            if epoch >= 5 {
                assert!(stop, "streak satisfied and floor passed at epoch {epoch}");
            }
        }
        // A stream that keeps undercutting never satisfies the streak but
        // must still stop at max_epochs.
        let rule = StoppingRule::new(0.99, 0.01, 1, 6).unwrap();
        let mut state = SequentialMin::new();
        for v in (0..6u32).rev() {
            state.observe(Some(v));
        }
        assert_eq!(state.quiet_epochs(), 0);
        assert!(rule.should_stop(&state), "max_epochs is a hard ceiling");
    }

    #[test]
    fn undercuts_reset_the_streak_and_ties_extend_it() {
        let mut state = SequentialMin::new();
        state.observe(Some(50));
        assert_eq!((state.min(), state.quiet_epochs()), (Some(50), 0));
        state.observe(Some(60));
        state.observe(Some(50)); // tie: not an undercut
        state.observe(None); // censored: not an undercut
        assert_eq!((state.min(), state.quiet_epochs()), (Some(50), 3));
        state.observe(Some(49));
        assert_eq!((state.min(), state.quiet_epochs()), (Some(49), 0));
        assert_eq!(state.epochs(), 5);
        assert_eq!(state.censored(), 1);
    }

    #[test]
    fn undercut_bound_tracks_the_closed_form() {
        let rule = rule(0.9, 0.05);
        let mut state = SequentialMin::new();
        assert!(rule.undercut_upper_bound(&state).is_none());
        state.observe(Some(100));
        assert!(rule.undercut_upper_bound(&state).is_none(), "no quiet evidence yet");
        for _ in 0..45 {
            state.observe(Some(120));
        }
        let bound = rule.undercut_upper_bound(&state).unwrap();
        assert!((bound - (1.0 - 0.1f64.powf(1.0 / 45.0))).abs() < 1e-12);
        assert!(bound <= rule.epsilon(), "streak-satisfied bound must be within tolerance");
    }

    #[test]
    fn stop_epoch_is_monotone_in_confidence_on_a_fixed_stream() {
        // One fixed synthetic stream; higher confidence must never stop
        // earlier on it.
        let stream: Vec<Option<u32>> =
            (0..200u32).map(|i| Some(1_000 + (i.wrapping_mul(2_654_435_761) % 37))).collect();
        let stop_epoch = |confidence: f64| -> u64 {
            let rule = StoppingRule::new(confidence, 0.1, 3, 200).unwrap();
            let mut state = SequentialMin::new();
            for v in &stream {
                state.observe(*v);
                if rule.should_stop(&state) {
                    return state.epochs();
                }
            }
            state.epochs()
        };
        let mut prev = 0;
        for &c in &[0.5, 0.7, 0.9, 0.95, 0.99] {
            let e = stop_epoch(c);
            assert!(e >= prev, "confidence {c} stopped at {e}, earlier than {prev}");
            prev = e;
        }
    }
}
