//! Statistics substrate for the VRD reproduction.
//!
//! This crate provides the numerical building blocks used throughout the
//! workspace to analyze read-disturbance-threshold (RDT) measurement series
//! the way the VRD paper does:
//!
//! - [`descriptive`] — means, variances, coefficients of variation,
//!   percentiles, and summary records.
//! - [`boxplot`] — five-number box-and-whiskers summaries following the
//!   paper's quartile convention (footnote 6: quartiles are medians of the
//!   ordered halves).
//! - [`histogram`] — equal-width histograms with unique-value bin counts
//!   (Fig. 4 of the paper).
//! - [`runlength`] — run-length encoding of equal consecutive values
//!   (Fig. 5).
//! - [`acf`] — sample autocorrelation functions (Fig. 6).
//! - [`chi_square`] — Pearson chi-square goodness-of-fit against a fitted
//!   normal distribution (§4.1), with the required special functions
//!   implemented in [`special`].
//! - [`normal`] — normal/lognormal sampling (Box–Muller) and CDF/PDF.
//! - [`montecarlo`] — deterministic seed derivation and subsampling
//!   utilities for the paper's Monte-Carlo analyses (§5.1).
//! - [`scurve`] — sorted percentile curves (Fig. 7a).
//! - [`binomial`] — binomial pmf/cdf and exact Clopper–Pearson
//!   confidence bounds.
//! - [`sequential`] — the DiscoRD-style early-stopping rule bounding a
//!   row's reliable minimum RDT at a confidence target.
//!
//! # Examples
//!
//! ```
//! use vrd_stats::descriptive::coefficient_of_variation;
//!
//! let series = [1740.0, 2040.0, 1900.0, 1880.0];
//! let cv = coefficient_of_variation(&series).unwrap();
//! assert!(cv > 0.0 && cv < 1.0);
//! ```

pub mod acf;
pub mod binomial;
pub mod boxplot;
pub mod chi_square;
pub mod descriptive;
pub mod error;
pub mod histogram;
pub mod ks;
pub mod montecarlo;
pub mod normal;
pub mod runlength;
pub mod scurve;
pub mod sequential;
pub mod special;

pub use acf::{autocorrelation, white_noise_bound};
pub use binomial::{
    binomial_cdf, binomial_pmf, binomial_sf, binomial_upper_confidence,
    zero_success_upper_confidence,
};
pub use boxplot::BoxSummary;
pub use chi_square::{chi_square_gof_normal, ChiSquareResult};
pub use descriptive::{coefficient_of_variation, mean, percentile, stddev, Summary};
pub use error::StatsError;
pub use histogram::Histogram;
pub use ks::{ks_test_normal, ks_test_two_sample, KsResult};
pub use montecarlo::{derive_seed, sample_indices_without_replacement};
pub use runlength::run_length_histogram;
pub use scurve::SCurve;
pub use sequential::{SequentialMin, StoppingRule};
