//! Experiment scale options.
//!
//! Defaults finish each experiment in seconds to a few minutes in
//! `--release`; `--paper` switches every knob to the paper's full scale
//! (expect long runs, exactly like the paper's 29-day footnote warns).

use serde::{Deserialize, Serialize};

use crate::sinks::LogFormat;

/// Scale and scope configuration shared by all experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Options {
    /// Measurements per row for the foundational study (paper: 100,000).
    pub foundational_measurements: u32,
    /// Measurements per row per condition for the in-depth study
    /// (paper: 1,000).
    pub indepth_measurements: u32,
    /// Rows selected per segment in the in-depth study (paper: 50).
    pub picks_per_segment: usize,
    /// Confidence target of the discovery study's stopping rule.
    pub discovery_confidence: f64,
    /// Epoch floor of the discovery study (no row stops earlier).
    pub discovery_min_epochs: u32,
    /// Epoch ceiling of the discovery study (every row stops here at
    /// the latest; also the fixed budget the savings are quoted
    /// against).
    pub discovery_max_epochs: u32,
    /// Rows scanned per segment (paper: 1,024).
    pub segment_rows: u32,
    /// Use the paper's full 4×3×3 condition grid instead of the reduced
    /// 4×2×2 default.
    pub full_grid: bool,
    /// Guardbanded hammer trials per margin (paper: 10,000).
    pub guardband_trials: u32,
    /// Rows per module in the guardband experiment (paper: 50).
    pub guardband_rows: usize,
    /// Workload mixes for Fig. 14 (paper: 15).
    pub mixes: usize,
    /// Simulated nanoseconds per Fig.-14 run (paper: full workloads).
    pub sim_cycles: u64,
    /// Rows per mitigation-profile region in the spatial-aware defenses
    /// sweep (`--region-rows`; the default matches the device model's
    /// subarray size, so each region carries one subarray's spatial
    /// factor).
    pub region_rows: u32,
    /// Attacker activations per spatial-attack simulation in the
    /// defenses sweep (`--sweep-acts`).
    pub sweep_activations: u64,
    /// Module names to test; empty = the full Table-1 roster.
    pub modules: Vec<String>,
    /// Device-family scope (`--family ddr4|hbm2|all`), applied on top of
    /// the `--modules` filter.
    pub family: vrd_dram::fleet::FleetScope,
    /// Root RNG seed.
    pub seed: u64,
    /// Device-model row size in bytes (smaller is faster; the paper's
    /// rows are 8,192 bytes).
    pub row_bytes: u32,
    /// Output directory for JSON results.
    pub out_dir: String,
    /// Worker threads for campaign parallelism (0 = all cores).
    pub threads: usize,
    /// This process's shard of the module roster (with
    /// [`shard_count`](Self::shard_count); default `0` of `1` = no
    /// sharding). Sharding is round-robin over the roster and does not
    /// change any module's results — unit seeds derive from module
    /// names, not roster positions.
    pub shard_index: usize,
    /// Total shards the roster is split across.
    pub shard_count: usize,
    /// Root directory for crash-safe campaign checkpoints (`None` = no
    /// checkpointing). Each campaign keeps its journal in its own
    /// subdirectory (`<dir>/foundational`, `<dir>/in_depth`).
    pub checkpoint_dir: Option<String>,
    /// Continue from an existing checkpoint instead of refusing to
    /// touch it.
    pub resume: bool,
    /// Fault injection: simulate a crash (process exit) after this many
    /// units have been committed to the journal. Requires
    /// [`checkpoint_dir`](Self::checkpoint_dir).
    pub fail_after_units: Option<u64>,
    /// Write every campaign observability event as JSONL to this path
    /// (`--trace-out`; `None` = no trace).
    pub trace_out: Option<String>,
    /// Terminal output encoding (`--log-format human|json`).
    pub log_format: LogFormat,
    /// RDT search strategy (`--search linear|adaptive`). Both produce
    /// byte-identical campaign results; adaptive (the default) spends
    /// O(log grid) hammer sessions per measurement instead of O(grid).
    pub search: vrd_core::SearchStrategy,
    /// Hammer-session evaluation strategy (`--eval scalar|batch`). Both
    /// produce byte-identical campaign results; batch (the default)
    /// evaluates a whole row per measurement epoch in one
    /// struct-of-arrays pass instead of per-session command programs.
    pub eval: vrd_core::EvalStrategy,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            foundational_measurements: 10_000,
            indepth_measurements: 300,
            picks_per_segment: 10,
            discovery_confidence: 0.9,
            discovery_min_epochs: 10,
            discovery_max_epochs: 400,
            segment_rows: 256,
            full_grid: false,
            guardband_trials: 1_500,
            guardband_rows: 8,
            mixes: 5,
            sim_cycles: 400_000,
            region_rows: 512,
            sweep_activations: 300_000,
            modules: Vec::new(),
            family: vrd_dram::fleet::FleetScope::All,
            seed: 2025,
            row_bytes: 2048,
            out_dir: "results".to_owned(),
            threads: 0,
            shard_index: 0,
            shard_count: 1,
            checkpoint_dir: None,
            resume: false,
            fail_after_units: None,
            trace_out: None,
            log_format: LogFormat::Human,
            search: vrd_core::SearchStrategy::default(),
            eval: vrd_core::EvalStrategy::default(),
        }
    }
}

impl Options {
    /// The paper's full scale.
    pub fn paper() -> Self {
        Options {
            foundational_measurements: 100_000,
            indepth_measurements: 1_000,
            picks_per_segment: 50,
            segment_rows: 1_024,
            full_grid: true,
            guardband_trials: 10_000,
            guardband_rows: 50,
            mixes: 15,
            sim_cycles: 2_000_000,
            sweep_activations: 2_000_000,
            discovery_max_epochs: 1_000,
            row_bytes: 8_192,
            ..Options::default()
        }
    }

    /// A minimal scale for integration tests.
    pub fn smoke() -> Self {
        Options {
            foundational_measurements: 60,
            indepth_measurements: 40,
            picks_per_segment: 2,
            segment_rows: 48,
            full_grid: false,
            guardband_trials: 60,
            guardband_rows: 2,
            mixes: 1,
            sim_cycles: 60_000,
            sweep_activations: 60_000,
            discovery_max_epochs: 120,
            modules: vec!["M1".into(), "S0".into(), "Chip1".into()],
            row_bytes: 512,
            threads: 2,
            ..Options::default()
        }
    }

    /// The module specs in scope: the roster (or `--modules` subset)
    /// restricted to the `--family` scope, reduced to this process's
    /// shard.
    pub fn specs(&self) -> Vec<vrd_dram::ModuleSpec> {
        use vrd_dram::fleet::FleetScope;
        let all = vrd_dram::ModuleSpec::table1();
        let scoped: Vec<vrd_dram::ModuleSpec> = all
            .into_iter()
            .filter(|s| self.modules.is_empty() || self.modules.iter().any(|m| m == &s.name))
            .filter(|s| match self.family {
                FleetScope::All => true,
                FleetScope::Ddr4 => s.standard == vrd_dram::DramStandard::Ddr4,
                FleetScope::Hbm2 => s.standard == vrd_dram::DramStandard::Hbm2,
            })
            .collect();
        vrd_dram::fleet::shard_specs(&scoped, self.shard_index, self.shard_count)
    }

    /// The executor configuration for campaign parallelism.
    pub fn exec_config(&self) -> vrd_core::exec::ExecConfig {
        vrd_core::exec::ExecConfig::new(self.threads, self.seed)
            .to_builder()
            .search(self.search)
            .eval(self.eval)
            .build()
    }

    /// The discovery-campaign configuration at this scale. Selection
    /// parameters (segments, picks, seed, row size) match the in-depth
    /// campaign's, so both select identical rows.
    pub fn discovery_config(&self) -> vrd_core::discovery::DiscoveryConfig {
        vrd_core::discovery::DiscoveryConfig::builder()
            .confidence(self.discovery_confidence)
            .min_epochs(self.discovery_min_epochs)
            .max_epochs(self.discovery_max_epochs)
            .segment_rows(self.segment_rows)
            .picks_per_segment(self.picks_per_segment)
            .seed(self.seed)
            .row_bytes(self.row_bytes)
            .build()
    }

    /// The in-depth condition grid at this scale.
    pub fn condition_grid(&self) -> Vec<vrd_dram::TestConditions> {
        use vrd_dram::conditions::{T_AGG_ON_MIN_TRAS_NS, T_AGG_ON_TREFI_NS};
        use vrd_dram::{DataPattern, TestConditions};
        if self.full_grid {
            return TestConditions::full_grid();
        }
        let mut grid = Vec::new();
        for pattern in DataPattern::ALL {
            for t in [T_AGG_ON_MIN_TRAS_NS, T_AGG_ON_TREFI_NS] {
                for temp in [50.0, 80.0] {
                    grid.push(TestConditions { pattern, t_agg_on_ns: t, temperature_c: temp });
                }
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scope_is_full_roster() {
        assert_eq!(Options::default().specs().len(), 25);
    }

    #[test]
    fn module_filter_applies() {
        let o = Options { modules: vec!["M1".into(), "Chip0".into()], ..Options::default() };
        let specs = o.specs();
        assert_eq!(specs.len(), 2);
    }

    #[test]
    fn family_filter_applies() {
        use vrd_dram::fleet::FleetScope;
        let ddr4 = Options { family: FleetScope::Ddr4, ..Options::default() };
        assert_eq!(ddr4.specs().len(), 21);
        let hbm2 = Options { family: FleetScope::Hbm2, ..Options::default() };
        assert_eq!(hbm2.specs().len(), 4);
        assert!(hbm2.specs().iter().all(|s| s.name.starts_with("Chip")));
        // Composes with --modules: intersection, not union.
        let mixed = Options {
            family: FleetScope::Hbm2,
            modules: vec!["M1".into(), "Chip0".into()],
            ..Options::default()
        };
        assert_eq!(mixed.specs().len(), 1);
        assert_eq!(mixed.specs()[0].name, "Chip0");
    }

    #[test]
    fn grids() {
        assert_eq!(Options::default().condition_grid().len(), 16);
        assert_eq!(Options::paper().condition_grid().len(), 36);
    }

    #[test]
    fn shard_options_split_the_scope() {
        let shards: Vec<Vec<String>> = (0..3)
            .map(|i| {
                let o = Options { shard_index: i, shard_count: 3, ..Options::default() };
                o.specs().into_iter().map(|s| s.name).collect()
            })
            .collect();
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 25);
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn paper_scale_matches_paper() {
        let p = Options::paper();
        assert_eq!(p.foundational_measurements, 100_000);
        assert_eq!(p.indepth_measurements, 1_000);
        assert_eq!(p.picks_per_segment, 50);
        assert_eq!(p.guardband_trials, 10_000);
        assert_eq!(p.mixes, 15);
    }
}
