//! CLI event sinks: where the experiments binary turns the typed
//! observability stream ([`vrd_core::obs`]) into terminal output.
//!
//! `--log-format human` (the default) keeps the familiar
//! `[vrd-exp]`-prefixed stderr status lines and plain-text stdout
//! tables; `--log-format json` emits the same information as serialized
//! [`Event`]s, one JSON object per line ([`Event::Message`] on stderr,
//! [`Event::Artifact`] on stdout). Library crates print nothing — every
//! byte the binary writes flows through this module (or through the
//! `--trace-out` stream, [`vrd_core::obs::trace::JsonlSink`]).

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use vrd_core::exec::Progress;
use vrd_core::obs::{Event, Level, Observer};

/// Output encoding for the binary's status stream and artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LogFormat {
    /// `[vrd-exp]`-prefixed stderr lines, rendered tables on stdout.
    #[default]
    Human,
    /// One serialized [`Event`] per line: `Message`s on stderr,
    /// `Artifact`s on stdout.
    Json,
}

impl FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "human" => Ok(LogFormat::Human),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (expected human or json)")),
        }
    }
}

static LOG_FORMAT: OnceLock<LogFormat> = OnceLock::new();

/// Fixes the process-wide log format. The first call wins; before any
/// call, [`LogFormat::Human`] applies (so early parse errors still
/// reach the terminal).
pub fn set_log_format(format: LogFormat) {
    let _ = LOG_FORMAT.set(format);
}

/// The process-wide log format.
pub fn log_format() -> LogFormat {
    LOG_FORMAT.get().copied().unwrap_or_default()
}

/// Emits a status line as an [`Event::Message`] at the given severity:
/// `[vrd-exp] {body}` on stderr in human mode, a JSON event line in
/// json mode.
pub fn message(level: Level, body: impl Into<String>) {
    let body = body.into();
    match log_format() {
        LogFormat::Human => eprintln!("[vrd-exp] {body}"),
        LogFormat::Json => {
            let event = Event::Message { level, body };
            eprintln!("{}", serde_json::to_string(&event).expect("event serializes"));
        }
    }
}

/// An [`Level::Info`] status line.
pub fn status(body: impl Into<String>) {
    message(Level::Info, body);
}

/// An [`Level::Error`] status line.
pub fn error(body: impl Into<String>) {
    message(Level::Error, body);
}

/// Emits a rendered figure/table: the raw text on stdout in human mode,
/// an [`Event::Artifact`] JSON line in json mode.
pub fn artifact(id: &str, text: impl Into<String>) {
    let text = text.into();
    match log_format() {
        LogFormat::Human => println!("{text}"),
        LogFormat::Json => {
            let event = Event::Artifact { id: id.to_owned(), text };
            println!("{}", serde_json::to_string(&event).expect("event serializes"));
        }
    }
}

/// Milliseconds between heartbeat lines.
const HEARTBEAT_PERIOD_MS: u64 = 5_000;

/// Event-driven campaign heartbeat: prints progress (units done,
/// bitflips found, simulated test time) at most once per period,
/// triggered by unit lifecycle events instead of a monitor thread.
/// Campaigns shorter than one period print nothing, matching the old
/// thread-based heartbeat this sink replaces.
pub struct CliProgressSink<'a> {
    label: String,
    progress: &'a Progress,
    started: Instant,
    /// Milliseconds after `started` of the last heartbeat (0 = none yet,
    /// which also delays the first beat by one full period).
    last_beat_ms: AtomicU64,
}

impl<'a> CliProgressSink<'a> {
    /// A heartbeat for one campaign, reading the shared `progress`
    /// counters the campaign accumulates into.
    pub fn new(label: impl Into<String>, progress: &'a Progress) -> Self {
        CliProgressSink {
            label: label.into(),
            progress,
            started: Instant::now(),
            last_beat_ms: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for CliProgressSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CliProgressSink").field("label", &self.label).finish()
    }
}

impl Observer for CliProgressSink<'_> {
    fn on_event(&self, event: &Event) {
        if !matches!(event, Event::UnitFinished { .. } | Event::UnitRestored { .. }) {
            return;
        }
        let now_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_beat_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < HEARTBEAT_PERIOD_MS {
            return;
        }
        // One beat per period even when several workers cross the
        // boundary together: only the thread that wins the CAS prints.
        if self
            .last_beat_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let snap = self.progress.snapshot();
        if snap.units_total > 0 {
            status(format!(
                "{}: {}/{} units, {} flips, {:.2} s simulated",
                self.label,
                snap.units_done,
                snap.units_total,
                snap.flips_found,
                snap.sim_time_s(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use vrd_core::exec::UnitKey;
    use vrd_core::obs::OutcomeKind;

    use super::*;

    #[test]
    fn log_format_parses_both_names_and_rejects_others() {
        assert_eq!("human".parse::<LogFormat>().unwrap(), LogFormat::Human);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn heartbeat_stays_silent_within_the_first_period() {
        // The sink only prints via `status`, so this cannot capture the
        // output — but it can pin that a short campaign never reaches
        // the print path (the beat timestamp stays at 0).
        let progress = Progress::new();
        let sink = CliProgressSink::new("test", &progress);
        sink.on_event(&Event::UnitFinished {
            key: UnitKey::module("M1"),
            outcome: OutcomeKind::Completed,
            wall_ns: 1,
            sim_time_ns: 1.0,
            sim_energy_j: 0.0,
            bitflips: 0,
        });
        assert_eq!(sink.last_beat_ms.load(Ordering::Relaxed), 0);
    }
}
