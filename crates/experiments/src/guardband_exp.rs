//! §6.4 guardband experiment (Fig. 16) and the worst-BER bridge into
//! Table 3.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use vrd_core::guardband::{
    run_guardband, worst_bit_error_rate, GuardbandConfig, RowGuardbandResult,
};

use crate::opts::Options;
use crate::render::{sci, Table};
use crate::runner::map_modules;

/// The guardband study across modules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuardbandStudy {
    /// Per-module row results.
    pub per_module: Vec<(String, Vec<RowGuardbandResult>)>,
    /// Row size used (bits), for BER conversion.
    pub row_bits: u32,
}

/// Runs the guardband experiment across the module scope (DDR4 only, as
/// in the paper's §6.4).
pub fn run(opts: &Options) -> GuardbandStudy {
    let results = map_modules(opts, |spec| {
        if spec.standard != vrd_dram::DramStandard::Ddr4 {
            return (spec.name.clone(), Vec::new());
        }
        let cfg = GuardbandConfig {
            trials: opts.guardband_trials,
            rows: opts.guardband_rows,
            seed: opts.seed,
            row_bytes: opts.row_bytes,
            ..GuardbandConfig::default()
        };
        (spec.name.clone(), run_guardband(spec, &cfg))
    });
    GuardbandStudy { per_module: results, row_bits: opts.row_bytes * 8 }
}

/// Histogram of unique bitflips per row at the given margin (Fig. 16).
pub fn unique_flip_histogram(study: &GuardbandStudy, margin: f64) -> BTreeMap<usize, u32> {
    let mut hist = BTreeMap::new();
    for (_, rows) in &study.per_module {
        for row in rows {
            for m in &row.per_margin {
                if (m.margin - margin).abs() < 1e-9 {
                    *hist.entry(m.unique_flip_bits.len()).or_insert(0) += 1;
                }
            }
        }
    }
    hist
}

/// Renders Fig. 16 plus the §6.4 observations.
pub fn render_fig16(study: &GuardbandStudy) -> String {
    let hist = unique_flip_histogram(study, 0.1);
    let mut table = Table::new(["unique bitflips", "# of rows"]);
    for (flips, count) in &hist {
        table.row([flips.to_string(), count.to_string()]);
    }
    let max_chips = study
        .per_module
        .iter()
        .flat_map(|(_, rows)| rows.iter())
        .flat_map(|r| r.per_margin.iter())
        .filter(|m| (m.margin - 0.1).abs() < 1e-9)
        .map(|m| m.unique_chips)
        .max()
        .unwrap_or(0);
    let max_per_codeword = study
        .per_module
        .iter()
        .flat_map(|(_, rows)| rows.iter())
        .flat_map(|r| r.per_margin.iter())
        .filter(|m| (m.margin - 0.1).abs() < 1e-9)
        .map(|m| m.max_flips_per_secded_word)
        .max()
        .unwrap_or(0);
    let worst_ber = worst_margin_ber(study, 0.1);
    let wide_margin_flips: usize = study
        .per_module
        .iter()
        .flat_map(|(_, rows)| rows.iter())
        .flat_map(|r| r.per_margin.iter())
        .filter(|m| m.margin > 0.15)
        .map(|m| m.unique_flip_bits.len())
        .sum();
    format!(
        "Fig. 16 — unique bitflips per row at a 10% safety margin:\n{}\n\
         worst-case chips affected per module: {max_chips} (paper: up to 4)\n\
         worst-case flips in one SECDED codeword: {max_per_codeword} (paper: at most 1)\n\
         worst observed bit error rate at 10% margin: {} (paper: 7.6e-5)\n\
         total unique flips at margins > 10%: {wide_margin_flips} (paper: none beyond 1 per row)\n",
        table.render(),
        sci(worst_ber),
    )
}

/// The worst bit error rate across modules at a margin.
pub fn worst_margin_ber(study: &GuardbandStudy, margin: f64) -> f64 {
    study
        .per_module
        .iter()
        .map(|(_, rows)| worst_bit_error_rate(rows, margin, study.row_bits))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn smoke_study() -> &'static GuardbandStudy {
        static STUDY: OnceLock<GuardbandStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut opts = Options::smoke();
            opts.modules = vec!["M4".into(), "S0".into()];
            opts.guardband_trials = 120;
            opts.guardband_rows = 3;
            run(&opts)
        })
    }

    #[test]
    fn study_produces_rows() {
        let study = smoke_study();
        let rows: usize = study.per_module.iter().map(|(_, r)| r.len()).sum();
        assert!(rows > 0, "guardband study must test rows");
    }

    #[test]
    fn histogram_totals_match_rows() {
        let study = smoke_study();
        let hist = unique_flip_histogram(study, 0.1);
        let total: u32 = hist.values().sum();
        let rows: usize = study
            .per_module
            .iter()
            .flat_map(|(_, rows)| rows.iter())
            .filter(|r| r.per_margin.iter().any(|m| (m.margin - 0.1).abs() < 1e-9))
            .count();
        assert_eq!(total as usize, rows);
    }

    #[test]
    fn tighter_margin_flips_at_least_as_much() {
        let study = smoke_study();
        let flips_at = |margin: f64| -> usize {
            study
                .per_module
                .iter()
                .flat_map(|(_, rows)| rows.iter())
                .flat_map(|r| r.per_margin.iter())
                .filter(|m| (m.margin - margin).abs() < 1e-9)
                .map(|m| m.unique_flip_bits.len())
                .sum()
        };
        assert!(flips_at(0.1) >= flips_at(0.5));
    }

    #[test]
    fn render_contains_key_lines() {
        let s = render_fig16(smoke_study());
        assert!(s.contains("unique bitflips"));
        assert!(s.contains("bit error rate"));
    }
}
