//! Plain-text table rendering for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (short rows are padded with blanks).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(cell);
                if i + 1 < widths.len() {
                    line.extend(std::iter::repeat_n(' ', width - cell.chars().count() + 2));
                }
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` fractional digits.
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a probability in scientific notation when tiny.
pub fn sci(value: f64) -> String {
    if value == 0.0 {
        "0".to_owned()
    } else if value.abs() < 1e-3 {
        format!("{value:.2e}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
        assert!(lines[3].starts_with("333"));
    }

    #[test]
    fn short_rows_pad() {
        let mut t = Table::new(["x", "y", "z"]);
        t.row(["only"]);
        let out = t.render();
        assert!(out.contains("only"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.48e-5), "1.48e-5");
        assert_eq!(sci(0.5), "0.5000");
    }
}
