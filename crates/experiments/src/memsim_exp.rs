//! Fig. 14: mitigation performance overheads under guardbanded RDTs.

use serde::{Deserialize, Serialize};

use vrd_memsim::system::{SimConfig, System};
use vrd_memsim::workload::WorkloadParams;
use vrd_memsim::MitigationKind;

use crate::opts::Options;
use crate::render::{f, Table};

/// The RDT values evaluated in Fig. 14.
pub const RDT_VALUES: [u32; 2] = [1024, 128];

/// The guardband margins evaluated in Fig. 14.
pub const MARGINS: [f64; 4] = [0.0, 0.10, 0.25, 0.50];

/// Normalized performance of one mitigation at one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig14Point {
    /// Mitigation evaluated.
    pub mitigation: MitigationKind,
    /// Nominal RDT.
    pub rdt: u32,
    /// Guardband margin.
    pub margin: f64,
    /// Effective threshold after the guardband.
    pub effective_threshold: u32,
    /// Weighted speedup normalized to the unmitigated baseline, averaged
    /// over the workload mixes.
    pub normalized_performance: f64,
}

/// The full Fig. 14 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Result {
    /// All points.
    pub points: Vec<Fig14Point>,
    /// Number of workload mixes averaged.
    pub mixes: usize,
}

/// Runs the Fig. 14 sweep.
pub fn run(opts: &Options) -> Fig14Result {
    let mixes: Vec<[WorkloadParams; 4]> =
        WorkloadParams::paper_mixes().into_iter().take(opts.mixes.max(1)).collect();
    let mut points = Vec::new();
    for &rdt in &RDT_VALUES {
        for &margin in &MARGINS {
            let effective = ((f64::from(rdt)) * (1.0 - margin)).round().max(1.0) as u32;
            for kind in MitigationKind::EVALUATED {
                let mut sum = 0.0;
                for (mix_idx, mix) in mixes.iter().enumerate() {
                    let cfg = SimConfig { cycles: opts.sim_cycles, banks: 16, mix: *mix };
                    let seed = opts.seed ^ ((mix_idx as u64) << 16);
                    let baseline = System::run_mix(&cfg, MitigationKind::None, effective, seed);
                    let mitigated = System::run_mix(&cfg, kind, effective, seed);
                    sum += mitigated.weighted_ipc(&baseline);
                }
                points.push(Fig14Point {
                    mitigation: kind,
                    rdt,
                    margin,
                    effective_threshold: effective,
                    normalized_performance: sum / mixes.len() as f64,
                });
            }
        }
    }
    Fig14Result { points, mixes: mixes.len() }
}

/// Renders Fig. 14.
pub fn render(result: &Fig14Result) -> String {
    let mut table = Table::new(["RDT", "margin", "effective", "Graphene", "PRAC", "PARA", "MINT"]);
    for &rdt in &RDT_VALUES {
        for &margin in &MARGINS {
            let get = |kind: MitigationKind| -> String {
                result
                    .points
                    .iter()
                    .find(|p| {
                        p.mitigation == kind && p.rdt == rdt && (p.margin - margin).abs() < 1e-9
                    })
                    .map(|p| f(p.normalized_performance, 3))
                    .unwrap_or_else(|| "-".into())
            };
            let effective = ((f64::from(rdt)) * (1.0 - margin)).round() as u32;
            table.row([
                rdt.to_string(),
                format!("{:.0}%", margin * 100.0),
                effective.to_string(),
                get(MitigationKind::Graphene),
                get(MitigationKind::Prac),
                get(MitigationKind::Para),
                get(MitigationKind::Mint),
            ]);
        }
    }
    format!(
        "Fig. 14 — normalized performance vs the unmitigated baseline \
         ({} four-core memory-intensive mixes):\n{}",
        result.mixes,
        table.render()
    )
}

/// The performance delta a mitigation pays going from no margin to
/// `margin` at `rdt` (the paper's "reduces by X% compared to no margin").
pub fn margin_cost(
    result: &Fig14Result,
    kind: MitigationKind,
    rdt: u32,
    margin: f64,
) -> Option<f64> {
    let at = |m: f64| {
        result
            .points
            .iter()
            .find(|p| p.mitigation == kind && p.rdt == rdt && (p.margin - m).abs() < 1e-9)
            .map(|p| p.normalized_performance)
    };
    Some(at(0.0)? - at(margin)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn smoke_result() -> &'static Fig14Result {
        static RESULT: OnceLock<Fig14Result> = OnceLock::new();
        RESULT.get_or_init(|| {
            let mut opts = Options::smoke();
            opts.mixes = 2;
            opts.sim_cycles = 150_000;
            run(&opts)
        })
    }

    #[test]
    fn covers_all_configurations() {
        let r = smoke_result();
        assert_eq!(r.points.len(), 2 * 4 * 4);
    }

    #[test]
    fn performance_is_normalized() {
        for p in &smoke_result().points {
            assert!(
                p.normalized_performance > 0.2 && p.normalized_performance <= 1.05,
                "{:?} out of range: {}",
                p.mitigation,
                p.normalized_performance
            );
        }
    }

    #[test]
    fn larger_guardband_costs_more_at_low_rdt() {
        // The paper's key observation: a 50% margin at RDT 128 hurts
        // PARA and MINT substantially more than a 10% margin.
        let r = smoke_result();
        for kind in [MitigationKind::Para, MitigationKind::Mint] {
            let c10 = margin_cost(r, kind, 128, 0.10).unwrap();
            let c50 = margin_cost(r, kind, 128, 0.50).unwrap();
            assert!(
                c50 >= c10 - 0.02,
                "{}: 50% margin must cost at least as much as 10% ({c50} vs {c10})",
                kind.name()
            );
        }
    }

    #[test]
    fn render_mentions_all_mitigations() {
        let s = render(smoke_result());
        for name in ["Graphene", "PRAC", "PARA", "MINT"] {
            assert!(s.contains(name));
        }
    }
}
