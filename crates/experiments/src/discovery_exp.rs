//! The DiscoRD-style early-stopping discovery study: bound every
//! selected row's reliable RDT with the sequential stopping rule and
//! report how many measurement epochs that saved against a fixed
//! in-depth-style budget.

use serde::{Deserialize, Serialize};

use vrd_core::discovery::{discovery_campaign, DiscoveryConfig, DiscoveryResult, DISCOVERY};

use crate::opts::Options;
use crate::render::{f, Table};
use crate::runner;

/// The discovery study output across the module scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveryStudy {
    /// The configuration the campaign ran under.
    pub config: DiscoveryConfig,
    /// Per-module campaign results.
    pub per_module: Vec<DiscoveryResult>,
}

/// Runs the discovery campaign across the module scope on the
/// deterministic executor (one unit per selected row; identical output
/// at any `--threads` value).
pub fn run(opts: &Options) -> DiscoveryStudy {
    let cfg = opts.discovery_config();
    let specs = opts.specs();
    runner::run_campaign(opts, DISCOVERY, &cfg, |run_opts| run_with(opts, &specs, run_opts))
}

/// Runs the discovery campaign over an explicit spec list under
/// caller-supplied [`RunOptions`](vrd_core::run::RunOptions) — the
/// reusable core both the CLI harness ([`run`]) and the fleet service
/// drive.
///
/// # Errors
///
/// Propagates checkpoint I/O errors and cooperative interruption.
pub fn run_with(
    opts: &Options,
    specs: &[vrd_dram::ModuleSpec],
    run_opts: &vrd_core::run::RunOptions<'_>,
) -> Result<DiscoveryStudy, vrd_core::checkpoint::CheckpointError> {
    let cfg = opts.discovery_config();
    let per_module = discovery_campaign(specs, &cfg, run_opts)?;
    Ok(DiscoveryStudy { config: cfg, per_module })
}

/// Mean measurement epochs spent per bounded row, or `None` when no
/// row was bounded.
pub fn mean_epochs_per_row(study: &DiscoveryStudy) -> Option<f64> {
    let rows: Vec<&vrd_core::discovery::DiscoveryRowResult> =
        study.per_module.iter().flat_map(|m| &m.rows).collect();
    if rows.is_empty() {
        return None;
    }
    let total: u64 = rows.iter().map(|r| u64::from(r.epochs_used)).sum();
    Some(total as f64 / rows.len() as f64)
}

/// The per-row bounds table plus the epochs-saved summary.
pub fn render(study: &DiscoveryStudy) -> String {
    let mut table = Table::new(["module", "row", "bound", "min RDT", "epochs", "early stop"]);
    let mut rows = 0usize;
    let mut early = 0usize;
    for module in &study.per_module {
        for row in &module.rows {
            rows += 1;
            early += usize::from(row.stopped_early);
            table.row([
                module.module.clone(),
                row.row.to_string(),
                row.bound.to_string(),
                row.min_observed.to_string(),
                row.epochs_used.to_string(),
                if row.stopped_early { "yes".into() } else { "no".into() },
            ]);
        }
    }
    if rows == 0 {
        return "no rows bounded".to_owned();
    }
    let mean = mean_epochs_per_row(study).expect("rows > 0");
    format!(
        "Discovery — reliable-RDT bounds at {:.0}% confidence \
         (quiet-streak rule, ceiling {} epochs):\n{}\n\
         rows bounded: {rows}   stopped early: {early}   \
         mean epochs/row: {} (fixed in-depth budget would spend {})\n",
        100.0 * study.config.confidence,
        study.config.max_epochs,
        table.render(),
        f(mean, 1),
        study.config.max_epochs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_study_runs_and_renders_at_smoke_scale() {
        let mut opts = Options::smoke();
        opts.modules = vec!["M1".into()];
        opts.out_dir = std::env::temp_dir()
            .join(format!("vrd-discovery-test-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let study = run(&opts);
        assert_eq!(study.per_module.len(), 1);
        assert!(!study.per_module[0].rows.is_empty());
        let rendered = render(&study);
        assert!(rendered.contains("rows bounded"));
        assert!(rendered.contains("M1"));
        assert!(mean_epochs_per_row(&study).unwrap() >= f64::from(study.config.min_epochs));
        let _ = std::fs::remove_dir_all(&opts.out_dir);
    }
}
