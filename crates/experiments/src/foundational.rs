//! The §4 foundational study and its figures (Figs. 1, 3, 4, 5, 6).
//!
//! One victim row per module, measured `foundational_measurements` times
//! under the Checkered0 / min `t_RAS` / 50 °C conditions. The same
//! campaign output feeds all five figures, so it runs once and is shared.

use serde::{Deserialize, Serialize};

use vrd_core::campaign::{foundational_campaign, FoundationalConfig, FoundationalResult};
use vrd_core::metrics::SeriesMetrics;
use vrd_core::predictability::{analyze, PredictabilityReport};
use vrd_stats::{BoxSummary, Histogram};

use crate::opts::Options;
use crate::render::{f, Table};
use crate::runner;

/// The full foundational study output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoundationalStudy {
    /// Per-module results (modules with no sufficiently vulnerable row in
    /// the scanned range are omitted, like rows that never flip).
    pub per_module: Vec<FoundationalResult>,
}

/// The foundational campaign configuration at this scale.
pub fn config(opts: &Options) -> FoundationalConfig {
    FoundationalConfig::builder()
        .measurements(opts.foundational_measurements)
        .seed(opts.seed)
        .row_bytes(opts.row_bytes)
        .build()
}

/// Runs the foundational campaign over an explicit spec list under
/// caller-supplied [`RunOptions`](vrd_core::run::RunOptions) — the
/// reusable core both the CLI
/// harness ([`run`]) and the fleet service drive. Output is a pure
/// function of `(config, specs)`; the run options only decide
/// threading, observation, checkpointing, and cancellation.
///
/// # Errors
///
/// Propagates checkpoint I/O errors and cooperative interruption.
pub fn run_with(
    opts: &Options,
    specs: &[vrd_dram::ModuleSpec],
    run_opts: &vrd_core::run::RunOptions<'_>,
) -> Result<FoundationalStudy, vrd_core::checkpoint::CheckpointError> {
    let cfg = config(opts);
    let results = foundational_campaign(specs, &cfg, run_opts)?;
    Ok(FoundationalStudy { per_module: results.into_iter().flatten().collect() })
}

/// Runs (or reuses) the foundational campaign across the module scope,
/// on the deterministic executor: output is identical at any
/// `--threads` value. With `--checkpoint-dir`, every finished module is
/// journaled and a `--resume` run restores completed modules instead of
/// remeasuring them — to byte-identical output.
pub fn run(opts: &Options) -> FoundationalStudy {
    let cfg = config(opts);
    let specs = opts.specs();
    runner::run_campaign(opts, vrd_core::campaign::FOUNDATIONAL, &cfg, |run_opts| {
        run_with(opts, &specs, run_opts)
    })
}

/// Fig. 1: per-1,000-measurement mean ± range of one module's series,
/// plus the zoomed last-1,000 values.
pub fn render_fig1(study: &FoundationalStudy) -> String {
    let Some(result) = study.per_module.first() else {
        return "no module produced a measurable row".to_owned();
    };
    let chunk = (result.series.len() / 100).max(10);
    let mut table = Table::new(["measurement", "mean RDT", "min", "max"]);
    for (i, (mean, min, max)) in result.series.chunk_summaries(chunk).iter().enumerate() {
        table.row([format!("{}", i * chunk), f(*mean, 1), format!("{min}"), format!("{max}")]);
    }
    let min_idx = result.series.first_min_index().unwrap_or(0);
    format!(
        "Fig. 1 — RDT of row {} in {} over {} measurements (chunk = {}):\n{}\n\
         first occurrence of the minimum RDT: measurement #{}\n",
        result.row,
        result.module,
        result.series.len(),
        chunk,
        table.render(),
        min_idx
    )
}

/// Fig. 3: RDT box-whisker distribution per module.
pub fn render_fig3(study: &FoundationalStudy) -> String {
    let mut table = Table::new(["module", "min", "Q1", "median", "Q3", "max", "mean", "max/min"]);
    for r in &study.per_module {
        let Ok(b) = r.series.box_summary() else { continue };
        table.row([
            r.module.clone(),
            f(b.min, 0),
            f(b.q1, 0),
            f(b.median, 0),
            f(b.q3, 0),
            f(b.max, 0),
            f(b.mean, 1),
            f(b.max / b.min.max(1.0), 3),
        ]);
    }
    format!("Fig. 3 — RDT distribution of one victim row per module:\n{}", table.render())
}

/// The box summaries backing Fig. 3 (for tests and JSON output).
pub fn fig3_summaries(study: &FoundationalStudy) -> Vec<(String, BoxSummary)> {
    study
        .per_module
        .iter()
        .filter_map(|r| Some((r.module.clone(), r.series.box_summary().ok()?)))
        .collect()
}

/// Fig. 4: histogram of RDT values per module with unique-value bins.
pub fn render_fig4(study: &FoundationalStudy) -> String {
    let mut out = String::from("Fig. 4 — RDT histograms (bins = unique measured values):\n");
    let mut table = Table::new(["module", "unique states", "modes", "bin counts (first 12)"]);
    for r in &study.per_module {
        let Ok(h) = Histogram::with_unique_value_bins(r.series.values()) else { continue };
        let head: Vec<String> = h.counts().iter().take(12).map(|c| c.to_string()).collect();
        table.row([
            r.module.clone(),
            h.bins().to_string(),
            h.mode_count().to_string(),
            head.join(","),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Fig. 5: aggregated run-length histogram + the Finding-3 headline.
pub fn render_fig5(study: &FoundationalStudy) -> String {
    let mut merged: Option<SeriesMetrics> = None;
    let mut immediate_weighted = 0.0;
    let mut weight = 0.0;
    for r in &study.per_module {
        let m = SeriesMetrics::of(&r.series);
        if let Some(frac) = m.immediate_change_fraction {
            immediate_weighted += frac * r.series.len() as f64;
            weight += r.series.len() as f64;
        }
        match &mut merged {
            Some(acc) => acc.merge_run_lengths(&m),
            None => merged = Some(m),
        }
    }
    let Some(merged) = merged else {
        return "no series collected".to_owned();
    };
    let mut table = Table::new(["run length", "count"]);
    for (len, count) in &merged.run_length_histogram {
        table.row([len.to_string(), count.to_string()]);
    }
    format!(
        "Fig. 5 — consecutive measurements with the same RDT (all modules):\n{}\n\
         fraction of state changes after a single measurement: {:.1}% (paper: 79.0%)\n\
         longest run: {}\n",
        table.render(),
        100.0 * immediate_weighted / weight.max(1.0),
        merged.longest_run
    )
}

/// Fig. 6 + Finding 4: ACF of each series vs the white-noise band, and
/// the chi-square normality p-values.
pub fn render_fig6(study: &FoundationalStudy) -> String {
    let mut table = Table::new([
        "module",
        "normality p",
        "looks normal",
        "|ACF|>band lags",
        "band",
        "unpredictable",
    ]);
    for r in &study.per_module {
        let Ok(report) = analyze(&r.series, 50) else { continue };
        table.row([
            r.module.clone(),
            report.normality_p_value.map(|p| f(p, 3)).unwrap_or_else(|| "-".into()),
            report.looks_normal.to_string(),
            f(report.significant_lag_fraction * 50.0, 0),
            f(report.white_noise_bound, 4),
            report.is_unpredictable().to_string(),
        ]);
    }
    format!(
        "Fig. 6 — autocorrelation vs white noise and normality of the RDT series:\n{}",
        table.render()
    )
}

/// The predictability reports backing Fig. 6.
pub fn fig6_reports(study: &FoundationalStudy) -> Vec<(String, PredictabilityReport)> {
    study
        .per_module
        .iter()
        .filter_map(|r| Some((r.module.clone(), analyze(&r.series, 50).ok()?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_study() -> FoundationalStudy {
        let mut opts = Options::smoke();
        opts.foundational_measurements = 300;
        run(&opts)
    }

    #[test]
    fn study_covers_smoke_modules() {
        let study = smoke_study();
        assert!(!study.per_module.is_empty());
        for r in &study.per_module {
            assert!(r.series.len() > 100);
        }
    }

    #[test]
    fn renders_are_nonempty() {
        let study = smoke_study();
        for render in [
            render_fig1(&study),
            render_fig3(&study),
            render_fig4(&study),
            render_fig5(&study),
            render_fig6(&study),
        ] {
            assert!(render.len() > 40, "render too short: {render}");
        }
    }

    #[test]
    fn fig3_summaries_bracket_series() {
        let study = smoke_study();
        for (_, b) in fig3_summaries(&study) {
            assert!(b.min <= b.median && b.median <= b.max);
        }
    }

    #[test]
    fn finding1_rdt_changes_over_time() {
        let study = smoke_study();
        for r in &study.per_module {
            assert!(
                vrd_stats::histogram::unique_count(r.series.values()) > 1,
                "{} must exhibit VRD",
                r.module
            );
        }
    }
}
