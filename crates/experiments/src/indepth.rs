//! The §5 in-depth study and its figures (Figs. 7, 9–13) plus Table 7.

use serde::{Deserialize, Serialize};

use vrd_core::campaign::{in_depth_campaign, InDepthConfig, InDepthResult};
use vrd_core::montecarlo::{exact_stats, PAPER_N_VALUES};
use vrd_dram::cells::CellPolarity;
use vrd_dram::conditions::T_AGG_ON_TREFI_NS;
use vrd_dram::{DataPattern, ModuleSpec};
use vrd_stats::{BoxSummary, SCurve};

use crate::opts::Options;
use crate::render::{f, Table};
use crate::runner;

/// A labelled module-name predicate (manufacturer class filter).
type ClassFilter = (&'static str, Box<dyn Fn(&str) -> bool>);

/// The in-depth study output across the module scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InDepthStudy {
    /// Per-module campaign results.
    pub per_module: Vec<InDepthResult>,
}

/// Runs the in-depth campaign across the module scope on the
/// deterministic executor. Every (module × row × condition) cell is one
/// work unit sharing a single work-stealing pool, so thin modules do
/// not idle threads — and the output is identical at any `--threads`
/// value.
pub fn run(opts: &Options) -> InDepthStudy {
    let cfg = config(opts);
    let specs = opts.specs();
    runner::run_campaign(opts, vrd_core::campaign::IN_DEPTH, &cfg, |run_opts| {
        run_with(opts, &specs, run_opts)
    })
}

/// The in-depth campaign configuration at this scale.
pub fn config(opts: &Options) -> InDepthConfig {
    InDepthConfig::builder()
        .measurements(opts.indepth_measurements)
        .segment_rows(opts.segment_rows)
        .picks_per_segment(opts.picks_per_segment)
        .conditions(opts.condition_grid())
        .seed(opts.seed)
        .row_bytes(opts.row_bytes)
        .build()
}

/// Runs the in-depth campaign over an explicit spec list under
/// caller-supplied [`RunOptions`](vrd_core::run::RunOptions) — the
/// reusable core both the CLI harness ([`run`]) and the fleet service
/// drive.
///
/// # Errors
///
/// Propagates checkpoint I/O errors and cooperative interruption.
pub fn run_with(
    opts: &Options,
    specs: &[ModuleSpec],
    run_opts: &vrd_core::run::RunOptions<'_>,
) -> Result<InDepthStudy, vrd_core::checkpoint::CheckpointError> {
    let cfg = config(opts);
    Ok(InDepthStudy { per_module: in_depth_campaign(specs, &cfg, run_opts)? })
}

/// The maximum CV across condition combinations for every tested row
/// (the y-values of Fig. 7a).
pub fn max_cv_per_row(study: &InDepthStudy) -> Vec<f64> {
    let mut cvs = Vec::new();
    for module in &study.per_module {
        for row in &module.rows {
            let max_cv = row
                .per_condition
                .iter()
                .filter_map(|cs| cs.series.cv().ok())
                .fold(f64::NAN, f64::max);
            if max_cv.is_finite() {
                cvs.push(max_cv);
            }
        }
    }
    cvs
}

/// Fig. 7: the CV S-curve and the P50/P100 example rows.
pub fn render_fig7(study: &InDepthStudy) -> String {
    let cvs = max_cv_per_row(study);
    let Ok(curve) = SCurve::from_values(cvs) else {
        return "no rows measured".to_owned();
    };
    let mut table = Table::new(["percentile", "max CV across conditions"]);
    for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
        table.row([f(p, 0), f(curve.value_at_percentile(p), 4)]);
    }
    format!(
        "Fig. 7a — S-curve of per-row max coefficient of variation ({} rows):\n{}\n\
         fraction of rows with CV > 0.03: {:.1}% (paper: ~50%)\n\
         maximum CV: {:.3} (paper: 0.52)\n",
        curve.len(),
        table.render(),
        100.0 * curve.fraction_above(0.03),
        curve.max()
    )
}

/// One labelled group of expected-normalized-min distributions per N.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormMinGroup {
    /// Group label (e.g. `"Mfr. M 16Gb-F"` or `"Checkered0"`).
    pub label: String,
    /// `(N, box summary)` pairs.
    pub per_n: Vec<(usize, BoxSummary)>,
}

fn group_table(groups: &[NormMinGroup]) -> String {
    let mut table = Table::new(["group", "N", "median", "Q3", "max"]);
    for g in groups {
        for (n, b) in &g.per_n {
            table.row([g.label.clone(), n.to_string(), f(b.median, 3), f(b.q3, 3), f(b.max, 3)]);
        }
    }
    table.render()
}

fn boxes_for<FilterFn>(
    study: &InDepthStudy,
    label: String,
    module_filter: FilterFn,
    condition_filter: impl Fn(&vrd_dram::TestConditions) -> bool,
) -> Option<NormMinGroup>
where
    FilterFn: Fn(&str) -> bool,
{
    let mut per_n = Vec::new();
    for &n in PAPER_N_VALUES.iter() {
        let mut values = Vec::new();
        for module in &study.per_module {
            if !module_filter(&module.module) {
                continue;
            }
            for row in &module.rows {
                for cs in &row.per_condition {
                    if condition_filter(&cs.conditions) && cs.series.len() >= n {
                        values.push(exact_stats(&cs.series, n).expected_normalized_min);
                    }
                }
            }
        }
        if let Ok(b) = BoxSummary::from_values(&values) {
            per_n.push((n, b));
        }
    }
    if per_n.is_empty() {
        None
    } else {
        Some(NormMinGroup { label, per_n })
    }
}

fn spec_of(name: &str) -> Option<ModuleSpec> {
    ModuleSpec::by_name(name)
}

/// Fig. 9: expected normalized minimum RDT grouped by manufacturer ×
/// density × die revision.
pub fn fig9_groups(study: &InDepthStudy) -> Vec<NormMinGroup> {
    use std::collections::BTreeMap;
    let mut by_group: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for module in &study.per_module {
        let Some(spec) = spec_of(&module.module) else { continue };
        if spec.standard != vrd_dram::DramStandard::Ddr4 {
            continue;
        }
        let label = format!(
            "{} {}Gb-{}",
            spec.manufacturer,
            spec.density.gigabits().unwrap_or(0),
            spec.die_revision.unwrap_or('?')
        );
        by_group.entry(label).or_default().push(module.module.clone());
    }
    by_group
        .into_iter()
        .filter_map(|(label, members)| {
            boxes_for(study, label, |name| members.iter().any(|m| m == name), |_| true)
        })
        .collect()
}

/// Renders Fig. 9.
pub fn render_fig9(study: &InDepthStudy) -> String {
    format!(
        "Fig. 9 — expected normalized min RDT by die density & revision:\n{}",
        group_table(&fig9_groups(study))
    )
}

/// Fig. 10: grouped by data pattern within each manufacturer (+ HBM2).
pub fn fig10_groups(study: &InDepthStudy) -> Vec<NormMinGroup> {
    let mut groups = Vec::new();
    let classes: [ClassFilter; 4] = [
        ("Mfr. H", Box::new(|n: &str| n.starts_with('H') && n != "HBM")),
        ("Mfr. M", Box::new(|n: &str| n.starts_with('M'))),
        ("Mfr. S", Box::new(|n: &str| n.starts_with('S'))),
        ("HBM2", Box::new(|n: &str| n.starts_with("Chip"))),
    ];
    for (mfr_label, filter) in classes {
        for pattern in DataPattern::ALL {
            if let Some(g) = boxes_for(
                study,
                format!("{mfr_label} {pattern}"),
                |name| filter(name),
                |c| c.pattern == pattern,
            ) {
                groups.push(g);
            }
        }
    }
    groups
}

/// Renders Fig. 10.
pub fn render_fig10(study: &InDepthStudy) -> String {
    format!(
        "Fig. 10 — expected normalized min RDT by data pattern:\n{}",
        group_table(&fig10_groups(study))
    )
}

/// Fig. 11: grouped by aggressor on-time within each manufacturer class.
pub fn fig11_groups(study: &InDepthStudy) -> Vec<NormMinGroup> {
    let mut on_times: Vec<f64> = Vec::new();
    for module in &study.per_module {
        for row in &module.rows {
            for cs in &row.per_condition {
                if !on_times.iter().any(|&t| (t - cs.conditions.t_agg_on_ns).abs() < 1e-9) {
                    on_times.push(cs.conditions.t_agg_on_ns);
                }
            }
        }
    }
    on_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut groups = Vec::new();
    let classes: [ClassFilter; 4] = [
        ("Mfr. H", Box::new(|n: &str| n.starts_with('H'))),
        ("Mfr. M", Box::new(|n: &str| n.starts_with('M'))),
        ("Mfr. S", Box::new(|n: &str| n.starts_with('S'))),
        ("HBM2", Box::new(|n: &str| n.starts_with("Chip"))),
    ];
    for (mfr_label, filter) in classes {
        for &t in &on_times {
            if let Some(g) = boxes_for(
                study,
                format!("{mfr_label} tAggOn={t}ns"),
                |name| filter(name),
                |c| (c.t_agg_on_ns - t).abs() < 1e-9,
            ) {
                groups.push(g);
            }
        }
    }
    groups
}

/// Renders Fig. 11.
pub fn render_fig11(study: &InDepthStudy) -> String {
    format!(
        "Fig. 11 — expected normalized min RDT by aggressor on-time:\n{}",
        group_table(&fig11_groups(study))
    )
}

/// Fig. 12: grouped by temperature for up to six example chips
/// (Rowstripe1, minimum `t_RAS`).
pub fn fig12_groups(study: &InDepthStudy) -> Vec<NormMinGroup> {
    let examples = ["M0", "M1", "S0", "S2", "H1", "H3"];
    let mut temps: Vec<f64> = Vec::new();
    for module in &study.per_module {
        for row in &module.rows {
            for cs in &row.per_condition {
                if !temps.iter().any(|&t| (t - cs.conditions.temperature_c).abs() < 1e-9) {
                    temps.push(cs.conditions.temperature_c);
                }
            }
        }
    }
    temps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut groups = Vec::new();
    for name in examples {
        for &temp in &temps {
            if let Some(g) = boxes_for(
                study,
                format!("{name} @{temp}°C"),
                |n| n == name,
                |c| {
                    (c.temperature_c - temp).abs() < 1e-9
                        && c.pattern == DataPattern::Rowstripe1
                        && c.t_agg_on_ns < 100.0
                },
            ) {
                groups.push(g);
            }
        }
    }
    groups
}

/// Renders Fig. 12.
pub fn render_fig12(study: &InDepthStudy) -> String {
    format!(
        "Fig. 12 — expected normalized min RDT (N = 1) by temperature:\n{}",
        group_table(&fig12_groups(study))
    )
}

/// Fig. 13: CV distributions of anti-cell vs true-cell rows in M0.
pub fn render_fig13(study: &InDepthStudy) -> String {
    let Some(m0) = study.per_module.iter().find(|m| m.module == "M0") else {
        return "module M0 not in scope".to_owned();
    };
    let Some(spec) = spec_of("M0") else {
        return "missing M0 spec".to_owned();
    };
    let family = spec.family();
    let (layout, mapping) = (family.cell_layout, family.mapping);
    let mut anti = Vec::new();
    let mut true_cells = Vec::new();
    for row in &m0.rows {
        let polarity = layout.polarity_of_physical_row(mapping.physical_of(row.row));
        for cs in &row.per_condition {
            if let Ok(cv) = cs.series.cv() {
                match polarity {
                    CellPolarity::Anti => anti.push(cv),
                    CellPolarity::True => true_cells.push(cv),
                }
            }
        }
    }
    let mut table = Table::new(["cell type", "rows×conds", "median CV", "Q3", "max"]);
    for (label, values) in [("anti-cell", &anti), ("true-cell", &true_cells)] {
        if let Ok(b) = BoxSummary::from_values(values) {
            table.row([
                label.to_owned(),
                values.len().to_string(),
                f(b.median, 4),
                f(b.q3, 4),
                f(b.max, 4),
            ]);
        }
    }
    format!(
        "Fig. 13 — CV of RDT for anti- vs true-cell rows in M0 (Finding 17: \
         no significant difference expected):\n{}",
        table.render()
    )
}

/// One module's Table-7 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Row {
    /// Module name.
    pub module: String,
    /// `(N, median, max)` expected normalized min RDT.
    pub norm_min: Vec<(usize, f64, f64)>,
    /// Minimum observed RDT at `t_AggOn` ≈ min `t_RAS`.
    pub min_rdt_tras: Option<u32>,
    /// Minimum observed RDT at `t_AggOn` = `t_REFI`.
    pub min_rdt_trefi: Option<u32>,
}

/// Computes Table 7 from the study.
pub fn table7(study: &InDepthStudy) -> Vec<Table7Row> {
    let ns = [1usize, 5, 50, 500];
    study
        .per_module
        .iter()
        .map(|module| {
            let mut norm_min = Vec::new();
            for &n in &ns {
                let mut values = Vec::new();
                for row in &module.rows {
                    for cs in &row.per_condition {
                        if cs.series.len() >= n {
                            values.push(exact_stats(&cs.series, n).expected_normalized_min);
                        }
                    }
                }
                if let (Ok(med), Some(max)) = (
                    vrd_stats::descriptive::median(&values),
                    values
                        .iter()
                        .copied()
                        .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v)))),
                ) {
                    norm_min.push((n, med, max));
                }
            }
            let min_at = |pred: &dyn Fn(f64) -> bool| -> Option<u32> {
                module
                    .rows
                    .iter()
                    .flat_map(|r| r.per_condition.iter())
                    .filter(|cs| pred(cs.conditions.t_agg_on_ns))
                    .filter_map(|cs| cs.series.min())
                    .min()
            };
            Table7Row {
                module: module.module.clone(),
                norm_min,
                min_rdt_tras: min_at(&|t| t < 100.0),
                min_rdt_trefi: min_at(&|t| (t - T_AGG_ON_TREFI_NS).abs() < 1.0),
            }
        })
        .collect()
}

/// Renders Table 7.
pub fn render_table7(study: &InDepthStudy) -> String {
    let rows = table7(study);
    let mut table = Table::new([
        "module",
        "N=1 med",
        "N=1 max",
        "N=5 med",
        "N=50 med",
        "N=500 med",
        "minRDT tRAS",
        "minRDT tREFI",
    ]);
    for r in rows {
        let get = |n: usize| r.norm_min.iter().find(|(m, _, _)| *m == n);
        table.row([
            r.module.clone(),
            get(1).map(|(_, m, _)| f(*m, 3)).unwrap_or_else(|| "-".into()),
            get(1).map(|(_, _, x)| f(*x, 3)).unwrap_or_else(|| "-".into()),
            get(5).map(|(_, m, _)| f(*m, 3)).unwrap_or_else(|| "-".into()),
            get(50).map(|(_, m, _)| f(*m, 3)).unwrap_or_else(|| "-".into()),
            get(500).map(|(_, m, _)| f(*m, 3)).unwrap_or_else(|| "-".into()),
            r.min_rdt_tras.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
            r.min_rdt_trefi.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    format!("Table 7 — per-module VRD profile:\n{}", table.render())
}

/// Fraction of rows exhibiting temporal variation under *all* tested
/// conditions (Finding 6's 97.1%).
pub fn all_condition_variation_fraction(study: &InDepthStudy) -> f64 {
    let mut total = 0usize;
    let mut varying_everywhere = 0usize;
    for module in &study.per_module {
        for row in &module.rows {
            if row.per_condition.is_empty() {
                continue;
            }
            total += 1;
            let everywhere = row
                .per_condition
                .iter()
                .all(|cs| vrd_stats::histogram::unique_count(cs.series.values()) > 1);
            if everywhere {
                varying_everywhere += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        varying_everywhere as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn smoke_study() -> &'static InDepthStudy {
        static STUDY: OnceLock<InDepthStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut opts = Options::smoke();
            opts.modules = vec!["M0".into(), "M1".into(), "H3".into()];
            opts.indepth_measurements = 80;
            opts.picks_per_segment = 3;
            run(&opts)
        })
    }

    #[test]
    fn study_has_rows_and_series() {
        let study = smoke_study();
        assert_eq!(study.per_module.len(), 3);
        let measured: usize = study
            .per_module
            .iter()
            .flat_map(|m| m.rows.iter())
            .map(|r| r.per_condition.len())
            .sum();
        assert!(measured > 0, "in-depth study must produce series");
    }

    #[test]
    fn fig7_cv_values_nonnegative() {
        let cvs = max_cv_per_row(smoke_study());
        assert!(!cvs.is_empty());
        assert!(cvs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn table7_rows_cover_modules() {
        let rows = table7(smoke_study());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            if let Some(n1) = r.norm_min.iter().find(|(n, _, _)| *n == 1) {
                assert!(n1.1 >= 1.0, "{}: median normalized min ≥ 1", r.module);
                assert!(n1.2 >= n1.1, "max ≥ median");
            }
        }
    }

    #[test]
    fn renders_nonempty() {
        let study = smoke_study();
        for s in [
            render_fig7(study),
            render_fig9(study),
            render_fig10(study),
            render_fig11(study),
            render_fig12(study),
            render_fig13(study),
            render_table7(study),
        ] {
            assert!(s.len() > 30, "short render: {s}");
        }
    }

    #[test]
    fn finding6_most_rows_vary_everywhere() {
        let frac = all_condition_variation_fraction(smoke_study());
        assert!(frac > 0.5, "most rows vary under all conditions, got {frac}");
    }
}
