//! Device-family comparison study: per-bank RDT variation.
//!
//! The HBM read-disturbance characterization this repo's HBM2 roster is
//! calibrated against reports substantially larger bank-to-bank spread
//! in read-disturbance thresholds than DDR4 modules show. The family
//! descriptor models that spread as a per-bank lognormal factor
//! ([`vrd_dram::BankVariation`], zero for DDR4), and this study
//! measures it back out of the device model through the threshold
//! oracle: for every module in scope it probes the same row indices in
//! a stride of banks, averages each bank's log-thresholds, and reports
//! the cross-bank standard deviation of those means.
//!
//! Probing identical row indices in every bank is what makes the
//! statistic family-specific: the spatial (subarray) factor depends
//! only on the physical row, so it contributes the same offset to every
//! bank and cancels out of the cross-bank spread. What remains is the
//! per-bank factor plus row-lottery noise, and the latter shrinks with
//! the number of rows averaged while the former does not.
//!
//! Findings F20 and F21 (the scoreboard entries beyond the paper's 17
//! and the defenses sweep's F18/F19) are predicates over this study.

use serde::{Deserialize, Serialize};

use vrd_dram::fleet::Module;
use vrd_dram::{DramStandard, TestConditions};

use crate::opts::Options;
use crate::render::{f, Table};

/// Banks probed per module (strided across the whole bank space so
/// HBM2 pseudo-channels and bank groups are all represented).
const BANKS_PROBED: u32 = 16;

/// Row indices sampled per bank. Each bank's log-threshold mean is
/// taken over this many rows, so the row-lottery noise floor of the
/// cross-bank spread scales as `sigma_ln / sqrt(ROWS_PER_BANK)`.
const ROWS_PER_BANK: u32 = 64;

/// Per-bank oracle thresholds for one module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleBankSpread {
    /// Module name from Table 1.
    pub module: String,
    /// Device family the module belongs to.
    pub standard: DramStandard,
    /// Flat bank indices probed.
    pub banks: Vec<u32>,
    /// Mean `ln(threshold)` per probed bank, over the sampled rows that
    /// hold at least one weak cell.
    pub per_bank_mean_ln: Vec<f64>,
    /// Standard deviation of the per-bank means (log space): the
    /// cross-bank RDT spread.
    pub cross_bank_sigma: f64,
    /// `exp(max - min)` of the per-bank means: how much weaker the
    /// weakest probed bank is than the strongest.
    pub worst_to_best_ratio: f64,
}

/// Per-bank RDT spread for every module in scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyStudy {
    /// One entry per module, in roster order.
    pub per_module: Vec<ModuleBankSpread>,
}

impl FamilyStudy {
    /// Median cross-bank sigma over the modules of one family, or
    /// `None` if the family is not in scope.
    pub fn family_sigma(&self, standard: DramStandard) -> Option<f64> {
        let sigmas: Vec<f64> = self
            .per_module
            .iter()
            .filter(|m| m.standard == standard)
            .map(|m| m.cross_bank_sigma)
            .collect();
        vrd_stats::descriptive::median(&sigmas).ok()
    }
}

/// Runs the study on every module in scope.
pub fn run(opts: &Options) -> FamilyStudy {
    run_with(opts, opts.specs())
}

/// Like [`run`], over an explicit spec list — the entry point the fleet
/// service uses for synthetic modules. Pure computation against the
/// threshold oracle: no campaign harness, no checkpoint (a service job
/// that restarts simply reruns it).
pub fn run_with(opts: &Options, specs: Vec<vrd_dram::ModuleSpec>) -> FamilyStudy {
    let conditions = TestConditions::default();
    let mut per_module = Vec::new();
    for spec in specs {
        let name = spec.name.clone();
        let standard = spec.standard;
        let topology = spec.family().topology;
        let mut module = Module::new_with_row_bytes(spec, opts.seed, opts.row_bytes);
        let device = module.device_mut();

        let total_banks = topology.banks();
        let probed = total_banks.min(BANKS_PROBED);
        let stride = (total_banks / probed).max(1);
        let banks: Vec<u32> = (0..probed).map(|i| i * stride).collect();

        // The same row indices in every bank: the spatial factor is a
        // function of the row alone, so it cancels across banks.
        let rows: Vec<u32> = (1..=ROWS_PER_BANK)
            .map(|i| i * (topology.rows_per_bank / (ROWS_PER_BANK + 2)))
            .collect();

        let mut per_bank_mean_ln = Vec::with_capacity(banks.len());
        for &bank in &banks {
            let lns: Vec<f64> = rows
                .iter()
                .filter_map(|&row| device.oracle_row_threshold(bank as usize, row, &conditions))
                .map(f64::ln)
                .collect();
            let mean = lns.iter().sum::<f64>() / (lns.len().max(1) as f64);
            per_bank_mean_ln.push(mean);
        }

        let sigma = vrd_stats::descriptive::stddev(&per_bank_mean_ln).unwrap_or(0.0);
        let max = per_bank_mean_ln.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = per_bank_mean_ln.iter().copied().fold(f64::INFINITY, f64::min);
        per_module.push(ModuleBankSpread {
            module: name,
            standard,
            banks,
            per_bank_mean_ln,
            cross_bank_sigma: sigma,
            worst_to_best_ratio: (max - min).exp(),
        });
    }
    FamilyStudy { per_module }
}

/// Renders the study as a per-module table.
pub fn render_family(study: &FamilyStudy) -> String {
    let mut table = Table::new(["module", "family", "banks", "cross-bank sigma", "worst/best"]);
    for m in &study.per_module {
        table.row([
            m.module.clone(),
            format!("{:?}", m.standard),
            m.banks.len().to_string(),
            f(m.cross_bank_sigma, 4),
            f(m.worst_to_best_ratio, 3),
        ]);
    }
    let mut out = format!(
        "Per-bank RDT variation ({} rows/bank through the threshold oracle)\n{}",
        ROWS_PER_BANK,
        table.render()
    );
    if let (Some(hbm), Some(ddr)) =
        (study.family_sigma(DramStandard::Hbm2), study.family_sigma(DramStandard::Ddr4))
    {
        out.push_str(&format!(
            "family medians: HBM2 {} vs DDR4 {} ({}x)\n",
            f(hbm, 4),
            f(ddr, 4),
            f(hbm / ddr.max(1e-12), 2),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_family_opts() -> Options {
        Options { modules: vec!["M1".into(), "Chip0".into()], row_bytes: 512, ..Options::default() }
    }

    #[test]
    fn study_covers_scope_in_roster_order() {
        let study = run(&two_family_opts());
        let names: Vec<&str> = study.per_module.iter().map(|m| m.module.as_str()).collect();
        assert_eq!(names, ["M1", "Chip0"]);
        for m in &study.per_module {
            assert_eq!(m.per_bank_mean_ln.len(), m.banks.len());
            assert!(m.banks.len() <= BANKS_PROBED as usize);
            assert!(m.cross_bank_sigma.is_finite());
            assert!(m.worst_to_best_ratio >= 1.0);
        }
    }

    #[test]
    fn hbm2_spread_exceeds_ddr4() {
        let study = run(&two_family_opts());
        let hbm = study.family_sigma(DramStandard::Hbm2).expect("Chip0 in scope");
        let ddr = study.family_sigma(DramStandard::Ddr4).expect("M1 in scope");
        assert!(
            hbm > ddr,
            "HBM2 cross-bank sigma {hbm:.4} must exceed DDR4's noise floor {ddr:.4}"
        );
    }

    #[test]
    fn probed_banks_span_hbm2_pseudo_channels() {
        let study =
            run(&Options { modules: vec!["Chip1".into()], row_bytes: 512, ..Options::default() });
        let spec = vrd_dram::ModuleSpec::by_name("Chip1").expect("Chip1 exists");
        let topology = spec.family().topology;
        let channels: std::collections::BTreeSet<u32> = study.per_module[0]
            .banks
            .iter()
            .map(|&b| topology.address_of(b).pseudo_channel)
            .collect();
        assert_eq!(channels.len(), 2, "both pseudo-channels probed");
    }
}
